"""Figures 6 & 7 — dynamic network (10% churn/unit), low load / overload.

Paper: same layout as Figures 4–5 on a churning platform.  Expected shape:
"KC performs a bit better than previously, and gives results similar to
MLT" — churn lets join-time placement act often, closing the gap.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.ascii_plot import ascii_plot
from repro.experiments.figures import figure6, figure7

from conftest import peers, runs


def _render(fig) -> str:
    plot = ascii_plot(
        {k: list(v) for k, v in fig.series.items()},
        width=70, height=18, y_min=0, y_max=100,
        x_label="time unit", y_label="% satisfied", title=fig.title,
    )
    steady = {n: float(np.mean(v[10:])) for n, v in fig.series.items()}
    summary = "steady-state means: " + "  ".join(
        f"{n}={v:.1f}%" for n, v in steady.items()
    )
    return f"{plot}\n\n{summary}\nruns per curve: {fig.n_runs}\n\n{fig.as_table()}"


def test_figure6_dynamic_low_load(benchmark, archive):
    fig = benchmark.pedantic(
        lambda: figure6(n_runs=runs(3), n_peers=peers()),
        rounds=1, iterations=1,
    )
    archive("fig6_dynamic_no_overload", _render(fig))
    mlt = float(np.mean(fig.series["MLT enabled"][10:]))
    kc = float(np.mean(fig.series["KC enabled"][10:]))
    nolb = float(np.mean(fig.series["No LB"][10:]))
    assert mlt > nolb and kc > nolb
    # The paper's observation: KC approaches MLT under churn.  The KC/MLT
    # gap must be clearly smaller than MLT's lead over no-LB.
    assert (mlt - kc) < (mlt - nolb)


def test_figure7_dynamic_overload(benchmark, archive):
    fig = benchmark.pedantic(
        lambda: figure7(n_runs=runs(3), n_peers=peers()),
        rounds=1, iterations=1,
    )
    archive("fig7_dynamic_overload", _render(fig))
    mlt = float(np.mean(fig.series["MLT enabled"][10:]))
    kc = float(np.mean(fig.series["KC enabled"][10:]))
    nolb = float(np.mean(fig.series["No LB"][10:]))
    assert mlt > kc > nolb
