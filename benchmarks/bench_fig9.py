"""Figure 9 — communication gain of the lexicographic mapping (100 runs in
the paper).

Three series over the Figure 8 timeline: logical hops per request;
physical hops under the original DLPT's random (DHT/hashed) mapping; and
physical hops under the self-contained lexicographic mapping with MLT.

Expected shape: the random mapping "results in breaking the locality", so
its physical-hop curve tracks the logical-hop curve; the lexicographic
mapping needs markedly fewer physical messages because "the set of nodes
stored on one peer are highly connected".
"""

from __future__ import annotations

import numpy as np

from repro.experiments.ascii_plot import ascii_plot
from repro.experiments.figures import figure9

from conftest import peers, runs


def test_figure9_communication_gain(benchmark, archive):
    fig = benchmark.pedantic(
        lambda: figure9(n_runs=runs(2), n_peers=peers()),
        rounds=1, iterations=1,
    )
    plot = ascii_plot(
        {k: list(v) for k, v in fig.series.items()},
        width=80, height=18,
        x_label="time unit", y_label="hops per request", title=fig.title,
    )
    steady = {n: float(np.mean(v[20:])) for n, v in fig.series.items()}
    summary = "\n".join(f"  {n:<46} {v:6.2f} hops" for n, v in steady.items())
    archive(
        "fig9_communication_gain",
        f"{plot}\n\nsteady-state means:\n{summary}\nruns per curve: {fig.n_runs}",
    )

    logical = steady["Logical hops"]
    random_phys = steady["Physical hops - random mapping"]
    lex_phys = steady["Physical hops - lexico. mapping with LB (MLT)"]
    # Random mapping pays ≈ one message per logical hop.
    assert random_phys > 0.6 * logical
    # Lexicographic mapping cuts communication substantially.
    assert lex_phys < 0.75 * random_phys
