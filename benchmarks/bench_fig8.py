"""Figure 8 — dynamic network with hot spots (50 runs in the paper).

Timeline: units 0–40 uniform, 40–80 a burst on the S3L library
("Most of S3L routines are named by a string beginning by 'S3L'"),
80–120 a burst on ScaLAPACK ("whose functions begin with 'P'"),
120–160 uniform again.

Expected shape: MLT's satisfaction collapses at each onset and recovers
("the MLT-enabled architecture adapts to the situation and increases the
satisfaction ratio to a reasonable point"); the final uniform phase returns
to pre-burst behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.ascii_plot import ascii_plot
from repro.experiments.figures import figure8

from conftest import peers, runs

PHASES = [
    ("uniform   [20,40)", 20, 40),
    ("S3L burst [40,80)", 40, 80),
    ("P burst  [80,120)", 80, 120),
    ("uniform [140,160)", 140, 160),
]


def test_figure8_hot_spots(benchmark, archive):
    fig = benchmark.pedantic(
        lambda: figure8(n_runs=runs(2), n_peers=peers()),
        rounds=1, iterations=1,
    )
    plot = ascii_plot(
        {k: list(v) for k, v in fig.series.items()},
        width=80, height=20, y_min=0, y_max=100,
        x_label="time unit", y_label="% satisfied", title=fig.title,
    )
    lines = [plot, "", f"runs per curve: {fig.n_runs}", "",
             f"{'phase':<20}" + "".join(f"{n:>14}" for n in fig.series)]
    phase_means = {}
    for label, a, b in PHASES:
        row = f"{label:<20}"
        for name, vals in fig.series.items():
            m = float(np.mean(vals[a:b]))
            phase_means[(label, name)] = m
            row += f"{m:>14.1f}"
        lines.append(row)
    archive("fig8_hot_spots", "\n".join(lines))

    mlt_pre = phase_means[(PHASES[0][0], "MLT enabled")]
    mlt_s3l = phase_means[(PHASES[1][0], "MLT enabled")]
    mlt_post = phase_means[(PHASES[3][0], "MLT enabled")]
    onset = float(np.mean(fig.series["MLT enabled"][40:46]))
    # Collapse at the onset, and full recovery once the bursts end.
    assert onset < mlt_pre
    assert mlt_post >= 0.8 * mlt_pre
    # MLT adapts during the burst: its burst-phase satisfaction beats NoLB's.
    assert mlt_s3l > phase_means[(PHASES[1][0], "No LB")]
