"""Micro-benchmarks of the hot operations.

Not figures from the paper — these guard the implementation's complexity
claims: O(depth) tree insertion/routing, O(log P) mapping queries,
O(|ν_S ∪ ν_P|) MLT splits, O(log P) Chord lookups.
"""

from __future__ import annotations

import random

import pytest

from repro.core.pgcp import PGCPTree
from repro.dht.chord import ChordRing
from repro.dlpt.routing import route_path
from repro.dlpt.system import DLPTSystem
from repro.lb.mlt import best_split
from repro.peers.capacity import FixedCapacity
from repro.workloads.keys import grid_service_corpus


@pytest.fixture(scope="module")
def corpus():
    return grid_service_corpus()


@pytest.fixture(scope="module")
def big_tree(corpus):
    tree = PGCPTree()
    for k in corpus:
        tree.insert(k)
    return tree


@pytest.fixture(scope="module")
def live_system(corpus):
    rng = random.Random(1)
    system = DLPTSystem(capacity_model=FixedCapacity(10**9))
    system.build(rng, 100)
    for k in corpus:
        system.register(k)
    return system, rng


def test_tree_insert_full_corpus(benchmark, corpus):
    def build():
        tree = PGCPTree()
        for k in corpus:
            tree.insert(k)
        return tree

    tree = benchmark(build)
    assert len(tree.keys()) == len(set(corpus))


def test_tree_exact_lookup(benchmark, big_tree, corpus):
    keys = corpus[:: max(1, len(corpus) // 100)]

    def lookups():
        for k in keys:
            big_tree.lookup(k)

    benchmark(lookups)


def test_tree_completion(benchmark, big_tree):
    out = benchmark(lambda: big_tree.complete("dge"))
    assert out


def test_route_path_cross_subtree(benchmark, big_tree):
    p = benchmark(lambda: route_path(big_tree, "S3L_fft", "dgemm"))
    assert p.found


def test_discover_end_to_end(benchmark, live_system, corpus):
    system, rng = live_system
    keys = corpus

    def one():
        out = system.discover(keys[rng.randrange(len(keys))], rng=rng)
        return out

    out = benchmark(one)
    assert out is not None


def test_mlt_best_split_200_nodes(benchmark):
    rng = random.Random(3)
    labels = [f"n{i:04d}" for i in range(200)]
    loads = [rng.randrange(30) for _ in range(200)]
    d = benchmark(lambda: best_split(labels, loads, 40, 55, current_index=100))
    assert d.best_throughput >= 0


def test_peer_join_with_migration(benchmark, corpus):
    rng = random.Random(5)
    system = DLPTSystem(capacity_model=FixedCapacity(10**9))
    system.build(rng, 50)
    for k in corpus:
        system.register(k)

    def join_leave():
        p = system.add_peer(rng)
        system.remove_peer(p.id)

    benchmark(join_leave)


def test_chord_lookup_256_peers(benchmark):
    ring = ChordRing(bits=24)
    for i in range(256):
        ring.add_peer(f"peer-{i:04d}")
    ring.rebuild_fingers()
    rng = random.Random(7)

    def lookup():
        return ring.lookup(f"key-{rng.randrange(10_000)}")

    owner, hops = benchmark(lookup)
    assert hops <= 24
