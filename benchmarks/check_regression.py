#!/usr/bin/env python
"""Performance-regression gate: fresh BENCH_micro.json vs the committed one.

Runs the ``micro`` benchmark suite and compares each scenario against the
committed baseline at the repository root.  Exits non-zero when any
scenario regresses by more than ``--threshold`` (default 25%).

Two comparison modes:

``--mode ratio`` (default)
    Re-time *both* the frozen seed reference and the optimised code in
    this process and compare the seed/optimised speedup against the
    baseline's ``speedup_median``.  The machine's absolute speed — and
    run-to-run load drift, which moves both implementations together —
    cancels out, so the verdict is hardware-independent.

``--mode absolute``
    Compare the optimised implementation's wall-clock median against the
    baseline's.  More direct, but the verdict depends on the machine:
    only meaningful when the fresh run executes on hardware (and load)
    comparable to what produced the committed baseline — a dedicated CI
    runner class, or a developer re-checking their own machine.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py
    PYTHONPATH=src python benchmarks/check_regression.py --mode ratio
    PYTHONPATH=src python benchmarks/check_regression.py --threshold 0.10

Intended as the CI tier-2 perf gate; pair it with ``-m bench`` pytest runs.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.perf.bench import SCHEMA, run_suite  # noqa: E402

#: Absolute speedup floors, replacing the relative drift check in
#: ``--mode ratio`` for the scenarios listed.  ``sweep_cached``'s
#: "speedup" is the warm-store/cold-store ratio (see
#: ``repro.perf.scenarios``): its warm side is milliseconds of JSON reads,
#: so the ratio jitters by factors run to run and a ±25% drift comparison
#: would cry wolf — the contract worth gating is absolute: warm re-runs
#: must stay at least 10× faster than recomputation.  The request-path
#: scenarios carry the fast-path contract of the discovery router PR:
#: a flood of requests must stay ≥3× faster than the frozen per-request
#: reference walk, and the schedule-driven / replayed end-to-end paths
#: ≥2× (they amortise churn, balancing and sampling that both
#: implementations share).  The construction scenarios carry the bulk
#: fast-path contract (sorted-cursor ``insert_batch`` + deferred mapping
#: placement): platform bootstrap and corpus registration must stay ≥1.5×
#: faster than the frozen per-peer/per-key loops, and crash repair — which
#: routes its re-registrations through the same batch path — must never
#: fall back below the seed (≥1.0×).
SPEEDUP_FLOORS = {
    "sweep_cached": 10.0,
    "request_flood": 3.0,
    "flash_crowd": 2.0,
    "replay": 2.0,
    "build": 1.5,
    "growth": 1.5,
    "crash_storm": 1.0,
}

#: The throughput smoke (``--throughput-smoke``) runs a shortened
#: sustained-rate driver (see ``repro.perf.throughput``) and gates the
#: optimised/seed req/s ratio.  The serving path inside it is the same
#: indexed batch that carries the request_flood ≥3× floor; 2× leaves
#: headroom for the short smoke's noisier rate estimate.
THROUGHPUT_GAIN_FLOOR = 2.0
THROUGHPUT_SMOKE_ROUNDS = 12

#: Floored scenarios whose *absolute* optimised median is still clock
#: noise (warm-cache JSON reads) and therefore skipped in absolute mode;
#: the request-path scenarios have real wall-clock medians and keep the
#: absolute drift check.
ABSOLUTE_EXEMPT = {"sweep_cached"}


def compare(baseline: dict, fresh: dict, threshold: float, mode: str) -> list[str]:
    """Return a list of human-readable regression failures (empty = pass)."""
    failures: list[str] = []
    if baseline.get("schema") != SCHEMA:
        return [
            f"baseline schema {baseline.get('schema')!r} != {SCHEMA!r}; "
            "regenerate the baseline with `python -m repro bench --suite micro`"
        ]
    for name, base_block in sorted(baseline.get("scenarios", {}).items()):
        fresh_block = fresh["scenarios"].get(name)
        if fresh_block is None:
            failures.append(f"{name}: missing from fresh run")
            continue
        if mode == "absolute":
            if name in ABSOLUTE_EXEMPT:
                # Warm-cache reads have millisecond medians; absolute
                # drift on them is clock noise.
                print(f"[perf] {name:>14}: skipped in absolute mode "
                      "(floored scenario; gated by --mode ratio)")
                continue
            # Lower is better; regression = fresh median grew.
            base_impl = base_block["impls"].get("optimised")
            if base_impl is None:
                failures.append(
                    f"{name}: baseline lacks 'optimised' timings (generated "
                    "with --impl?); regenerate with `python -m repro bench "
                    "--suite micro`"
                )
                continue
            base = base_impl["median_s"]
            now = fresh_block["impls"]["optimised"]["median_s"]
            ratio = now / base if base > 0 else float("inf")
            detail = (
                f"baseline {base * 1e3:8.2f}ms  now {now * 1e3:8.2f}ms  "
                f"({ratio:5.2f}x)"
            )
        else:
            # Higher is better; regression = seed/optimised speedup shrank.
            base = base_block.get("speedup_median")
            if base is None:
                failures.append(
                    f"{name}: baseline lacks 'speedup_median' (generated with "
                    "--impl?); regenerate with `python -m repro bench --suite "
                    "micro` (both implementations)"
                )
                continue
            now = fresh_block["speedup_median"]
            floor = SPEEDUP_FLOORS.get(name)
            if floor is not None:
                # Floored scenario: gate on the absolute contract, not on
                # drift against the (jittery) committed number.
                detail = f"speedup {now:8.2f}x  (floor {floor:g}x)"
                verdict = "OK" if now >= floor else "BELOW FLOOR"
                print(f"[perf] {name:>14}: {detail}  {verdict}")
                if verdict != "OK":
                    failures.append(
                        f"{name}: fresh speedup {now:.2f}x is below the "
                        f"hard floor of {floor:g}x"
                    )
                continue
            ratio = base / now if now > 0 else float("inf")
            detail = f"baseline speedup {base:6.2f}x  now {now:6.2f}x"
        verdict = "OK" if ratio <= 1.0 + threshold else "REGRESSION"
        print(f"[perf] {name:>14}: {detail}  {verdict}")
        if verdict != "OK":
            failures.append(
                f"{name}: {detail.strip()} "
                f"({(ratio - 1) * 100:+.0f}%, threshold +{threshold * 100:.0f}%)"
            )
    return failures


def check_throughput_smoke(rounds: int) -> list[str]:
    """Run the throughput suite briefly; verify the document carries the
    req/s + latency-tail fields and the fast path clears the gain floor."""
    from repro.perf.throughput import run_throughput_suite

    print(f"[perf] running throughput smoke ({rounds} rounds/scenario) ...")
    doc = run_throughput_suite(rounds=rounds)
    failures: list[str] = []
    for name, block in sorted(doc["scenarios"].items()):
        for impl, stats in sorted(block["impls"].items()):
            for field in ("req_per_s", "latency_p95_ms", "latency_p99_ms"):
                if field not in stats:
                    failures.append(f"throughput/{name}/{impl}: missing {field!r}")
            if stats.get("req_per_s", 0) <= 0:
                failures.append(f"throughput/{name}/{impl}: non-positive req/s")
        gain = block.get("throughput_gain")
        detail = (
            f"gain {gain:8.2f}x  (floor {THROUGHPUT_GAIN_FLOOR:.0f}x)"
            if gain is not None
            else "gain missing"
        )
        verdict = (
            "OK" if gain is not None and gain >= THROUGHPUT_GAIN_FLOOR else "BELOW FLOOR"
        )
        print(f"[perf] {'tp/' + name:>14}: {detail}  {verdict}")
        if verdict != "OK":
            failures.append(
                f"throughput/{name}: gain {gain} is below the hard floor of "
                f"{THROUGHPUT_GAIN_FLOOR:.0f}x"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=str(REPO_ROOT / "BENCH_micro.json"),
        help="committed baseline to compare against (default: repo root)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="maximum allowed median regression as a fraction (default 0.25)",
    )
    parser.add_argument(
        "--repeat", type=int, default=5,
        help="timed repetitions per scenario for the fresh run (default 5)",
    )
    parser.add_argument(
        "--mode", choices=("absolute", "ratio"), default="ratio",
        help="ratio (default): seed/optimised speedup vs baseline "
        "(hardware-independent); absolute: optimised medians vs baseline "
        "(same-machine/same-load only)",
    )
    parser.add_argument(
        "--throughput-smoke", action="store_true",
        help="also run a shortened throughput suite and gate its "
        f"optimised/seed gain (floor {THROUGHPUT_GAIN_FLOOR:.0f}x)",
    )
    parser.add_argument(
        "--throughput-rounds", type=int, default=THROUGHPUT_SMOKE_ROUNDS,
        help="driver rounds per throughput scenario for the smoke "
        f"(default {THROUGHPUT_SMOKE_ROUNDS})",
    )
    args = parser.parse_args(argv)

    baseline_path = pathlib.Path(args.baseline)
    if not baseline_path.exists():
        print(f"[perf] no baseline at {baseline_path}; nothing to compare", file=sys.stderr)
        return 2
    baseline = json.loads(baseline_path.read_text())

    impls = ("optimised",) if args.mode == "absolute" else ("seed", "optimised")
    print(f"[perf] running fresh micro suite ({' + '.join(impls)}, mode={args.mode}) ...")
    fresh = run_suite("micro", repeat=args.repeat, warmup=1, impls=impls)

    failures = compare(baseline, fresh, args.threshold, args.mode)
    if args.throughput_smoke:
        failures.extend(check_throughput_smoke(args.throughput_rounds))
    if failures:
        print("\n[perf] FAIL:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("[perf] all scenarios within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
