"""Figures 4 & 5 — stable network, low load / overload.

Paper: % of satisfied requests over 50 time units, MLT / KC / No LB,
30 runs.  Expected shape: three stacked curves (MLT on top, No LB at the
bottom); under overload all curves drop but the ordering persists.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.ascii_plot import ascii_plot
from repro.experiments.figures import figure4, figure5

from conftest import peers, runs


def _render(fig) -> str:
    plot = ascii_plot(
        {k: list(v) for k, v in fig.series.items()},
        width=70, height=18, y_min=0, y_max=100,
        x_label="time unit", y_label="% satisfied", title=fig.title,
    )
    steady = {
        name: float(np.mean(vals[10:])) for name, vals in fig.series.items()
    }
    summary = "steady-state means: " + "  ".join(
        f"{n}={v:.1f}%" for n, v in steady.items()
    )
    return f"{plot}\n\n{summary}\nruns per curve: {fig.n_runs}\n\n{fig.as_table()}"


def test_figure4_stable_low_load(benchmark, archive):
    fig = benchmark.pedantic(
        lambda: figure4(n_runs=runs(3), n_peers=peers()),
        rounds=1, iterations=1,
    )
    archive("fig4_stable_no_overload", _render(fig))
    # Shape assertions: MLT dominates and No LB trails at steady state.
    mlt = float(np.mean(fig.series["MLT enabled"][10:]))
    nolb = float(np.mean(fig.series["No LB"][10:]))
    assert mlt > nolb


def test_figure5_stable_overload(benchmark, archive):
    fig = benchmark.pedantic(
        lambda: figure5(n_runs=runs(3), n_peers=peers()),
        rounds=1, iterations=1,
    )
    archive("fig5_stable_overload", _render(fig))
    mlt = float(np.mean(fig.series["MLT enabled"][10:]))
    kc = float(np.mean(fig.series["KC enabled"][10:]))
    nolb = float(np.mean(fig.series["No LB"][10:]))
    assert mlt > kc > nolb
