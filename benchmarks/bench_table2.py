"""Table 2 — complexities of close trie-structured approaches, measured.

Paper (analytic):

    Functionality   P-Grid        PHT           DLPT
    Tree Routing    O(log |Pi|)   O(D log P)    O(D)
    Local State     O(log |Pi|)   |N|/|P|·|A|   |N|/|P|·|A|

We regenerate the table empirically: live P-Grid / PHT / DLPT instances
over a common binary-key workload, measuring mean routing hops and mean
per-peer state at three (N, P) scales.  Expected shape: PHT pays a log P
factor over DLPT's pure O(D) routing; P-Grid's hops and state stay
logarithmic in the partition count.
"""

from __future__ import annotations

import math

from repro.experiments.tables import paper_table2_text, table2


def test_table2_complexities(benchmark, archive):
    res = benchmark.pedantic(
        lambda: table2(scales=((250, 32), (500, 64), (1000, 128)), key_bits=16),
        rounds=1, iterations=1,
    )
    archive(
        "table2_complexities",
        res.as_text() + "\n\npaper (analytic):\n" + paper_table2_text(),
    )

    dlpt = res.rows_for("DLPT")
    pht = res.rows_for("PHT")
    pgrid = res.rows_for("P-Grid")

    # DLPT routes in O(D): hop count is essentially flat as P quadruples.
    assert dlpt[-1].mean_routing_hops < dlpt[0].mean_routing_hops * 1.8
    # PHT pays the DHT factor: noticeably costlier than DLPT at every scale.
    for d, p in zip(dlpt, pht):
        assert p.mean_routing_hops > 1.5 * d.mean_routing_hops
    # PHT's extra cost grows with log P.
    assert pht[-1].mean_routing_hops > pht[0].mean_routing_hops
    # P-Grid: logarithmic routing and state in the partition count.
    for row in pgrid:
        assert row.mean_routing_hops <= 2 * math.log2(row.n_peers) + 4
        assert row.mean_local_state <= 2 * math.log2(row.n_keys) + 4
