"""Benchmark-suite helpers.

Every figure/table bench runs its harness once under pytest-benchmark (so
the suite reports wall-clock per experiment), prints the regenerated
series/table to stdout, and archives it under ``benchmarks/results/`` for
EXPERIMENTS.md.

Scale knobs (environment):
  REPRO_RUNS      repetitions per configuration (default: laptop-quick
                  values; the paper used 30/50/100)
  REPRO_PEERS     platform size (default 100, the paper's value)
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def runs(default: int) -> int:
    """Repetitions per configuration, overridable via REPRO_RUNS."""
    return int(os.environ.get("REPRO_RUNS", default))


def peers(default: int = 100) -> int:
    return int(os.environ.get("REPRO_PEERS", default))


@pytest.fixture
def archive():
    """Print a result block and save it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _archive(name: str, text: str) -> None:
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _archive
