"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation varies exactly one knob of the Section 4 configuration and
reports steady-state satisfaction (or Table 1-style gain):

  * MLT sweep fraction — the paper's "fixed fraction of the peers executes
    the MLT load balancing" is unquantified; we sweep it.
  * MLT split candidates — interior-only (paper's m−1) vs allowing empty
    assignments.
  * KC's k — the paper fixes k = 4; Ledlie & Seltzer study the trade-off.
  * Capacity heterogeneity ratio — the paper fixes max/min = 4.
  * Accounting model — destination (the min(L,C) objective's model) vs
    per-transit-hop charging.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_many
from repro.lb.kchoices import KChoices
from repro.lb.mlt import MLT
from repro.lb.nolb import NoLB
from repro.peers.capacity import UniformCapacity
from repro.peers.churn import DYNAMIC, STABLE
from repro.workloads.keys import grid_service_corpus

from conftest import peers, runs

LOAD = 0.4
SMALL_CORPUS = grid_service_corpus()


def steady(config, n) -> float:
    series = run_many(config, n)
    return series.steady_state_satisfaction(warmup=10)


def test_ablation_mlt_fraction(benchmark, archive):
    def sweep():
        rows = {}
        for fraction in (0.25, 0.5, 1.0):
            cfg = ExperimentConfig(
                n_peers=peers(), churn=STABLE, load_fraction=LOAD,
                lb=MLT(fraction=fraction),
            )
            rows[fraction] = steady(cfg, runs(2))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "\n".join(
        f"MLT fraction={f:<5}  steady-state satisfied = {v:6.1f}%"
        for f, v in rows.items()
    )
    archive("ablation_mlt_fraction", text)
    # More balancing never hurts much: the full sweep is at least close to
    # the best sampled fraction.
    assert rows[1.0] >= max(rows.values()) - 5.0


def test_ablation_mlt_allow_empty(benchmark, archive):
    def sweep():
        out = {}
        for allow in (False, True):
            cfg = ExperimentConfig(
                n_peers=peers(), churn=STABLE, load_fraction=LOAD,
                lb=MLT(allow_empty=allow),
            )
            out[allow] = steady(cfg, runs(2))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "\n".join(
        f"allow_empty={a!s:<6} steady-state satisfied = {v:6.1f}%"
        for a, v in rows.items()
    )
    archive("ablation_mlt_allow_empty", text)
    # Both variants must deliver a working balancer.
    assert min(rows.values()) > 30.0


def test_ablation_kc_k(benchmark, archive):
    def sweep():
        out = {}
        for k in (1, 2, 4, 8, 16):
            cfg = ExperimentConfig(
                n_peers=peers(), churn=DYNAMIC, load_fraction=LOAD,
                lb=KChoices(k=k),
            )
            out[k] = steady(cfg, runs(2))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "\n".join(
        f"KC k={k:<3} steady-state satisfied = {v:6.1f}%" for k, v in rows.items()
    )
    archive("ablation_kc_k", text)
    # k = 1 is a random probe; larger k should not be materially worse.
    assert rows[16] >= rows[1] - 5.0


def test_ablation_capacity_ratio(benchmark, archive):
    def sweep():
        out = {}
        for ratio in (1.0, 2.0, 4.0, 8.0):
            cfg = ExperimentConfig(
                n_peers=peers(), churn=STABLE, load_fraction=LOAD,
                capacity_model=UniformCapacity(base=5, ratio=ratio),
                lb=MLT(),
            )
            base = ExperimentConfig(
                n_peers=peers(), churn=STABLE, load_fraction=LOAD,
                capacity_model=UniformCapacity(base=5, ratio=ratio),
                lb=NoLB(),
            )
            m = run_many(cfg, runs(2)).total_satisfied_mean()
            b = run_many(base, runs(2)).total_satisfied_mean()
            out[ratio] = 100.0 * (m - b) / b
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "\n".join(
        f"capacity ratio={r:<4} MLT gain over NoLB = {v:7.1f}%"
        for r, v in rows.items()
    )
    archive("ablation_capacity_ratio", text)
    # MLT exploits heterogeneity but must help even on homogeneous peers
    # (placement imbalance exists regardless of capacity spread).
    assert all(v > 0 for v in rows.values())


def test_ablation_request_skew(benchmark, archive):
    """Popularity skew without lexicographic locality: Zipf-distributed
    requests (hot keys scattered across the tree) vs the uniform baseline.
    MLT's advantage persists because it balances *observed* per-node load,
    not key counts — the paper's core criticism of PHT/P-Grid balancing."""
    from repro.experiments.config import default_schedule
    from repro.workloads.requests import Phase, PhasedSchedule, ZipfRequests

    import random as _random

    def sweep():
        out = {}
        for skew_name, schedule in (
            ("uniform", default_schedule()),
            ("zipf1.0", PhasedSchedule(
                [Phase(0, 10_000, ZipfRequests(s=1.0, seed_rng=_random.Random(1)))]
            )),
            ("zipf1.5", PhasedSchedule(
                [Phase(0, 10_000, ZipfRequests(s=1.5, seed_rng=_random.Random(1)))]
            )),
        ):
            for lb in (MLT(), NoLB()):
                cfg = ExperimentConfig(
                    n_peers=peers(), churn=STABLE, load_fraction=LOAD,
                    lb=lb, schedule=schedule,
                )
                out[(skew_name, lb.name)] = steady(cfg, runs(2))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "\n".join(
        f"skew={s:<8} lb={l:<5} steady-state satisfied = {v:6.1f}%"
        for (s, l), v in rows.items()
    )
    archive("ablation_request_skew", text)
    for skew in ("uniform", "zipf1.0", "zipf1.5"):
        assert rows[(skew, "MLT")] > rows[(skew, "NoLB")]


def test_ablation_accounting_model(benchmark, archive):
    def sweep():
        out = {}
        for accounting in ("destination", "transit"):
            for lb in (MLT(), NoLB()):
                cfg = ExperimentConfig(
                    n_peers=peers(), churn=STABLE, load_fraction=0.1,
                    lb=lb, accounting=accounting,
                )
                out[(accounting, lb.name)] = steady(cfg, runs(2))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "\n".join(
        f"accounting={a:<12} lb={l:<5} steady-state satisfied = {v:6.1f}%"
        for (a, l), v in rows.items()
    )
    archive("ablation_accounting", text)
    # Transit accounting makes the upper tree a hard bottleneck: global
    # satisfaction drops sharply versus destination accounting.
    assert rows[("transit", "MLT")] < rows[("destination", "MLT")]
    # MLT still beats NoLB under either model.
    assert rows[("transit", "MLT")] > rows[("transit", "NoLB")]
    assert rows[("destination", "MLT")] > rows[("destination", "NoLB")]
