"""Table 1 — summary of gains of the KC and MLT heuristics.

Paper values (gain in satisfied requests over no-LB):

    Load   Stable MLT  Stable KC   Dynamic MLT  Dynamic KC
     5%      39.62%      38.58%      18.25%       32.47%
    10%     103.41%      58.95%      46.16%       51.00%
    16%     147.07%      64.97%      65.90%       59.11%
    24%     165.25%      59.27%      71.26%       60.01%
    40%     206.90%      68.16%      97.71%       67.18%
    80%     230.51%      76.99%      90.59%       71.93%

Expected shape: gains grow with load; MLT's stable-network gains dominate;
the dynamic network compresses MLT's advantage while KC holds up (and can
edge out MLT at the lowest loads — the paper's crossover).
"""

from __future__ import annotations

from repro.experiments.tables import TABLE1_LOADS, table1

from conftest import peers, runs

PAPER = {
    "stable": {
        0.05: (39.62, 38.58), 0.10: (103.41, 58.95), 0.16: (147.07, 64.97),
        0.24: (165.25, 59.27), 0.40: (206.90, 68.16), 0.80: (230.51, 76.99),
    },
    "dynamic": {
        0.05: (18.25, 32.47), 0.10: (46.16, 51.00), 0.16: (65.90, 59.11),
        0.24: (71.26, 60.01), 0.40: (97.71, 67.18), 0.80: (90.59, 71.93),
    },
}


def test_table1_gain_summary(benchmark, archive):
    res = benchmark.pedantic(
        lambda: table1(n_runs=runs(2), n_peers=peers()),
        rounds=1, iterations=1,
    )
    lines = [res.as_text(), "", "paper reference:"]
    for load in TABLE1_LOADS:
        sm, sk = PAPER["stable"][load]
        dm, dk = PAPER["dynamic"][load]
        lines.append(
            f"{load:>5.0%} | {sm:>9.2f}% {sk:>9.2f}% | {dm:>10.2f}% {dk:>9.2f}%"
        )
    lines.append(f"\nruns per cell: {res.n_runs} (paper: 30)")
    archive("table1_gain_summary", "\n".join(lines))

    stable = res.gains["stable"]
    dynamic = res.gains["dynamic"]
    # Shape 1: gains grow with load (compare the extremes, which are far
    # enough apart to be robust at small run counts).
    assert stable[0.80]["MLT"] > stable[0.05]["MLT"]
    assert dynamic[0.80]["MLT"] > dynamic[0.05]["MLT"]
    # Shape 2: at high load MLT's stable gain exceeds its dynamic gain.
    assert stable[0.80]["MLT"] > dynamic[0.80]["MLT"]
    # Shape 3: every high-load gain is positive and substantial.
    for net in ("stable", "dynamic"):
        assert res.gains[net][0.80]["MLT"] > 50
        assert res.gains[net][0.80]["KC"] > 10
