"""Fault-injection bench (extension, DESIGN.md §6 / paper future work).

The paper's conclusion defers fault handling to future work on real grids.
This bench quantifies the trie's maintenance cost under fail-stop crashes:

  * availability — fraction of registered keys surviving a crash wave,
    with and without successor replication;
  * repair cost — re-registrations needed to rebuild a consistent tree,
    as a function of the crash fraction (the "costly maintenance" the
    paper attributes to trie overlays).
"""

from __future__ import annotations

import random

from repro.dlpt.failures import ReplicationManager, crash_peer, repair
from repro.dlpt.system import DLPTSystem
from repro.peers.capacity import FixedCapacity
from repro.workloads.keys import grid_service_corpus

from conftest import peers, runs


def crash_wave(seed: int, crash_fraction: float, factor: int | None):
    """One experiment: deploy, optionally replicate, crash a fraction of
    peers simultaneously, repair; return (availability %, repair cost)."""
    rng = random.Random(seed)
    system = DLPTSystem(capacity_model=FixedCapacity(10**9))
    system.build(rng, peers(60))
    corpus = grid_service_corpus()
    for k in corpus:
        system.register(k)
    replication = None
    if factor is not None:
        replication = ReplicationManager(system, factor=factor)
        replication.replicate_all()

    n_crashes = max(1, round(crash_fraction * len(system.ring)))
    lost: set[str] = set()
    for _ in range(n_crashes):
        ids = system.ring.ids()
        report = crash_peer(system, ids[rng.randrange(len(ids))])
        if replication is not None:
            replication.on_peer_removed(report.peer_id)
        lost |= report.lost_keys
    rr = repair(system, replication, lost_keys=frozenset(lost))
    system.check_invariants()
    available = 100.0 * len(system.registered_keys()) / len(corpus)
    return available, rr.reinserted_keys


def test_fault_injection_availability(benchmark, archive):
    def sweep():
        rows = []
        for crash_fraction in (0.05, 0.15, 0.30):
            for factor in (None, 1, 2):
                av, cost = zip(*[
                    crash_wave(seed, crash_fraction, factor)
                    for seed in range(runs(3))
                ])
                rows.append((
                    crash_fraction,
                    factor,
                    sum(av) / len(av),
                    sum(cost) / len(cost),
                ))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'crash %':>8} {'replicas':>9} {'available %':>12} {'repair cost':>12}"]
    table = {}
    for frac, factor, av, cost in rows:
        label = "none" if factor is None else str(factor)
        lines.append(f"{frac:>8.0%} {label:>9} {av:>12.1f} {cost:>12.0f}")
        table[(frac, factor)] = av
    archive("fault_injection", "\n".join(lines))

    for frac in (0.05, 0.15, 0.30):
        # Replication strictly improves availability...
        assert table[(frac, 2)] >= table[(frac, None)]
        # ...and factor-2 keeps availability high even at a 30% crash wave.
        assert table[(frac, 2)] > 95.0
    # Without replication, availability degrades as the wave grows.
    assert table[(0.30, None)] < table[(0.05, None)]
