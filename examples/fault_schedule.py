#!/usr/bin/env python
"""Declarative fault schedules: crash storms swept over replication degrees.

The paper's Section 3 protocol handles graceful departure only, and the
conclusion (Section 5) defers fault handling to future work on a real
grid.  This example drives the fault axis end to end through the
experiment runner — the same path ``python -m repro run --faults`` and the
``fault_availability`` / ``fault_repair`` artifacts of ``repro paper``
use:

  * a ``crash_storm:0.05`` schedule (5% of peers fail-stop per unit) is
    swept over successor-replication degrees r = 0, 1, 2, showing key
    availability and repair cost per unit of protection;
  * the same storm is recorded into a ``repro-trace/1`` trace and replayed
    under a *weaker* policy — identical crashes, different survival — the
    controlled comparison the trace schema exists for.

Run:  PYTHONPATH=src python examples/fault_schedule.py
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import record_single, replay_single, run_single


def storm_config(r: int, seed: int = 1) -> ExperimentConfig:
    return ExperimentConfig(
        n_peers=60,
        total_units=40,
        faults=f"crash_storm:0.05:start=10:r={r}",
        seed=seed,
    )


def summarise(result) -> dict:
    units = result.units
    crashes = sum(u.crashes for u in units)
    return {
        "crashes": crashes,
        "lost": sum(u.keys_lost for u in units),
        "recovered": sum(u.keys_recovered for u in units),
        "unrecoverable": sum(u.keys_unrecoverable for u in units),
        "repair_per_crash": sum(u.repair_cost for u in units) / crashes if crashes else 0.0,
        "availability": units[-1].key_availability_pct,
    }


def main() -> None:
    print("crash_storm:0.05 over 40 units, replication degree swept:\n")
    print(f"{'r':>3} {'crashes':>8} {'lost':>6} {'recovered':>10} "
          f"{'unrecov':>8} {'repair/crash':>13} {'avail %':>8}")
    for r in (0, 1, 2):
        s = summarise(run_single(storm_config(r)))
        print(f"{r:>3} {s['crashes']:>8} {s['lost']:>6} {s['recovered']:>10} "
              f"{s['unrecoverable']:>8} {s['repair_per_crash']:>13.1f} "
              f"{s['availability']:>8.1f}")

    # Record the r=2 run's fault events, replay them with replication off:
    # the *same* crashes hit a system that cannot recover lost keys.
    recorded, trace = record_single(storm_config(2))
    weaker = replay_single(storm_config(0), trace)
    print("\nsame recorded crash schedule, two policies:")
    for label, result in (("recorded r=2", recorded), ("replayed r=0", weaker)):
        s = summarise(result)
        print(f"  {label}: {s['crashes']} crashes -> "
              f"{s['unrecoverable']} unrecoverable, "
              f"availability {s['availability']:.1f}%")
    print("\nTakeaway: the schedule is declarative and replayable — the fault "
          "axis varies the\nresponse policy while the failure sequence stays "
          "frozen, exactly like workload traces.")


if __name__ == "__main__":
    main()
