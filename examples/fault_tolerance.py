#!/usr/bin/env python
"""Fault tolerance: crash waves, successor replication, tree repair.

Extends the paper's Section 3 protocol, which covers graceful departure (a
leaving peer hands its nodes to its successor); real grids also crash — the
"costly maintenance" concern Section 2 raises against trie-structured
overlays.  This example deploys the
full service corpus, then hits the platform with increasingly severe
fail-stop crash waves and shows:

  * how many registrations survive without any protection,
  * how successor replication (factor 1 and 2) changes that,
  * what a full tree repair costs (the trie's "costly maintenance").

Run:  python examples/fault_tolerance.py
"""

from __future__ import annotations

import random

from repro.dlpt.failures import ReplicationManager, crash_peer, repair
from repro.dlpt.system import DLPTSystem
from repro.peers.capacity import FixedCapacity
from repro.workloads.keys import grid_service_corpus


def wave(seed: int, crash_fraction: float, replication_factor: int | None):
    rng = random.Random(seed)
    system = DLPTSystem(capacity_model=FixedCapacity(10**9))
    system.build(rng, 60)
    corpus = grid_service_corpus()
    for key in corpus:
        system.register(key)

    replication = None
    if replication_factor:
        replication = ReplicationManager(system, factor=replication_factor)
        replication.replicate_all()

    lost: set[str] = set()
    for _ in range(max(1, round(crash_fraction * len(system.ring)))):
        ids = system.ring.ids()
        report = crash_peer(system, ids[rng.randrange(len(ids))])
        if replication:
            replication.on_peer_removed(report.peer_id)
        lost |= report.lost_keys

    rr = repair(system, replication, lost_keys=frozenset(lost))
    system.check_invariants()
    return {
        "available": 100.0 * len(system.registered_keys()) / len(corpus),
        "lost_in_wave": len(lost),
        "recovered": rr.recovered_from_replicas,
        "unrecoverable": len(rr.unrecoverable_keys),
        "repair_cost": rr.reinserted_keys,
    }


def main() -> None:
    print(f"{'crash wave':>10} {'replicas':>9} {'keys hit':>9} "
          f"{'recovered':>10} {'lost':>6} {'avail %':>8} {'repair ops':>11}")
    for crash_fraction in (0.10, 0.25, 0.40):
        for factor in (None, 1, 2):
            stats = [wave(seed, crash_fraction, factor) for seed in range(5)]
            mean = lambda k: sum(s[k] for s in stats) / len(stats)
            label = "none" if factor is None else f"r={factor}"
            print(f"{crash_fraction:>10.0%} {label:>9} {mean('lost_in_wave'):>9.0f} "
                  f"{mean('recovered'):>10.0f} {mean('unrecoverable'):>6.0f} "
                  f"{mean('available'):>8.1f} {mean('repair_cost'):>11.0f}")
    print("\nTakeaway: successor replication turns a 40% simultaneous crash "
          "wave from losing a third of the\nregistry into near-full "
          "availability, at the cost of one full O(|N|) re-registration pass "
          "— the\ntrie-maintenance price the paper warns about.")


if __name__ == "__main__":
    main()
