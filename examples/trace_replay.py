#!/usr/bin/env python
"""Record a workload trace, replay it under every balancer.

Extends the Section 4 methodology (common random numbers across the three
curves of Figures 4–8) to its logical end: record the *entire workload* of
one run — churn arrivals and departures, registrations, every request with
its entry node — into a ``repro-trace/1`` JSONL stream, then replay the
identical traffic against MLT, KC and No-LB.  Replaying against the
recording configuration reproduces its metrics byte-for-byte; replaying
against the others is the paper's comparison on literally frozen traffic.

The workload here is a flash crowd on the S3L library (the Figure 8 hot
spot) with a diurnal rate cycle underneath — two of the generators the
workload subsystem adds beyond the paper's uniform/hot-spot regimes.

Run:  python examples/trace_replay.py
"""

from __future__ import annotations

import json
import tempfile

from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import phase_breakdown, run_metrics_dict
from repro.experiments.runner import record_single, replay_single
from repro.experiments.tables import phase_table
from repro.lb import balancer_from_spec
from repro.peers.churn import DYNAMIC
from repro.workloads.traces import WorkloadTrace


def main() -> None:
    config = ExperimentConfig(
        n_peers=60,
        total_units=60,
        growth_units=10,
        load_fraction=0.4,
        churn=DYNAMIC,
        workload={
            "kind": "diurnal",
            "period": 30,
            "amplitude": 0.4,
            "inner": "flash_crowd:S3L:onset=25:half_life=6",
        },
        lb=balancer_from_spec("mlt"),
    )

    print(f"recording:  {config.describe()}")
    result, trace = record_single(config)
    with tempfile.NamedTemporaryFile("w", suffix=".jsonl", delete=False) as fh:
        path = fh.name
        fh.write(trace.dumps())
    print(f"trace: {trace.n_units} units, {trace.total_requests} requests -> {path}\n")
    print(phase_table(phase_breakdown(result, config.schedule.phase_windows(config.total_units))))

    reloaded = WorkloadTrace.load(path)
    replayed = replay_single(config, reloaded)
    identical = json.dumps(run_metrics_dict(result), sort_keys=True) == json.dumps(
        run_metrics_dict(replayed), sort_keys=True
    )
    print(f"\nreplay vs recording metrics identical: {identical}")

    print("\nsame trace, every balancer:")
    for spec in ("mlt", "kc", "nolb"):
        res = replay_single(config.with_lb(balancer_from_spec(spec)), reloaded)
        pct = 100.0 * res.total_satisfied / res.total_issued
        print(f"  {spec:>4}: {res.total_satisfied}/{res.total_issued} satisfied ({pct:.1f}%)")


if __name__ == "__main__":
    main()
