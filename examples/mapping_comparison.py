#!/usr/bin/env python
"""Lexicographic vs DHT (random) mapping — the Figure 2 / Figure 9 story.

The original DLPT [5] mapped tree nodes onto peers through a DHT (Figure 2
shows the Chord-style ring).  That mapping destroys tree locality: parent
and child nodes land on unrelated peers, so almost every logical routing
hop costs a physical message.  The paper's self-contained lexicographic
mapping keeps subtrees co-located and cuts the communication (Figure 9).

This example builds the same tree under both mappings and compares:
  * where a sample subtree's nodes physically live;
  * logical vs physical hops per discovery request.

Run:  python examples/mapping_comparison.py
"""

from __future__ import annotations

import random

from repro.baselines.dlpt_dht import HashedMapping
from repro.dht.chord import ChordRing
from repro.dlpt.system import DLPTSystem
from repro.peers.capacity import FixedCapacity
from repro.workloads.keys import blas_routines, s3l_routines


def build(mapping_factory, seed=42):
    rng = random.Random(seed)
    system = DLPTSystem(
        capacity_model=FixedCapacity(10_000),
        mapping_factory=mapping_factory,
    )
    system.build(rng, n_peers=40)
    for name in blas_routines() + s3l_routines():
        system.register(name)
    return system, rng


def subtree_spread(system, prefix: str) -> int:
    """How many distinct peers host the nodes under ``prefix``?"""
    labels = [l for l in system.tree.labels() if l.startswith(prefix)]
    return len({system.mapping.host_of(l).id for l in labels})


def mean_hops(system, rng, n=400):
    keys = sorted(system.registered_keys())
    logical = physical = satisfied = 0
    for _ in range(n):
        out = system.discover(keys[rng.randrange(len(keys))], rng=rng)
        if out.satisfied:
            satisfied += 1
            logical += out.logical_hops
            physical += out.physical_hops
    return logical / satisfied, physical / satisfied


def chord_ring_sketch() -> None:
    """Figure 2 in miniature: keys mapped on a Chord ring by hashing."""
    print("Figure 2 sketch — Chord mapping of tree keys (hash space 0..2^16):")
    ring = ChordRing(bits=16)
    for name in ("peerA", "peerB", "peerC", "peerD"):
        ring.add_peer(name)
    for key in ("dgemm", "dgemv", "S3L_fft"):
        owner = ring.successor_peer(key)
        from repro.dht.hashing import hash_to_int

        print(f"  key {key:<8} hash={hash_to_int(key, 16):>6} -> {owner}")
    print()


def main() -> None:
    chord_ring_sketch()

    lex, rng_l = build(None)
    rnd, rng_r = build(HashedMapping)

    print(f"{'':<28}{'lexicographic':>15}{'random (DHT)':>15}")
    for prefix in ("dge", "S3L_", "s"):
        print(f"peers hosting subtree {prefix + '*':<6}"
              f"{subtree_spread(lex, prefix):>15}{subtree_spread(rnd, prefix):>15}")

    llog, lphy = mean_hops(lex, rng_l)
    rlog, rphy = mean_hops(rnd, rng_r)
    print(f"\n{'':<28}{'lexicographic':>15}{'random (DHT)':>15}")
    print(f"{'mean logical hops':<28}{llog:>15.2f}{rlog:>15.2f}")
    print(f"{'mean physical hops':<28}{lphy:>15.2f}{rphy:>15.2f}")
    print(f"\ncommunication saved by the lexicographic mapping: "
          f"{100 * (1 - lphy / rphy):.0f}% fewer physical messages "
          f"(same logical routing)")


if __name__ == "__main__":
    main()
