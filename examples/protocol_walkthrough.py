#!/usr/bin/env python
"""Message-level walkthrough of Algorithms 1–3.

Everything the macro simulator does atomically happens here the hard way:
peers exchange PeerJoin / NewPredecessor / DataInsertion / SearchingHost /
Host / UpdateChild messages over a latency-bearing simulated network, and
the tree, ring and mapping emerge from the protocol alone.

Run:  python examples/protocol_walkthrough.py
"""

from __future__ import annotations

import random

from repro.dlpt.protocol import ProtocolEngine
from repro.sim.network import UniformLatency


def main() -> None:
    rng = random.Random(18)  # LIP report number suffix

    eng = ProtocolEngine()
    eng.net.latency = UniformLatency(random.Random(99), 0.5, 1.5)

    # --- bootstrap + joins (Algorithms 1 & 2) ------------------------------
    eng.bootstrap_peer("mmmmmm", capacity=10)
    joiners = []
    while len(joiners) < 9:
        pid = "".join(rng.choice("abcdefghijklmnopqrstuvwxyz") for _ in range(6))
        if pid not in eng.peers:
            joiners.append(pid)
    for pid in joiners:
        eng.join_peer(pid, capacity=rng.randint(5, 20))
        eng.run()
    eng.check_ring()
    ring_ids = sorted(p.id for p in eng.peers.values())
    print(f"ring formed: {len(ring_ids)} peers")
    print("  " + " -> ".join(ring_ids[:5]) + " -> ...")

    # --- data insertion (Algorithm 3) ------------------------------------
    keys = ["dgemm", "dgemv", "daxpy", "dgetrf", "sgemm",
            "S3L_fft", "S3L_sort", "Pdgesv", "Psgesv"]
    for k in keys:
        eng.insert_data(k, datum=f"server-for-{k}")
        eng.run()
    eng.check_tree()
    eng.check_mapping()
    print(f"\ntree built by messages alone: {len(eng.node_labels())} nodes "
          f"(keys {len(keys)}, structural "
          f"{len(eng.node_labels()) - len(keys)})")
    for label in sorted(eng.node_labels()):
        host = eng.locator[label]
        shown = label if label else "ε"
        print(f"  node {shown:<10} on peer {host}")

    # --- a peer joins THROUGH the tree -------------------------------------
    print("\njoining peer 'dzzzzz' routed via node 'dgemm' (Algorithm 1):")
    eng.join_peer("dzzzzz", capacity=12, via="dgemm")
    eng.run()
    eng.check_ring()
    eng.check_mapping()
    taken = sorted(eng.peers["dzzzzz"].nodes)
    print(f"  newcomer took over nodes: {taken}")

    # --- discovery ----------------------------------------------------------
    print("\ndiscovery requests (reply carries data + hop count):")
    for k in ("dgemm", "S3L_sort", "does-not-exist"):
        eng.discover(k)
    eng.run()
    for reply in eng.discovery_replies:
        print(f"  {reply.key:<16} found={reply.found!s:<5} hops={reply.hops} "
              f"data={list(reply.data)}")

    print(f"\nnetwork totals: {eng.net.messages_sent} messages sent, "
          f"{eng.net.messages_delivered} delivered, "
          f"{eng.dead_node_messages} dead-lettered")


if __name__ == "__main__":
    main()
