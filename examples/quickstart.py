#!/usr/bin/env python
"""Quickstart: build a DLPT overlay, register services, discover them.

Reproduces the paper's Figure 1 trees along the way: the binary-identifier
example (1a) and the BLAS-routine example (1b) — "no hashing is required",
the tree is built directly over the service names.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import BINARY, DiscoveryService, DLPTSystem, PGCPTree
from repro.workloads.keys import blas_routines, paper_figure1_binary_keys


def figure_1a() -> None:
    print("=" * 64)
    print("Figure 1(a): PGCP tree over binary identifiers")
    print("=" * 64)
    tree = PGCPTree()
    for key in paper_figure1_binary_keys():
        tree.insert(key)
    tree.check_invariants()
    # '*' marks filled nodes (registered keys); 'o' marks the structural
    # nodes (101 and ε in the paper's figure).
    print(tree.render())
    print()


def figure_1b() -> None:
    print("=" * 64)
    print("Figure 1(b): PGCP tree over BLAS routine names (no hashing)")
    print("=" * 64)
    tree = PGCPTree()
    for key in ("dgemm", "dgemv", "daxpy", "dtrsm", "sgemm", "saxpy"):
        tree.insert(key)
    tree.check_invariants()
    print(tree.render())
    print()


def live_overlay() -> None:
    print("=" * 64)
    print("A live overlay: 32 peers, the full BLAS, flexible discovery")
    print("=" * 64)
    rng = random.Random(2008)

    system = DLPTSystem()           # lexicographic mapping, heterogeneous peers
    system.build(rng, n_peers=32)   # bootstrap the ring
    service = DiscoveryService(system)

    for name in blas_routines():
        service.register(name)
    system.check_invariants()
    print(f"peers: {system.n_peers}, tree nodes: {system.n_nodes}, "
          f"services: {len(service)}")

    # Exact discovery — routed through the tree with capacity accounting.
    out = service.discover("dgemm", rng=rng)
    print(f"discover('dgemm'): satisfied={out.satisfied} "
          f"logical_hops={out.logical_hops} physical_hops={out.physical_hops}")

    # Automatic completion of a partial search string.
    print(f"complete('dgem') -> {service.complete('dgem')}")

    # Lexicographic range query.
    print(f"range_search('dtrmm','dtrsv') -> "
          f"{service.range_search('dtrmm', 'dtrsv')}")

    # Where did the tree land? Show the 5 busiest peers by node count.
    peers = sorted(system.ring.peers(), key=lambda p: -len(p.nodes))[:5]
    print("\nbusiest peers (id prefix, capacity, #nodes hosted):")
    for p in peers:
        print(f"  {p.id[:12]:<14} cap={p.capacity:>3} nodes={len(p.nodes)}")


if __name__ == "__main__":
    figure_1a()
    figure_1b()
    live_overlay()
