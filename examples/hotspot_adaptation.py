#!/usr/bin/env python
"""Hot-spot adaptation (a compact Figure 8).

Simulates the paper's hot-spot timeline — uniform traffic, then a burst on
the S3L library, then a burst on ScaLAPACK ("P…") — under the three
balancers, and plots the per-unit percentage of satisfied requests as an
ASCII chart.  Watch the MLT curve collapse at each onset and climb back as
peers slide into the hot band; No-LB stays depressed.

Run:  python examples/hotspot_adaptation.py          (≈ 1 minute)
      REPRO_RUNS=5 python examples/hotspot_adaptation.py   (smoother curves)
"""

from __future__ import annotations

import os

from repro.experiments.ascii_plot import ascii_plot
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import compare_balancers
from repro.lb.kchoices import KChoices
from repro.lb.mlt import MLT
from repro.lb.nolb import NoLB
from repro.peers.churn import DYNAMIC
from repro.workloads.requests import figure8_schedule


def main() -> None:
    n_runs = int(os.environ.get("REPRO_RUNS", "2"))
    config = ExperimentConfig(
        n_peers=60,
        churn=DYNAMIC,
        load_fraction=0.5,
        total_units=160,
        schedule=figure8_schedule(intensity=0.8),
    )
    print(f"running 3 balancers x {n_runs} runs x 160 units "
          f"({config.n_peers} peers, load {config.load_fraction:.0%}) ...")
    results = compare_balancers(config, [MLT(), KChoices(k=4), NoLB()], n_runs)

    series = {
        name: list(res.mean_curve("satisfied_pct"))
        for name, res in results.items()
    }
    print()
    print(ascii_plot(
        series,
        width=80,
        height=22,
        y_min=0,
        y_max=100,
        x_label="time unit",
        y_label="% satisfied",
        title="Dynamic network with hot spots (S3L burst @40-80, 'P' burst @80-120)",
    ))

    print("\nphase means (% satisfied):")
    phases = [("uniform 20-40", 20, 40), ("S3L burst 40-80", 40, 80),
              ("'P' burst 80-120", 80, 120), ("uniform 140-160", 140, 160)]
    header = f"{'phase':<20}" + "".join(f"{n:>10}" for n in series)
    print(header)
    for label, a, b in phases:
        row = f"{label:<20}"
        for name in series:
            vals = series[name][a:b]
            row += f"{sum(vals) / len(vals):>10.1f}"
        print(row)


if __name__ == "__main__":
    main()
