#!/usr/bin/env python
"""Grid service discovery with multi-attribute queries.

Reproduces the service model of the paper's Sections 1–2: the paper
motivates DLPT as the discovery layer of a fully decentralised
grid middleware (the GRAAL/DIET context): clients look up computational
services — linear-algebra routines offered by heterogeneous servers — by
name, by partial name, by range, and by attribute constraints.

This example deploys the full corpus (BLAS + LAPACK + ScaLAPACK + S3L,
~900 services) over 100 peers, attaches attributes (library, precision,
parallelism), and exercises every query mode the trie supports.

Run:  python examples/grid_service_discovery.py
"""

from __future__ import annotations

import random

from repro import (
    DiscoveryService,
    DLPTSystem,
    ExactQuery,
    MultiAttributeQuery,
    PrefixQuery,
    RangeQuery,
)
from repro.peers.capacity import UniformCapacity
from repro.workloads.keys import grid_service_corpus


def attributes_for(name: str) -> dict[str, str]:
    """Derive realistic attributes from a routine's naming convention."""
    if name.startswith("S3L_"):
        return {"library": "s3l", "parallel": "yes", "precision": "double"}
    if name.startswith("P"):
        prec = {"s": "single", "d": "double", "c": "complex", "z": "zcomplex"}
        return {
            "library": "scalapack",
            "parallel": "yes",
            "precision": prec.get(name[1:2], "double"),
        }
    prec = {"s": "single", "d": "double", "c": "complex", "z": "zcomplex"}
    return {
        "library": "blas-lapack",
        "parallel": "no",
        "precision": prec.get(name[0], "double"),
    }


def main() -> None:
    rng = random.Random(6557)  # the report number

    system = DLPTSystem(capacity_model=UniformCapacity(base=20, ratio=4))
    system.build(rng, n_peers=100)
    service = DiscoveryService(system)

    corpus = grid_service_corpus()
    for name in corpus:
        service.register(name, attributes=attributes_for(name))
    system.check_invariants()
    print(f"registered {len(service)} services on {system.n_peers} peers "
          f"({system.n_nodes} tree nodes)\n")

    # -- exact lookup ------------------------------------------------------
    out = service.discover("pdgesv" if "pdgesv" in corpus else "Pdgesv", rng=rng)
    print(f"exact discover:            satisfied={out.satisfied}, "
          f"{out.logical_hops} logical / {out.physical_hops} physical hops")

    # -- completion (the paper's 'automatic completion of partial strings')
    partial = "dge"
    matches = service.complete(partial)
    print(f"complete({partial!r}):         {len(matches)} matches, e.g. {matches[:6]}")

    # -- range query ---------------------------------------------------------
    lo, hi = "dgeev", "dgesvd"
    in_range = service.range_search(lo, hi)
    print(f"range [{lo}, {hi}]: {len(in_range)} services")

    # -- single-attribute search ---------------------------------------------
    s3l = service.search(PrefixQuery("S3L_fft"))
    print(f"prefix S3L_fft*:           {s3l}")

    # -- multi-attribute conjunction ------------------------------------------
    query = MultiAttributeQuery(
        clauses={
            "library": ExactQuery("scalapack"),
            "precision": RangeQuery("double", "single"),  # double..single band
            "parallel": ExactQuery("yes"),
        }
    )
    hits = service.multi_attribute_search(query)
    print(f"{query.describe()}\n  -> {len(hits)} services, e.g. {hits[:5]}")

    # -- a day of traffic -----------------------------------------------------
    satisfied = issued = 0
    for unit in range(20):
        for _ in range(400):
            name = corpus[rng.randrange(len(corpus))]
            issued += 1
            if service.discover(name, rng=rng).satisfied:
                satisfied += 1
        system.end_time_unit()
    print(f"\n20 time units of uniform traffic: "
          f"{satisfied}/{issued} satisfied ({100 * satisfied / issued:.1f}%)")


if __name__ == "__main__":
    main()
