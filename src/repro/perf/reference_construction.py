"""Reference (seed) construction path — the "before" of the write-side batching.

Behavioural copies of the repository's pre-batch platform bootstrap and
service registration: one :meth:`DLPTSystem.add_peer` ring insert per peer,
and one full root-descent :meth:`PGCPTree.insert` — with a hook-driven
mapping placement (successor bisect + O(N) sorted-index insert) per created
node — per registered key.  Like :mod:`repro.perf.reference` (mapping) and
:mod:`repro.perf.reference_routing` (requests), these loops are kept so that

* :mod:`repro.perf.scenarios` can time the construction scenarios
  (``build``, ``growth``, ``crash_storm``) honestly under the ``seed``
  implementation axis,
* the experiment runner can pin ``construction="seed"`` (the
  :class:`repro.experiments.config.ExperimentConfig` switch) when a
  benchmark needs the pre-batch write path, and
* ``tests/core/test_construction_equivalence.py`` can property-check that
  the batched :meth:`DLPTSystem.register_batch` /
  :meth:`PGCPTree.insert_batch` fast path builds identical trees, mappings
  and counters.

Do not "optimise" this module; its slowness is its specification.
"""

from __future__ import annotations


def seed_build_platform(
    system, rng, n_peers=None, capacities=None, peer_ids=None
) -> None:
    """The seed's bootstrap loop (the pre-batch ``DLPTSystem.build``): one
    ring insert and one mapping join hook per peer, in caller order."""
    count = len(peer_ids) if peer_ids is not None else n_peers
    for i in range(count):
        system.add_peer(
            rng,
            peer_id=peer_ids[i] if peer_ids is not None else None,
            capacity=capacities[i] if capacities is not None else None,
        )


def seed_register_all(system, keys) -> int:
    """The seed's registration loop (the pre-batch growth path): every key
    pays a full root-descent insert, and every created node a hook-driven
    mapping placement."""
    register = system.register
    for key in keys:
        register(key)
    return len(keys)
