"""Reference (seed) discovery path — the "before" of the request-side speedups.

Byte-for-byte behavioural copies of the repository's pre-fast-path request
serving: a per-request up-then-down tree walk (parent pointers upward, one
child probe plus a GCP recomputation per downward step) followed by a
per-label host lookup loop for physical-hop counting and capacity
accounting.  Like :mod:`repro.perf.reference` for the mapping layer, these
functions are intentionally NOT used by the live system; they exist so that

* :mod:`repro.perf.scenarios` can time the request-serving scenarios
  (``request_flood``, ``flash_crowd``, ``replay``) honestly under the
  ``seed`` implementation axis, and
* ``tests/dlpt/test_discovery_equivalence.py`` can property-check that the
  indexed :class:`repro.dlpt.routing.DiscoveryRouter` fast path produces
  identical outcomes (satisfied/found/hops/drops) and identical peer-side
  accounting on any tree, workload and damage state.

Do not "optimise" this module; its slowness is its specification.
"""

from __future__ import annotations

from typing import Optional

from ..core.ids import common_prefix_len
from ..dlpt.routing import RequestOutcome, RoutePath


def seed_route_path(tree, entry_label: str, key: str) -> RoutePath:
    """The seed's up-then-down logical path computation (self-contained
    copy of the original ``repro.dlpt.routing.route_path``)."""
    node = tree.node(entry_label)
    if node is None:
        raise KeyError(f"entry node {entry_label!r} not in the tree")
    labels = [node.label]

    # -- upward phase -----------------------------------------------------
    while not key.startswith(node.label):
        parent = node.parent
        if parent is None:
            return RoutePath(labels=labels, found=False)
        node = parent
        labels.append(node.label)

    # -- downward phase ---------------------------------------------------
    while node.label != key:
        child = (
            node.children.get(key[len(node.label)])
            if len(key) > len(node.label)
            else None
        )
        if child is None:
            return RoutePath(labels=labels, found=False)
        cpl = common_prefix_len(child.label, key)
        if cpl < len(child.label):
            return RoutePath(labels=labels, found=False)
        node = child
        labels.append(node.label)

    return RoutePath(labels=labels, found=True)


def seed_discover(
    system,
    key: str,
    entry_label: Optional[str] = None,
    rng=None,
    accounting: str = "destination",
) -> RequestOutcome:
    """The seed's per-request discovery execution (self-contained copy of
    the original ``DLPTSystem.discover``): route walk, per-label host
    lookups, capacity accounting at the destination (or en route under
    ``transit``)."""
    if accounting not in ("destination", "transit"):
        raise ValueError(f"unknown accounting model {accounting!r}")
    if entry_label is None:
        if rng is None:
            raise ValueError("need rng when entry_label is not given")
        entry_label = system.random_entry_label(rng)
    path = seed_route_path(system.tree, entry_label, key)
    host_of = system.mapping.host_of

    physical_hops = 0
    prev_peer = None
    charge_transit = accounting == "transit"
    last = len(path.labels) - 1
    for i, label in enumerate(path.labels):
        peer = host_of(label)
        if prev_peer is not None and peer is not prev_peer:
            physical_hops += 1
        if charge_transit or i == last:
            if not peer.try_process(label):
                return RequestOutcome(
                    key=key,
                    satisfied=False,
                    found=False,
                    logical_hops=i,
                    physical_hops=physical_hops,
                    dropped_at=peer.id,
                )
        prev_peer = peer
    return RequestOutcome(
        key=key,
        satisfied=path.found,
        found=path.found,
        logical_hops=path.logical_hops,
        physical_hops=physical_hops,
    )
