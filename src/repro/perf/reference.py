"""Reference (seed) mapping implementations — the "before" of every speedup.

These classes are byte-for-byte behavioural copies of the repository's
original per-label mapping code: membership changes scan the successor's
whole node set with a Python-level interval predicate per label, and every
migration updates the host map and peer node-sets one label at a time.

They are intentionally NOT used by the live system.  They exist so that

* :mod:`repro.perf.bench` can report honest before/after timings against
  the interval-batched implementations on identical workloads, and
* ``tests/dlpt/test_mapping_equivalence.py`` can property-check that the
  optimised :class:`repro.dlpt.mapping.LexicographicMapping` produces
  byte-identical ``host`` maps and ``migrations`` counters on random
  join/leave/reposition sequences.

Do not "optimise" this module; its slowness is its specification.
"""

from __future__ import annotations

from typing import Dict, Set

from ..core.keyspace import in_interval_open_closed
from ..dht.hashing import DEFAULT_BITS, hash_to_int
from ..peers.peer import Peer
from ..peers.ring import Ring
from ..util.sortedlist import SortedList


class SeedLexicographicMapping:
    """The seed's self-contained mapping: per-label scans and moves."""

    supports_reposition = True

    def __init__(self, ring: Ring) -> None:
        self.ring = ring
        self.host: Dict[str, Peer] = {}
        self.migrations = 0

    # -- queries -----------------------------------------------------------

    def host_of(self, label: str) -> Peer:
        return self.host[label]

    def labels(self) -> Set[str]:
        return set(self.host)

    # -- tree change hooks -------------------------------------------------

    def on_node_created(self, label: str) -> None:
        peer = self.ring.successor_of_key(label)
        self.host[label] = peer
        peer.host_node(label)

    def on_node_removed(self, label: str) -> None:
        peer = self.host.pop(label)
        peer.drop_node(label)

    # -- membership change hooks -------------------------------------------

    def on_peer_joined(self, peer: Peer) -> int:
        if len(self.ring) <= 1:
            return 0
        succ = self.ring.successor(peer.id)
        pred = self.ring.predecessor(peer.id)
        moving = [
            lbl
            for lbl in succ.nodes
            if in_interval_open_closed(lbl, pred.id, peer.id)
        ]
        for lbl in moving:
            self._move(lbl, succ, peer)
        return len(moving)

    def on_peer_leaving(self, peer: Peer) -> int:
        if len(self.ring) <= 1:
            if peer.nodes:
                raise RuntimeError("cannot drain the last peer while nodes exist")
            return 0
        succ = self.ring.successor(peer.id)
        moving = list(peer.nodes)
        for lbl in moving:
            self._move(lbl, peer, succ)
        return len(moving)

    def reposition(self, peer: Peer, new_id: str) -> int:
        old_id = peer.id
        if new_id == old_id:
            return 0
        succ = self.ring.successor(old_id)
        self.ring.reposition(peer, new_id)
        if in_interval_open_closed(new_id, old_id, succ.id):
            moving = [
                lbl
                for lbl in succ.nodes
                if in_interval_open_closed(lbl, old_id, new_id)
            ]
            for lbl in moving:
                self._move(lbl, succ, peer)
        else:
            moving = [
                lbl
                for lbl in peer.nodes
                if in_interval_open_closed(lbl, new_id, old_id)
            ]
            for lbl in moving:
                self._move(lbl, peer, succ)
        return len(moving)

    # -- internals ---------------------------------------------------------

    def _move(self, label: str, src: Peer, dst: Peer) -> None:
        src.drop_node(label)
        dst.host_node(label)
        self.host[label] = dst
        self.migrations += 1

    # -- invariants --------------------------------------------------------

    def check_invariants(self) -> None:
        for label, peer in self.host.items():
            expected = self.ring.successor_of_key(label)
            assert peer is expected
            assert label in peer.nodes
        counted = sum(len(p.nodes) for p in self.ring)
        assert counted == len(self.host)


class SeedHashedMapping:
    """The seed's DHT (random-mapping) baseline: per-label hash scans."""

    supports_reposition = False

    def __init__(self, ring: Ring, bits: int = DEFAULT_BITS) -> None:
        self.ring = ring
        self.bits = bits
        self.modulus = 1 << bits
        self.host: Dict[str, Peer] = {}
        self._label_hash: Dict[str, int] = {}
        self._peer_positions: SortedList[int] = SortedList()
        self._peer_by_position: Dict[int, Peer] = {}
        self.migrations = 0

    def _hash(self, label: str) -> int:
        h = self._label_hash.get(label)
        if h is None:
            h = hash_to_int(label, self.bits)
            self._label_hash[label] = h
        return h

    def _peer_position(self, peer: Peer) -> int:
        return hash_to_int(peer.id, self.bits)

    def _owner_of_hash(self, h: int) -> Peer:
        pos = self._peer_positions.successor(h)
        return self._peer_by_position[pos]

    def host_of(self, label: str) -> Peer:
        return self.host[label]

    def on_node_created(self, label: str) -> None:
        peer = self._owner_of_hash(self._hash(label))
        self.host[label] = peer
        peer.host_node(label)

    def on_node_removed(self, label: str) -> None:
        peer = self.host.pop(label)
        peer.drop_node(label)
        self._label_hash.pop(label, None)

    def on_peer_joined(self, peer: Peer) -> int:
        pos = self._peer_position(peer)
        if pos in self._peer_by_position:
            raise ValueError(f"hash position collision for peer {peer.id!r}")
        first = len(self._peer_positions) == 0
        self._peer_positions.add(pos)
        self._peer_by_position[pos] = peer
        if first:
            return 0
        succ_pos = self._peer_positions.strict_successor(pos)
        succ = self._peer_by_position[succ_pos]
        pred_pos = self._peer_positions.predecessor(pos)
        moving = [
            lbl
            for lbl in succ.nodes
            if in_interval_open_closed(self._hash(lbl), pred_pos, pos)
        ]
        for lbl in moving:
            self._move(lbl, succ, peer)
        return len(moving)

    def on_peer_leaving(self, peer: Peer) -> int:
        pos = self._peer_position(peer)
        if len(self._peer_positions) <= 1:
            if peer.nodes:
                raise RuntimeError("cannot drain the last peer while nodes exist")
            self._peer_positions.discard(pos)
            self._peer_by_position.pop(pos, None)
            return 0
        succ_pos = self._peer_positions.strict_successor(pos)
        succ = self._peer_by_position[succ_pos]
        moving = list(peer.nodes)
        for lbl in moving:
            self._move(lbl, peer, succ)
        self._peer_positions.remove(pos)
        del self._peer_by_position[pos]
        return len(moving)

    def reposition(self, peer: Peer, new_id: str) -> int:
        raise NotImplementedError(
            "MLT repositioning is undefined under a hashed mapping"
        )

    def _move(self, label: str, src: Peer, dst: Peer) -> None:
        src.drop_node(label)
        dst.host_node(label)
        self.host[label] = dst
        self.migrations += 1

    def check_invariants(self) -> None:
        for label, peer in self.host.items():
            expected = self._owner_of_hash(self._hash(label))
            assert peer is expected
            assert label in peer.nodes
        counted = sum(len(p.nodes) for p in self.ring)
        assert counted == len(self.host)
