"""Statistical wall-clock timing: warmup + median-of-k over fresh state.

Micro-benchmarks of stateful systems have three classic traps: timing the
first (cold) execution, re-running over state mutated by the previous
repetition, and letting the cyclic garbage collector fire mid-measurement
(a gen-2 pass over a 10⁴-peer system costs more than the workload under
study).  :func:`measure` avoids all three — every repetition builds fresh
state via ``prepare`` (untimed) and executes ``execute`` once (timed) with
collection of ``prepare``'s garbage pulled in front of the clock and the
collector paused inside the timed window; ``warmup`` discarded lead-in
repetitions come first.  The median is the headline number (robust to
scheduler noise); min/mean/max are kept for diagnosis.
"""

from __future__ import annotations

import gc
import statistics
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence


@dataclass(frozen=True)
class TimingStats:
    """Summary of one timed benchmark (seconds)."""

    runs: int
    warmup: int
    median_s: float
    mean_s: float
    min_s: float
    max_s: float
    samples: tuple[float, ...]

    def as_dict(self) -> dict:
        """Stable JSON form (``samples`` included for re-analysis)."""
        return {
            "runs": self.runs,
            "warmup": self.warmup,
            "median_s": self.median_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "samples": list(self.samples),
        }

    @staticmethod
    def from_samples(samples: Sequence[float], warmup: int) -> "TimingStats":
        if not samples:
            raise ValueError("need at least one timed sample")
        return TimingStats(
            runs=len(samples),
            warmup=warmup,
            median_s=statistics.median(samples),
            mean_s=statistics.fmean(samples),
            min_s=min(samples),
            max_s=max(samples),
            samples=tuple(samples),
        )


def time_once(prepare: Callable[[], Any], execute: Callable[[Any], Any]) -> float:
    """One repetition: fresh state, garbage pre-collected, collector paused
    during the timed window.  Returns elapsed seconds."""
    state = prepare()
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        execute(state)
        return time.perf_counter() - t0
    finally:
        if gc_was_enabled:
            gc.enable()


def measure(
    prepare: Callable[[], Any],
    execute: Callable[[Any], Any],
    repeat: int = 5,
    warmup: int = 1,
) -> TimingStats:
    """Time ``execute(prepare())`` ``repeat`` times on fresh state each.

    ``prepare`` builds the scenario state (untimed); ``execute`` runs the
    measured workload once.  ``warmup`` full prepare+execute cycles run
    first and are discarded (interpreter warm-up, allocator steady state).
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    for _ in range(warmup):
        execute(prepare())
    samples = [time_once(prepare, execute) for _ in range(repeat)]
    return TimingStats.from_samples(samples, warmup)
