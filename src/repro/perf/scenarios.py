"""Benchmark scenario registry: build, growth, churn-storm, crash-storm,
request-flood, flash-crowd, trace-replay, cached-sweep.

Every scenario is deterministic (seeded :class:`random.Random`) and comes in
two parameter *suites*:

* ``micro`` — seconds-scale, run by CI through
  ``benchmarks/check_regression.py`` to catch performance regressions;
* ``scale`` — the 10⁴-peer / 10⁵-key configurations behind the headline
  numbers in ``BENCH_scale.json``.

Each scenario separates untimed ``prepare`` (state construction, id/corpus
generation) from the timed ``execute`` so the measurement covers only the
system operations under study.  The ``impl`` axis selects the frozen seed
implementations versus the live code: ``"seed"`` pairs the per-label
reference mapping (:mod:`repro.perf.reference`) with the per-request
reference discovery walk (:mod:`repro.perf.reference_routing`) and the
per-peer/per-key construction loops
(:mod:`repro.perf.reference_construction`); ``"optimised"`` runs the live
interval-batched :class:`repro.dlpt.mapping.LexicographicMapping`, the
indexed, batched discovery fast path
(:class:`repro.dlpt.routing.DiscoveryRouter` via
:meth:`DLPTSystem.discover_batch`), and the bulk construction path
(:meth:`DLPTSystem.add_peers` + :meth:`DLPTSystem.register_batch`).

The ``churn_storm`` scenario is the headline: a flash-crowd region of the
identifier space loses all its peers (their node intervals pile up on the
survivor just above the region) and then regains them one by one (each
join splits the pile).  The seed implementation scans the pile's whole
node set per event; the indexed implementation does two bisects and a
batched slice move.

``flash_crowd`` drives the workload subsystem's burst schedule through the
discovery path (sampling + routing + capacity accounting over time units);
``replay`` records a full MLT-under-churn experiment once (untimed) and
times its deterministic re-execution from the ``repro-trace/1`` stream —
the end-to-end simulation hot path under each mapping implementation.

``sweep_cached`` repurposes the ``impl`` axis for the sweep result store
(:mod:`repro.sweeps`): ``"seed"`` executes a small sweep plan against a
cold (empty) store, ``"optimised"`` against a warm one where every cell is
a cache hit — its ``speedup_median`` is therefore the warm-cache speedup,
gated to stay ≥ 10× by ``benchmarks/check_regression.py`` and the tier-2
bench test.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..core.alphabet import PRINTABLE
from ..dlpt.system import DLPTSystem
from ..peers.capacity import FixedCapacity
from .reference import SeedLexicographicMapping

#: Fraction of peers whose identifiers align with the key namespace (the
#: paper's premise that "some regions of the ring are more densely
#: populated than others"); the rest draw uniform random identifiers.
_ALIGNED_FRACTION = 0.8

_FAMILY_DIGITS = string.ascii_lowercase


def _mapping_factory(impl: str) -> Optional[Callable]:
    if impl == "seed":
        return SeedLexicographicMapping
    if impl == "optimised":
        return None  # DLPTSystem default: the live LexicographicMapping
    raise ValueError(f"unknown impl {impl!r} (expected 'seed' or 'optimised')")


def family_prefix(index: int) -> str:
    """Deterministic two-letter service-family prefix: ``aa.``, ``ab.``, …"""
    n = len(_FAMILY_DIGITS)
    return _FAMILY_DIGITS[index // n] + _FAMILY_DIGITS[index % n] + "."


def clustered_corpus(rng: random.Random, n_keys: int, families: int) -> list[str]:
    """``n_keys`` distinct keys in ``families`` shared-prefix families —
    the prefix-clustered namespace the PGCP tree is designed around."""
    keys: set[str] = set()
    per_family = [n_keys // families + (1 if f < n_keys % families else 0)
                  for f in range(families)]
    for f, quota in enumerate(per_family):
        prefix = family_prefix(f)
        have = 0
        while have < quota:
            key = prefix + PRINTABLE.random_identifier(rng, 8)
            if key not in keys:
                keys.add(key)
                have += 1
    return sorted(keys)


def _peer_ids(rng: random.Random, n_peers: int, corpus: list[str]) -> list[str]:
    """Peer identifiers partially aligned with the corpus families."""
    ids: set[str] = set()
    while len(ids) < n_peers:
        if rng.random() < _ALIGNED_FRACTION:
            pid = corpus[rng.randrange(len(corpus))][:3] + PRINTABLE.random_identifier(rng, 12)
        else:
            pid = PRINTABLE.random_identifier(rng, 24)
        ids.add(pid)
    return sorted(ids)


def _build_system(params: Dict[str, Any], impl: str, rng: random.Random,
                  register: bool = True) -> tuple[DLPTSystem, list[str]]:
    corpus = clustered_corpus(rng, params["n_keys"], params["families"])
    system = DLPTSystem(
        alphabet=PRINTABLE,
        capacity_model=FixedCapacity(params.get("capacity", 1_000_000)),
        mapping_factory=_mapping_factory(impl),
    )
    # Untimed state construction: the batch paths apply under the live
    # mapping and fall back to the sequential loops under the seed one —
    # either way the resulting platform is identical (property-tested).
    system.add_peers(rng, peer_ids=_peer_ids(rng, params["n_peers"], corpus))
    if register:
        system.register_batch(corpus)
    return system, corpus


# -- scenario implementations ----------------------------------------------


def _prepare_build(params: Dict[str, Any], impl: str) -> Dict[str, Any]:
    _mapping_factory(impl)  # validate the axis before the timed phase
    rng = random.Random(params["seed"])
    corpus = clustered_corpus(rng, params["n_keys"], params["families"])
    return {
        "params": params,
        "impl": impl,
        "corpus": corpus,
        "peer_ids": _peer_ids(rng, params["n_peers"], corpus),
        "rng": rng,
    }


def _execute_build(state: Dict[str, Any]) -> DLPTSystem:
    params = state["params"]
    impl = state["impl"]
    system = DLPTSystem(
        alphabet=PRINTABLE,
        capacity_model=FixedCapacity(params.get("capacity", 1_000_000)),
        mapping_factory=_mapping_factory(impl),
    )
    rng = state["rng"]
    if impl == "seed":
        from .reference_construction import seed_build_platform, seed_register_all

        seed_build_platform(system, rng, peer_ids=state["peer_ids"])
        seed_register_all(system, state["corpus"])
    else:
        system.add_peers(rng, peer_ids=state["peer_ids"])
        system.register_batch(state["corpus"])
    return system


def _prepare_growth(params: Dict[str, Any], impl: str) -> Dict[str, Any]:
    rng = random.Random(params["seed"])
    system, corpus = _build_system(params, impl, rng, register=False)
    return {"system": system, "corpus": corpus, "impl": impl}


def _execute_growth(state: Dict[str, Any]) -> None:
    if state["impl"] == "seed":
        from .reference_construction import seed_register_all

        seed_register_all(state["system"], state["corpus"])
    else:
        state["system"].register_batch(state["corpus"])


def _prepare_churn_storm(params: Dict[str, Any], impl: str) -> Dict[str, Any]:
    rng = random.Random(params["seed"])
    system, corpus = _build_system(params, impl, rng)
    hot = family_prefix(0)
    in_arc = [pid for pid in system.ring.ids() if pid.startswith(hot)]
    # Leave highest-first so each victim's pile moves once, straight to the
    # survivor above the arc; rejoin lowest-first so every label is pulled
    # off the pile exactly once.  The work is linear in the arc's labels —
    # the timing difference is pure per-event implementation cost.
    victims = sorted(in_arc, reverse=True)[: params["storm"]]
    rejoins: list[str] = []
    taken = set(system.ring.ids())
    while len(rejoins) < len(victims):
        pid = hot + PRINTABLE.random_identifier(rng, 12)
        if pid not in taken:
            taken.add(pid)
            rejoins.append(pid)
    rejoins.sort()
    return {"system": system, "victims": victims, "rejoins": rejoins, "rng": rng}


def _execute_churn_storm(state: Dict[str, Any]) -> None:
    system = state["system"]
    rng = state["rng"]
    for pid in state["victims"]:
        system.remove_peer(pid)
    for pid in state["rejoins"]:
        system.add_peer(rng, peer_id=pid)


def _prepare_crash_storm(params: Dict[str, Any], impl: str) -> Dict[str, Any]:
    """Fail-stop wave + full repair: replicate the corpus, pick ``crashes``
    random victims.  The timed phase exercises the crash detach path and
    the O(|N|) repair rebuild under each mapping implementation."""
    from ..dlpt.failures import ReplicationManager

    rng = random.Random(params["seed"])
    system, corpus = _build_system(params, impl, rng)
    replication = ReplicationManager(system, factor=params.get("replication", 1))
    replication.replicate_all()
    ids = system.ring.ids()
    victims = [ids[i] for i in sorted(rng.sample(range(len(ids)), params["crashes"]))]
    return {"system": system, "replication": replication, "victims": victims}


def _execute_crash_storm(state: Dict[str, Any]) -> int:
    from ..dlpt.failures import crash_peer, repair

    system = state["system"]
    replication = state["replication"]
    lost: set[str] = set()
    for pid in state["victims"]:
        report = crash_peer(system, pid)
        replication.on_peer_removed(pid)
        lost |= report.lost_keys
    return repair(system, replication, lost_keys=frozenset(lost)).reinserted_keys


def _prepare_request_flood(params: Dict[str, Any], impl: str) -> Dict[str, Any]:
    rng = random.Random(params["seed"])
    system, corpus = _build_system(params, impl, rng)
    requests = [corpus[rng.randrange(len(corpus))] for _ in range(params["n_requests"])]
    return {"system": system, "requests": requests, "rng": rng, "impl": impl}


def _execute_request_flood(state: Dict[str, Any]) -> int:
    system = state["system"]
    rng = state["rng"]
    if state["impl"] == "seed":
        # Frozen per-request walk (entry drawn inside each call, exactly
        # like the pre-fast-path discover).
        from .reference_routing import seed_discover

        satisfied = 0
        for key in state["requests"]:
            if seed_discover(system, key, rng=rng).satisfied:
                satisfied += 1
        return satisfied
    # Live fast path: same entry-draw stream, served as one indexed batch.
    requests = state["requests"]
    pairs = list(zip(requests, system.random_entry_labels(rng, len(requests))))
    return system.discover_batch(pairs).satisfied


#: Recorded traces for the ``replay`` scenario, keyed by parameter set —
#: recording is deterministic and impl-independent, so one recording serves
#: every warmup/repeat/impl preparation of a bench run.
_REPLAY_TRACES: Dict[tuple, Any] = {}


def _prepare_flash_crowd(params: Dict[str, Any], impl: str) -> Dict[str, Any]:
    from ..workloads.dynamics import FlashCrowd

    rng = random.Random(params["seed"])
    system, corpus = _build_system(params, impl, rng)
    units = params["units"]
    schedule = FlashCrowd(
        prefix=family_prefix(0),
        onset=units // 4,
        half_life=max(1.0, units / 8),
        rate_surge=2.0,
    )
    return {
        "system": system,
        "corpus": corpus,
        "schedule": schedule,
        "units": units,
        "req_per_unit": params["req_per_unit"],
        "rng": rng,
        "impl": impl,
    }


def _execute_flash_crowd(state: Dict[str, Any]) -> int:
    system = state["system"]
    schedule = state["schedule"]
    corpus = state["corpus"]
    rng = state["rng"]
    sample = schedule.sample
    base = state["req_per_unit"]
    satisfied = 0
    if state["impl"] == "seed":
        from .reference_routing import seed_discover

        for unit in range(state["units"]):
            n_requests = max(1, round(base * schedule.rate_multiplier(unit)))
            for _ in range(n_requests):
                key = sample(unit, rng, corpus)
                if seed_discover(system, key, rng=rng).satisfied:
                    satisfied += 1
            system.end_time_unit()
        return satisfied
    # Live fast path: identical RNG stream (key draw, then entry draw, per
    # request), served unit by unit through the batch interface.
    entry_of = system.random_entry_label
    discover_batch = system.discover_batch
    for unit in range(state["units"]):
        n_requests = max(1, round(base * schedule.rate_multiplier(unit)))
        pairs = [
            (sample(unit, rng, corpus), entry_of(rng)) for _ in range(n_requests)
        ]
        satisfied += discover_batch(pairs).satisfied
        system.end_time_unit()
    return satisfied


def _sweep_plan(params: Dict[str, Any]):
    from ..experiments.config import ExperimentConfig
    from ..experiments.figures import three_curve_balancers
    from ..sweeps.plan import SweepCell, plan_from_cells

    cells = []
    for load in params["loads"]:
        config = ExperimentConfig(
            n_peers=params["n_peers"],
            total_units=params["units"],
            growth_units=max(1, params["units"] // 5),
            load_fraction=load,
            seed=params["seed"],
        )
        cells.extend(
            SweepCell(config=config.with_lb(lb), n_runs=params["runs"], label=lb.name)
            for lb in three_curve_balancers()
        )
    return plan_from_cells("bench-sweep", cells)


#: Warm stores for the ``sweep_cached`` scenario, keyed by parameter set —
#: filled once (untimed) and reused across repetitions, mirroring
#: ``_REPLAY_TRACES``.  TemporaryDirectory objects clean themselves up at
#: interpreter exit.
_SWEEP_WARM_STORES: Dict[str, Any] = {}


def _prepare_sweep_cached(params: Dict[str, Any], impl: str) -> Dict[str, Any]:
    """``impl`` maps onto the cache axis: ``"seed"`` = cold store (every
    cell computed), ``"optimised"`` = warm store (every cell a cache hit) —
    so ``speedup_median`` *is* the warm/cold ratio the ≥10× caching claim
    rests on."""
    import tempfile

    from ..sweeps.orchestrator import run_sweep
    from ..sweeps.store import ResultStore

    if impl not in ("seed", "optimised"):
        raise ValueError(f"unknown impl {impl!r} (expected 'seed' or 'optimised')")
    plan = _sweep_plan(params)
    if impl == "seed":
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-bench-sweep-")
        store = ResultStore(tmpdir.name)
    else:
        import json

        key = json.dumps(params, sort_keys=True)  # params hold lists: hash by JSON
        tmpdir = _SWEEP_WARM_STORES.get(key)
        if tmpdir is None:
            tmpdir = tempfile.TemporaryDirectory(prefix="repro-bench-sweep-warm-")
            _SWEEP_WARM_STORES[key] = tmpdir
            run_sweep(plan, ResultStore(tmpdir.name), workers=1)  # fill once, untimed
        store = ResultStore(tmpdir.name)
    # Keep the TemporaryDirectory alive through the timed execute.
    return {"plan": plan, "store": store, "_tmpdir": tmpdir}


def _execute_sweep_cached(state: Dict[str, Any]) -> int:
    from ..sweeps.orchestrator import run_sweep

    # workers=1: the cold side must time the simulations, not
    # machine-dependent process-pool startup (REPRO_WORKERS / CPU count).
    report = run_sweep(state["plan"], state["store"], workers=1)
    return len(report.outcomes)


def _prepare_replay(params: Dict[str, Any], impl: str) -> Dict[str, Any]:
    from ..experiments.config import ExperimentConfig
    from ..experiments.runner import record_single
    from ..lb.mlt import MLT
    from ..peers.churn import DYNAMIC

    def config_for(which: str) -> "ExperimentConfig":
        return ExperimentConfig(
            n_peers=params["n_peers"],
            total_units=params["units"],
            growth_units=max(1, params["units"] // 5),
            load_fraction=params.get("load", 0.5),
            workload=f"flash_crowd:S3L:onset={params['units'] // 4}",
            churn=DYNAMIC,
            lb=MLT(),
            mapping_factory=_mapping_factory(which),
            discovery="seed" if which == "seed" else "indexed",
            construction="seed" if which == "seed" else "bulk",
            seed=params["seed"],
        )

    # The trace depends only on the workload streams (impl-independent);
    # record it once per parameter set, untimed, and reuse it across every
    # warmup/repeat/impl preparation (prepare runs before each execute).
    key = tuple(sorted(params.items()))
    trace = _REPLAY_TRACES.get(key)
    if trace is None:
        _, trace = record_single(config_for("optimised"))
        _REPLAY_TRACES[key] = trace
    return {"config": config_for(impl), "trace": trace}


def _execute_replay(state: Dict[str, Any]) -> int:
    from ..experiments.runner import run_single

    result = run_single(state["config"], replay=state["trace"])
    return result.total_satisfied


# -- registry ---------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """A named, parameterised benchmark workload."""

    name: str
    description: str
    prepare: Callable[[Dict[str, Any], str], Any] = field(repr=False)
    execute: Callable[[Any], Any] = field(repr=False)


SCENARIOS: Dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            "build",
            "bootstrap a platform: join all peers, register all keys",
            _prepare_build,
            _execute_build,
        ),
        Scenario(
            "growth",
            "register the full corpus on an established ring",
            _prepare_growth,
            _execute_growth,
        ),
        Scenario(
            "churn_storm",
            "a hot region loses all its peers, then regains them",
            _prepare_churn_storm,
            _execute_churn_storm,
        ),
        Scenario(
            "crash_storm",
            "a fail-stop crash wave followed by a full tree repair",
            _prepare_crash_storm,
            _execute_crash_storm,
        ),
        Scenario(
            "request_flood",
            "a burst of discovery requests on a stable platform",
            _prepare_request_flood,
            _execute_request_flood,
        ),
        Scenario(
            "flash_crowd",
            "a Zipf-concentrated burst relaxes back over time units",
            _prepare_flash_crowd,
            _execute_flash_crowd,
        ),
        Scenario(
            "replay",
            "re-execute a recorded MLT-under-churn run from its trace",
            _prepare_replay,
            _execute_replay,
        ),
        Scenario(
            "sweep_cached",
            "run a sweep plan cold (seed impl) vs from a warm result store",
            _prepare_sweep_cached,
            _execute_sweep_cached,
        ),
    )
}

#: Per-suite scenario parameters.  ``micro`` is the CI regression suite
#: (seconds in total); ``scale`` is the headline 10⁴-peer configuration.
SUITES: Dict[str, Dict[str, Dict[str, Any]]] = {
    "micro": {
        "build": {"n_peers": 400, "n_keys": 3000, "families": 8, "seed": 1},
        "growth": {"n_peers": 400, "n_keys": 3000, "families": 8, "seed": 2},
        # Sized so the optimised median lands in single-digit milliseconds
        # — large enough for a 25% regression threshold to measure code,
        # not clock jitter, while keeping the whole suite CI-fast.
        "churn_storm": {
            "n_peers": 4000, "n_keys": 40_000, "families": 8, "storm": 400, "seed": 3,
        },
        # A 10% wave on a 400-peer platform: big enough that the timed
        # phase is dominated by detach + rebuild work, not setup noise.
        "crash_storm": {
            "n_peers": 400, "n_keys": 3000, "families": 8, "crashes": 40, "seed": 7,
        },
        "request_flood": {
            "n_peers": 400, "n_keys": 3000, "families": 8,
            "n_requests": 3000, "seed": 4,
        },
        # req_per_unit sized so the timed phase is dominated by request
        # serving (not per-unit bookkeeping) and the speedup ratio is
        # stable across repetitions.
        "flash_crowd": {
            "n_peers": 400, "n_keys": 3000, "families": 8,
            "units": 24, "req_per_unit": 240, "seed": 5,
        },
        "replay": {"n_peers": 120, "units": 25, "load": 0.4, "seed": 6},
        # Six cells, two runs each: enough simulation work that the cold
        # side measures computation (not store IO), small enough to stay
        # CI-fast.  The warm side re-reads the same cells from disk.
        "sweep_cached": {
            "n_peers": 60, "units": 30, "runs": 2, "loads": [0.1, 0.5], "seed": 21,
        },
    },
    "scale": {
        "build": {"n_peers": 10_000, "n_keys": 50_000, "families": 16, "seed": 11},
        "growth": {"n_peers": 10_000, "n_keys": 50_000, "families": 16, "seed": 12},
        "churn_storm": {
            "n_peers": 10_000, "n_keys": 100_000, "families": 16,
            "storm": 400, "seed": 13,
        },
        "crash_storm": {
            "n_peers": 10_000, "n_keys": 50_000, "families": 16,
            "crashes": 200, "seed": 17,
        },
        "request_flood": {
            "n_peers": 10_000, "n_keys": 50_000, "families": 16,
            "n_requests": 20_000, "seed": 14,
        },
        "flash_crowd": {
            "n_peers": 10_000, "n_keys": 50_000, "families": 16,
            "units": 60, "req_per_unit": 300, "seed": 15,
        },
        "replay": {"n_peers": 500, "units": 50, "load": 0.5, "seed": 16},
        "sweep_cached": {
            "n_peers": 200, "units": 50, "runs": 3, "loads": [0.1, 0.5], "seed": 22,
        },
    },
}
