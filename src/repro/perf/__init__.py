"""Performance benchmarking subsystem (``python -m repro bench``).

The ROADMAP's north star is a platform that runs "as fast as the hardware
allows" at 10⁵-peer / 10⁶-key scale; this package is the instrument that
keeps that claim honest across PRs:

* :mod:`repro.perf.timing` — statistical wall-clock measurement (warmup
  pass plus median-of-k repetitions, fresh state per repetition);
* :mod:`repro.perf.reference` — a faithful copy of the seed's per-label
  mapping implementation, kept as the "before" side of every speedup
  number and as the oracle of the migration-equivalence property test;
* :mod:`repro.perf.reference_routing` — the matching copy of the seed's
  per-request discovery walk, the "before" of the request-path speedups
  and the oracle of the discovery-equivalence property test;
* :mod:`repro.perf.scenarios` — the scenario registry (``build``,
  ``growth``, ``churn_storm``, ``request_flood``) with ``micro`` (CI-fast)
  and ``scale`` (10⁴-peer) parameter suites;
* :mod:`repro.perf.bench` — the runner and JSON writer emitting
  ``BENCH_micro.json`` / ``BENCH_scale.json`` in the stable
  ``repro-bench/1`` schema that ``benchmarks/check_regression.py`` and
  future PRs diff against.

Usage::

    python -m repro bench --suite micro          # CI regression numbers
    python -m repro bench --suite scale          # headline 10⁴-peer numbers
    python benchmarks/check_regression.py        # fail on >25% regression
"""

from .bench import run_suite, write_bench
from .scenarios import SCENARIOS, SUITES
from .timing import TimingStats, measure

__all__ = [
    "SCENARIOS",
    "SUITES",
    "TimingStats",
    "measure",
    "run_suite",
    "write_bench",
]
