"""Sustained-throughput benchmark suite (``python -m repro bench --suite throughput``).

The timed suites report batch *medians*; ROADMAP item 2 asks for the
serving path reframed as **sustained requests per second**.  This driver
offers rounds of discovery requests against a fixed platform — one round
per time unit, so per-peer capacity budgets reset between rounds exactly
as in the experiment runner — under a simple AIMD admission controller:

* while the drop fraction of a round stays within ``drop_tolerance``, the
  offered rate ramps additively (``+ramp`` requests/round, up to
  ``max_rate``);
* when per-peer capacity backpressure pushes drops above the tolerance,
  the rate backs off multiplicatively (halved, floored at ``min_rate``).

The controller's decisions depend only on request outcomes, which are
implementation-independent (property-tested), so the seed and optimised
sides face an identical admitted workload and the ``throughput_gain``
ratio isolates pure serving cost.  Each implementation block reports
``req_per_s`` (total offered requests over summed serve time) plus
nearest-rank p50/p95/p99 tails of the per-round serve latency, in the
``repro-bench/1`` schema alongside the usual host metadata and peak RSS.

``benchmarks/check_regression.py --throughput-smoke`` runs a shortened
version (few rounds) in CI and gates the gain floor.
"""

from __future__ import annotations

import math
import random
from time import perf_counter
from typing import Any, Dict, Optional, Sequence

from .scenarios import _build_system, family_prefix

#: Scenario parameter sets.  ``capacity`` is per-peer requests/round, so the
#: platform absorbs ``n_peers * capacity`` requests/round and the AIMD
#: equilibrium sits where the hottest hosts saturate; ``hot_family``
#: concentrates draws on family 0 so backpressure binds far below the
#: aggregate capacity (the admission controller, not the platform, sets
#: the admitted rate).
THROUGHPUT_SCENARIOS: Dict[str, Dict[str, Any]] = {
    "steady_state": {
        "description": "uniform key draws at an AIMD-admitted sustained rate",
        "n_peers": 400, "n_keys": 3000, "families": 8, "capacity": 25,
        "rounds": 60, "start_rate": 4000, "min_rate": 500, "max_rate": 12_000,
        "ramp": 500, "drop_tolerance": 0.02, "hot_fraction": 0.0, "seed": 31,
    },
    "hot_family": {
        "description": "60% of draws hit one service family; backpressure "
                       "clamps admission at the hot hosts' capacity",
        "n_peers": 400, "n_keys": 3000, "families": 8, "capacity": 25,
        "rounds": 60, "start_rate": 4000, "min_rate": 500, "max_rate": 12_000,
        "ramp": 500, "drop_tolerance": 0.02, "hot_fraction": 0.6, "seed": 32,
    },
}


def _nearest_rank(sorted_samples: list, q: float) -> float:
    """Nearest-rank percentile of a pre-sorted, non-empty sample list."""
    rank = max(1, math.ceil(q * len(sorted_samples)))
    return sorted_samples[rank - 1]


def _run_impl(params: Dict[str, Any], impl: str, rounds: int) -> Dict[str, Any]:
    rng = random.Random(params["seed"])
    system, corpus = _build_system(params, impl, rng)
    hot = [k for k in corpus if k.startswith(family_prefix(0))]
    hot_fraction = params["hot_fraction"]

    if impl == "seed":
        from .reference_routing import seed_discover

        def serve(pairs):
            satisfied = dropped = 0
            for key, entry in pairs:
                outcome = seed_discover(system, key, entry_label=entry)
                if outcome.satisfied:
                    satisfied += 1
                elif outcome.dropped:
                    dropped += 1
            return satisfied, dropped
    else:

        def serve(pairs):
            batch = system.discover_batch(pairs)
            return batch.satisfied, batch.dropped

    rate = float(params["start_rate"])
    min_rate, max_rate = params["min_rate"], params["max_rate"]
    ramp, tolerance = params["ramp"], params["drop_tolerance"]
    n_corpus, n_hot = len(corpus), len(hot)
    latencies: list[float] = []
    total = satisfied_total = dropped_total = throttled = 0
    elapsed = 0.0
    for _ in range(rounds):
        n = int(rate)
        # Key draws, then entry draws — the outcome sequence (and hence
        # the controller trajectory) is identical across implementations,
        # so both sides serve the same admitted workload.
        if hot_fraction:
            keys = [
                hot[rng.randrange(n_hot)]
                if rng.random() < hot_fraction
                else corpus[rng.randrange(n_corpus)]
                for _ in range(n)
            ]
        else:
            keys = [corpus[rng.randrange(n_corpus)] for _ in range(n)]
        pairs = list(zip(keys, system.random_entry_labels(rng, n)))
        t0 = perf_counter()
        sat, dropped = serve(pairs)
        dt = perf_counter() - t0
        system.end_time_unit()  # round == time unit: capacity budgets reset
        latencies.append(dt)
        elapsed += dt
        total += n
        satisfied_total += sat
        dropped_total += dropped
        if dropped > tolerance * n:
            rate = max(min_rate, rate * 0.5)  # multiplicative backoff
            throttled += 1
        else:
            rate = min(max_rate, rate + ramp)  # additive ramp
    ordered = sorted(latencies)
    return {
        "rounds": rounds,
        "total_requests": total,
        "satisfied": satisfied_total,
        "dropped": dropped_total,
        "elapsed_s": elapsed,
        "req_per_s": total / elapsed if elapsed > 0 else float("inf"),
        # Per-round serve latency tails (a round is one admitted burst);
        # median doubles as ``median_s`` to keep the repro-bench/1 impl
        # block convention.
        "median_s": _nearest_rank(ordered, 0.50),
        "latency_p50_ms": _nearest_rank(ordered, 0.50) * 1000.0,
        "latency_p95_ms": _nearest_rank(ordered, 0.95) * 1000.0,
        "latency_p99_ms": _nearest_rank(ordered, 0.99) * 1000.0,
        "admitted_rate_final": rate,
        "throttled_rounds": throttled,
    }


def run_throughput_scenario(
    name: str,
    params: Dict[str, Any],
    impls: Sequence[str] = ("seed", "optimised"),
    rounds: Optional[int] = None,
) -> Dict[str, Any]:
    """Drive one throughput scenario under each implementation; returns its
    JSON block.  ``rounds`` overrides the scenario's round count (the CI
    smoke runs a short version)."""
    n_rounds = rounds if rounds is not None else params["rounds"]
    if n_rounds < 1:
        raise ValueError("rounds must be >= 1")
    impl_stats = {impl: _run_impl(params, impl, n_rounds) for impl in impls}
    block: Dict[str, Any] = {
        "description": params["description"],
        "params": {**params, "rounds": n_rounds},
        "impls": impl_stats,
    }
    if "seed" in impl_stats and "optimised" in impl_stats:
        seed_rate = impl_stats["seed"]["req_per_s"]
        block["throughput_gain"] = (
            impl_stats["optimised"]["req_per_s"] / seed_rate
            if seed_rate > 0
            else float("inf")
        )
    return block


def run_throughput_suite(
    scenarios: Optional[Sequence[str]] = None,
    impls: Sequence[str] = ("seed", "optimised"),
    rounds: Optional[int] = None,
    verbose: bool = False,
) -> Dict[str, Any]:
    """Run the throughput scenarios and assemble a ``repro-bench/1``
    document (suite name ``"throughput"``)."""
    from .bench import SCHEMA, host_metadata, peak_rss_bytes

    names = list(scenarios) if scenarios else list(THROUGHPUT_SCENARIOS)
    unknown = [n for n in names if n not in THROUGHPUT_SCENARIOS]
    if unknown:
        raise ValueError(f"unknown scenarios {unknown!r} for suite 'throughput'")
    doc: Dict[str, Any] = {
        "schema": SCHEMA,
        "suite": "throughput",
        "host": host_metadata(),
        "scenarios": {},
    }
    for name in names:
        if verbose:
            print(f"[bench] throughput/{name} ...", flush=True)
        block = run_throughput_scenario(name, THROUGHPUT_SCENARIOS[name], impls, rounds)
        doc["scenarios"][name] = block
        if verbose:
            for impl in impls:
                stats = block["impls"][impl]
                print(
                    f"[bench]   {impl:>9}: {stats['req_per_s']:,.0f} req/s  "
                    f"p95 {stats['latency_p95_ms']:.2f}ms  "
                    f"p99 {stats['latency_p99_ms']:.2f}ms"
                )
            if "throughput_gain" in block:
                print(f"[bench]   gain: {block['throughput_gain']:.1f}x")
    doc["host"]["peak_rss_bytes"] = peak_rss_bytes()
    return doc
