"""Benchmark runner and ``BENCH_*.json`` writer (``python -m repro bench``).

Runs the scenario registry of :mod:`repro.perf.scenarios` under both the
seed (per-label) and optimised (interval-batched) mapping implementations
and emits a JSON document in the stable ``repro-bench/1`` schema::

    {
      "schema": "repro-bench/1",
      "suite": "micro",
      "repeat": 5,
      "warmup": 1,
      "scenarios": {
        "churn_storm": {
          "description": "...",
          "params": {...},
          "impls": {
            "seed":      {"runs": ..., "median_s": ..., ...},
            "optimised": {"runs": ..., "median_s": ..., ...}
          },
          "speedup_median": 12.3
        },
        ...
      }
    }

Future PRs diff their fresh numbers against the committed baselines
(``BENCH_micro.json`` / ``BENCH_scale.json`` at the repo root) via
``benchmarks/check_regression.py``; the schema string is bumped on any
breaking layout change so the checker can refuse to compare apples to
oranges.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import os
import pathlib
import platform
import pstats
import sys
from typing import Any, Dict, Optional, Sequence

from .scenarios import SCENARIOS, SUITES
from .timing import TimingStats, time_once

SCHEMA = "repro-bench/1"


def host_metadata() -> Dict[str, Any]:
    """Machine fingerprint recorded in every bench document, so baseline
    diffs across machines are interpretable (absolute medians are only
    comparable on matching hosts; the speedup ratio travels)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def peak_rss_bytes() -> Optional[int]:
    """Peak resident-set size of this process in bytes, or ``None`` when
    the platform does not expose it.  Recorded after each suite run so
    bench documents carry a memory footprint next to the host metadata
    (ROADMAP item 3's memory-as-a-gated-metric prerequisite).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; stdlib only,
    so the number is process-lifetime peak (setup included), comparable
    across runs of the same suite on the same host.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if peak <= 0:  # pragma: no cover - platform reports nothing
        return None
    return peak if sys.platform == "darwin" else peak * 1024

#: Both sides of every speedup number, in report order.
IMPLS = ("seed", "optimised")

#: Default output file per suite; resolved against the repository root by
#: :func:`default_out_path` so `check_regression.py` and the bench always
#: agree on where baselines live regardless of the invocation directory.
DEFAULT_OUT = {
    "micro": "BENCH_micro.json",
    "scale": "BENCH_scale.json",
    "throughput": "BENCH_throughput.json",
}


def default_out_path(suite: str) -> pathlib.Path:
    """``BENCH_<suite>.json`` anchored at the repository root when this
    package runs from a source checkout (the normal case); falls back to
    the current directory for an installed package."""
    for ancestor in pathlib.Path(__file__).resolve().parents:
        if (ancestor / "ROADMAP.md").exists() and (ancestor / "src").is_dir():
            return ancestor / DEFAULT_OUT[suite]
    return pathlib.Path(DEFAULT_OUT[suite])


def run_scenario(
    name: str,
    params: Dict[str, Any],
    repeat: int,
    warmup: int,
    impls: Sequence[str] = IMPLS,
) -> Dict[str, Any]:
    """Time one scenario under each implementation; returns its JSON block.

    Repetitions are *interleaved* across implementations (seed rep 0,
    optimised rep 0, seed rep 1, …) so slow process-lifetime drift —
    allocator growth, CPU frequency — biases every implementation equally
    instead of penalising whichever runs last.
    """
    scenario = SCENARIOS[name]
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    preparers = {impl: (lambda impl=impl: scenario.prepare(params, impl)) for impl in impls}
    for impl in impls:
        for _ in range(warmup):
            scenario.execute(preparers[impl]())
    samples: Dict[str, list[float]] = {impl: [] for impl in impls}
    for _ in range(repeat):
        for impl in impls:
            samples[impl].append(time_once(preparers[impl], scenario.execute))
    impl_stats: Dict[str, Any] = {
        impl: TimingStats.from_samples(samples[impl], warmup).as_dict()
        for impl in impls
    }
    block: Dict[str, Any] = {
        "description": scenario.description,
        "params": dict(params),
        "impls": impl_stats,
    }
    if "seed" in impl_stats and "optimised" in impl_stats:
        opt = impl_stats["optimised"]["median_s"]
        block["speedup_median"] = (
            impl_stats["seed"]["median_s"] / opt if opt > 0 else float("inf")
        )
    return block


def run_suite(
    suite: str,
    repeat: int = 5,
    warmup: int = 1,
    scenarios: Optional[Sequence[str]] = None,
    impls: Sequence[str] = IMPLS,
    verbose: bool = False,
) -> Dict[str, Any]:
    """Run every scenario of ``suite`` and assemble the bench document."""
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r} (have {sorted(SUITES)})")
    suite_params = SUITES[suite]
    names = list(scenarios) if scenarios else list(suite_params)
    unknown = [n for n in names if n not in suite_params]
    if unknown:
        raise ValueError(f"unknown scenarios {unknown!r} for suite {suite!r}")
    doc: Dict[str, Any] = {
        "schema": SCHEMA,
        "suite": suite,
        "repeat": repeat,
        "warmup": warmup,
        "host": host_metadata(),
        "scenarios": {},
    }
    for name in names:
        if verbose:
            print(f"[bench] {suite}/{name} ...", flush=True)
        block = run_scenario(name, suite_params[name], repeat, warmup, impls)
        doc["scenarios"][name] = block
        if verbose:
            for impl in impls:
                print(f"[bench]   {impl:>9}: median {block['impls'][impl]['median_s']:.4f}s")
            if "speedup_median" in block:
                print(f"[bench]   speedup: {block['speedup_median']:.1f}x")
    doc["host"]["peak_rss_bytes"] = peak_rss_bytes()
    return doc


def profile_scenario(
    name: str,
    params: Dict[str, Any],
    impl: str = "optimised",
    top: int = 12,
    sort: str = "tottime",
) -> str:
    """cProfile one scenario execution and return its top-``top`` report.

    State construction stays untimed (``prepare`` runs outside the
    profiler), mirroring how the timed suite measures — the report shows
    where the *measured* phase spends its time, which is where the next
    perf PR should start.
    """
    scenario = SCENARIOS[name]
    state = scenario.prepare(params, impl)
    profiler = cProfile.Profile()
    profiler.enable()
    scenario.execute(state)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(top)
    return buffer.getvalue()


def profile_suite(
    suite: str,
    scenarios: Optional[Sequence[str]] = None,
    impls: Sequence[str] = ("optimised",),
    top: int = 12,
) -> None:
    """``--profile-hotspots``: print per-scenario cProfile hotspot reports
    instead of timing medians — the data a perf PR starts from."""
    suite_params = SUITES[suite]
    names = list(scenarios) if scenarios else list(suite_params)
    unknown = [n for n in names if n not in suite_params]
    if unknown:
        raise ValueError(f"unknown scenarios {unknown!r} for suite {suite!r}")
    for name in names:
        for impl in impls:
            print(f"\n[bench] hotspots of {suite}/{name} ({impl}, top {top} by tottime)")
            print(profile_scenario(name, suite_params[name], impl, top=top))


def write_bench(path: str | pathlib.Path, doc: Dict[str, Any]) -> pathlib.Path:
    """Write a bench document with a stable, diff-friendly layout."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Run the performance benchmark suites and write BENCH_*.json.",
    )
    parser.add_argument("--suite", choices=sorted(SUITES) + ["throughput", "all"],
                        default="micro",
                        help="parameter suite to run (default micro); "
                        "'throughput' runs the sustained-rate driver")
    parser.add_argument("--rounds", type=int, default=None,
                        help="throughput suite: override driver rounds per "
                        "scenario (the CI smoke runs a short version)")
    parser.add_argument("--scenario", action="append", default=None,
                        help="restrict to named scenario(s); repeatable")
    parser.add_argument("--repeat", type=int, default=5,
                        help="timed repetitions per scenario (default 5)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="discarded warmup repetitions (default 1)")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_<suite>.json)")
    parser.add_argument("--impl", action="append", choices=IMPLS, default=None,
                        help="restrict to one implementation; repeatable")
    parser.add_argument("--profile-hotspots", action="store_true",
                        help="cProfile each scenario once (optimised impl unless "
                        "--impl narrows it) and print the top functions instead "
                        "of timing; no BENCH file is written")
    parser.add_argument("--top", type=int, default=12,
                        help="rows per hotspot report (default 12; "
                        "only with --profile-hotspots)")
    args = parser.parse_args(argv)

    if args.out and args.suite == "all":
        parser.error("--out is ambiguous with --suite all; run one suite at a time")
    suites = sorted(SUITES) + ["throughput"] if args.suite == "all" else [args.suite]
    impls = tuple(args.impl) if args.impl else IMPLS
    if args.profile_hotspots:
        profile_impls = tuple(args.impl) if args.impl else ("optimised",)
        for suite in suites:
            if suite == "throughput":
                if args.suite == "throughput":
                    parser.error("--profile-hotspots is not supported for "
                                 "the throughput suite")
                continue
            try:
                profile_suite(suite, scenarios=args.scenario,
                              impls=profile_impls, top=args.top)
            except ValueError as exc:
                parser.error(str(exc))
        return 0
    for suite in suites:
        try:
            if suite == "throughput":
                from .throughput import run_throughput_suite

                doc = run_throughput_suite(
                    scenarios=args.scenario,
                    impls=impls,
                    rounds=args.rounds,
                    verbose=True,
                )
            else:
                doc = run_suite(
                    suite,
                    repeat=args.repeat,
                    warmup=args.warmup,
                    scenarios=args.scenario,
                    impls=impls,
                    verbose=True,
                )
        except ValueError as exc:
            parser.error(str(exc))  # clean usage error, exit 2
        out = args.out or default_out_path(suite)
        path = write_bench(out, doc)
        print(f"[bench] wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    sys.exit(main())
