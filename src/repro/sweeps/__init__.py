"""Sweep orchestration: declarative plans, a content-addressed result
store, sharded execution with work stealing, and one-command paper
reproduction (``python -m repro paper``).

The pieces, bottom-up:

* :mod:`repro.sweeps.plan` — :class:`SweepCell` / :class:`SweepPlan` and
  the stable cell hash (SHA-256 over the resolved config signature);
* :mod:`repro.sweeps.store` — the ``repro-result/1`` on-disk store:
  atomic publishes, exact series round-trips, corruption detection;
* :mod:`repro.sweeps.orchestrator` — resumable sharded execution
  (``--shard i/n``) with cross-shard work stealing, plus the store-cached
  :data:`~repro.experiments.runner.SeriesRunner` the harnesses consume;
* :mod:`repro.sweeps.paper` — profiles, the paper-artifact registry
  (which cells each figure/table needs), and artifact assembly;
* :mod:`repro.sweeps.manifest` — the ``repro-manifest/1`` document tying
  artifact hashes to store cells, git revision and wall time;
* :mod:`repro.sweeps.cli` — the ``repro sweep`` / ``repro paper``
  subcommands.

End-to-end usage is documented in ``docs/reproduction.md``.
"""

from .manifest import MANIFEST_SCHEMA, build_manifest, git_revision, load_manifest
from .orchestrator import (
    CellOutcome,
    SweepReport,
    cached_series_runner,
    compute_cell,
    run_sweep,
)
from .paper import (
    ARTIFACTS,
    DEFAULT_PROFILE,
    PROFILES,
    PaperArtifact,
    SweepProfile,
    paper_plan,
    reproduce_paper,
)
from .plan import (
    SweepCell,
    SweepPlan,
    canonical_json,
    parse_shard,
    plan_from_cells,
    signature_hash,
)
from .store import RESULT_SCHEMA, ResultStore, ResultStoreError

__all__ = [
    "SweepCell", "SweepPlan", "canonical_json", "signature_hash", "parse_shard",
    "plan_from_cells",
    "RESULT_SCHEMA", "ResultStore", "ResultStoreError",
    "CellOutcome", "SweepReport", "run_sweep", "compute_cell",
    "cached_series_runner",
    "ARTIFACTS", "PROFILES", "DEFAULT_PROFILE", "PaperArtifact", "SweepProfile",
    "paper_plan", "reproduce_paper",
    "MANIFEST_SCHEMA", "build_manifest", "git_revision", "load_manifest",
]
