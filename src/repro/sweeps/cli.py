"""CLI for the sweep orchestrator: ``repro sweep`` and ``repro paper``.

``python -m repro paper`` is the one-command reproduction: sweep the full
paper plan into the result store, assemble every figure/table into
``--out`` (default ``out/paper``), and write the ``repro-manifest/1``
manifest.  A second invocation is pure cache assembly — byte-identical
artifacts, an order of magnitude faster.

``python -m repro sweep`` runs only the store-filling phase, with
``--shard i/n`` for multi-machine sweeps over a shared store: each machine
computes its hash-slice of the grid, then steals whatever is still
missing.  Afterwards ``repro paper`` on any machine assembles from the
warm store.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..experiments.parallel import env_workers
from .orchestrator import run_sweep
from .paper import ARTIFACTS, DEFAULT_PROFILE, PROFILES, paper_plan, reproduce_paper
from .plan import parse_shard
from .store import ResultStore, ResultStoreError

#: Default result-store directory (relative to the invocation directory;
#: point every shard of a multi-machine sweep at the same shared path).
DEFAULT_STORE = "repro-results"


def _common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--profile", choices=sorted(PROFILES), default=DEFAULT_PROFILE,
                        help=f"repetition/scale profile (default {DEFAULT_PROFILE}): "
                        + "; ".join(f"{p.name} = {p.description}" for p in PROFILES.values()))
    parser.add_argument("--store", default=DEFAULT_STORE, metavar="DIR",
                        help=f"result-store directory (default {DEFAULT_STORE}/; "
                        "share it between shards/machines to split a sweep)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size per cell (default: REPRO_WORKERS "
                        "env var, else CPU count capped at 16)")
    parser.add_argument("--force", action="store_true",
                        help="recompute cached cells (this shard's own slice)")
    parser.add_argument("--only", action="append", default=None, metavar="NAME",
                        choices=sorted(ARTIFACTS),
                        help="restrict to named artifact(s); repeatable "
                        f"(known: {', '.join(ARTIFACTS)})")


def sweep_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Fill the result store with the paper plan's cells "
        "(resumable; shard with --shard i/n across machines sharing the store).",
    )
    _common_arguments(parser)
    parser.add_argument("--shard", default="0/1", metavar="I/N",
                        help="compute shard i of n (default 0/1 = everything); "
                        "idle shards steal still-missing foreign cells")
    args = parser.parse_args(argv)
    try:
        shard = parse_shard(args.shard)
        workers = args.workers if args.workers is not None else env_workers()
        plan = paper_plan(PROFILES[args.profile], args.only)
    except ValueError as exc:
        parser.error(str(exc))
    store = ResultStore(args.store)
    print(f"[sweep] plan {plan.name}: {len(plan)} cells -> {store.root}/")
    try:
        run_sweep(
            plan, store, shard=shard, workers=workers, force=args.force, log=print
        )
    except ResultStoreError as exc:
        # Data-integrity failures are not usage errors: no usage block.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def paper_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro paper",
        description="One-command paper reproduction: sweep every supported "
        "figure/table into the result store, assemble the artifacts, and "
        "write a manifest (repro-manifest/1) recording hashes and timings.",
    )
    _common_arguments(parser)
    parser.add_argument("--out", default="out/paper", metavar="DIR",
                        help="artifact output directory (default out/paper)")
    args = parser.parse_args(argv)
    try:
        workers = args.workers if args.workers is not None else env_workers()
    except ValueError as exc:
        parser.error(str(exc))
    profile = PROFILES[args.profile]
    try:
        doc, manifest_path = reproduce_paper(
            args.out,
            ResultStore(args.store),
            profile,
            workers=workers,
            force=args.force,
            only=args.only,
            log=print,
        )
    except ResultStoreError as exc:
        # A corrupted store cell is a data problem, not a flag problem.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    artifacts = doc["artifacts"]
    fresh = doc["sweep"].get("computed", 0) + len(doc["assembly_computed"])
    print(
        f"[paper] {len(artifacts)} artifacts in {doc['elapsed_s']:.1f}s "
        f"({fresh} cells computed, profile={profile.name}, rev={doc['git_rev'][:12]})"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via `-m repro`
    sys.exit(paper_main())
