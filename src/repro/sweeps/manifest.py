"""Reproduction manifests (``repro-manifest/1``).

``python -m repro paper`` writes one manifest next to its artifacts
(``out/paper/manifest.json``) recording, per artifact: the output file,
its SHA-256, the paper anchor it reproduces, the wall time spent
assembling it, and the hashes of every result-store cell it consumed
(split into cache hits and fresh computations).  The header pins the
sweep profile, the store location, and the git revision the artifacts
were generated from.

Two reproductions are *equivalent* exactly when their per-artifact
``sha256`` values match — wall times and the git revision may differ (a
doc-only commit does not change the simulation), which is why those live
beside the hashes instead of inside the hashed artifacts.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import pathlib
import subprocess
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Schema tag of the manifest document.
MANIFEST_SCHEMA = "repro-manifest/1"


def git_revision(cwd: Optional[str] = None) -> str:
    """The commit hash of the checkout *this code* lives in, or
    ``"unknown"`` outside one (an installed package, a tarball) —
    reproduction must not require git.

    Resolved relative to this file, never the invocation directory: a
    ``repro paper`` run from inside some unrelated repository must not
    certify its artifacts against that repository's HEAD.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd if cwd is not None else pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip()


def file_sha256(path: pathlib.Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


@dataclass
class ArtifactRecord:
    """One regenerated figure/table in the manifest."""

    name: str
    path: str  # relative to the manifest's directory
    sha256: str
    anchor: str  # the paper figure/table it reproduces
    elapsed_s: float
    cells: List[str] = field(default_factory=list)  # store keys consumed
    #: Subset of ``cells`` computed during *this* invocation (sweep phase
    #: or assembly) rather than served from a pre-existing store.
    computed_cells: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "path": self.path,
            "sha256": self.sha256,
            "anchor": self.anchor,
            "elapsed_s": self.elapsed_s,
            "cells": list(self.cells),
            "computed_cells": list(self.computed_cells),
        }


def build_manifest(
    profile: str,
    store_root: str,
    artifacts: List[ArtifactRecord],
    elapsed_s: float,
    git_rev: Optional[str] = None,
    sweep: Optional[Dict[str, int]] = None,
    assembly_computed: Optional[List[str]] = None,
) -> Dict[str, Any]:
    """Assemble the manifest document for one ``repro paper`` invocation.

    ``sweep`` summarises the store-filling phase (computed/cached/stolen
    cell counts); ``assembly_computed`` lists cells the assembly phase had
    to compute itself — always empty unless the sweep plan has drifted
    from what the artifact builders request (a tier-1 test failure).
    """
    return {
        "schema": MANIFEST_SCHEMA,
        "profile": profile,
        "store": store_root,
        "git_rev": git_rev if git_rev is not None else git_revision(),
        "created": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "elapsed_s": elapsed_s,
        "sweep": dict(sweep or {}),
        "assembly_computed": list(assembly_computed or []),
        "artifacts": {record.name: record.as_dict() for record in artifacts},
    }


def write_manifest(path: pathlib.Path, doc: Dict[str, Any]) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path


def load_manifest(path: pathlib.Path) -> Dict[str, Any]:
    doc = json.loads(pathlib.Path(path).read_text())
    if doc.get("schema") != MANIFEST_SCHEMA:
        raise ValueError(
            f"manifest {path} has schema {doc.get('schema')!r}, "
            f"expected {MANIFEST_SCHEMA!r}"
        )
    return doc
