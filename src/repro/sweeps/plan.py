"""Declarative sweep plans: the cell grid behind paper reproduction.

The paper repeats every (mapping × balancer × workload) configuration
30–100 times (Figures 4–10 of conf_ipps_CaronDT08); a *sweep plan* names
that grid explicitly instead of hand-driving ``run_many`` per point.  The
unit is the :class:`SweepCell` — one fully resolved
:class:`~repro.experiments.config.ExperimentConfig` plus its repetition
count — and a cell's identity is the **cell hash**: SHA-256 over the
canonical JSON of the resolved config signature
(:meth:`ExperimentConfig.signature`) and ``n_runs``.

Hash stability rules (documented in ``docs/reproduction.md``):

* the hash covers *semantic* fields only — platform, workload, balancer
  parameters, seed, repetition count; presentation (the cell ``label``)
  is excluded;
* canonical JSON sorts keys, so dict ordering can never change a hash;
* the corpus contributes a content hash, not the key list, keeping
  signatures small at 10⁵-key scale;
* per-run randomness derives from ``(config.seed, run_index)``, so a
  cell's hash pins its entire result — this is what makes the result
  store (:mod:`repro.sweeps.store`) safe to share between machines.

Sharding: :meth:`SweepCell.shard_of` assigns each cell to one of ``n``
shards by its hash, so every shard of a multi-machine sweep computes a
disjoint, deterministic slice with no coordination beyond the shared
store.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..experiments.config import ExperimentConfig


def canonical_json(doc: object) -> str:
    """The one serialisation hashes are computed over: sorted keys, no
    whitespace.  Using a single helper everywhere is what makes the
    "ordering never matters" rule enforceable."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def signature_hash(signature: Dict[str, object]) -> str:
    """SHA-256 hex digest of a signature's canonical JSON."""
    return hashlib.sha256(canonical_json(signature).encode()).hexdigest()


@dataclass(frozen=True, eq=False)
class SweepCell:
    """One grid point: a resolved config, how often to repeat it, and a
    display label (presentation only — never part of the identity)."""

    config: ExperimentConfig
    n_runs: int
    label: str

    def __post_init__(self) -> None:
        if self.n_runs < 1:
            raise ValueError("a sweep cell needs n_runs >= 1")
        # The cell is frozen, so hash once: signature() re-hashes the whole
        # corpus, and planning/sharding/execution ask for the key often.
        object.__setattr__(self, "_key", signature_hash(self.signature()))

    def signature(self) -> Dict[str, object]:
        """The resolved identity the store keys on: config + repetitions."""
        return {"config": self.config.signature(), "n_runs": self.n_runs}

    def key(self) -> str:
        """The cell hash (stable across processes, machines, dict orders)."""
        return self._key

    def shard_of(self, n_shards: int) -> int:
        """Which of ``n_shards`` owns this cell (hash-partitioned)."""
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        return int(self.key()[:16], 16) % n_shards


@dataclass
class SweepPlan:
    """A named, de-duplicated list of cells.

    Cells whose hashes collide are the *same* experiment (e.g. Figure 4's
    stable/low-load point reappearing as Table 1's 10% row); the plan keeps
    the first occurrence so shared points are computed once and cached for
    every consumer.
    """

    name: str
    cells: List[SweepCell] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen: Dict[str, SweepCell] = {}
        deduped: List[SweepCell] = []
        for cell in self.cells:
            key = cell.key()
            if key not in seen:
                seen[key] = cell
                deduped.append(cell)
        self.cells = deduped
        self._by_key = seen

    def __len__(self) -> int:
        return len(self.cells)

    def keys(self) -> List[str]:
        return [cell.key() for cell in self.cells]

    def cell_for(self, key: str) -> SweepCell:
        return self._by_key[key]

    def shard_split(
        self, shard: int, n_shards: int
    ) -> Tuple[List[SweepCell], List[SweepCell]]:
        """``(own, foreign)`` cells for ``--shard shard/n_shards``.

        ``own`` is this shard's deterministic slice; ``foreign`` is every
        other shard's — the work-stealing pool an idle shard falls back to
        (see :func:`repro.sweeps.orchestrator.run_sweep`).
        """
        if not 0 <= shard < n_shards:
            raise ValueError(
                f"shard must satisfy 0 <= shard < n_shards, got {shard}/{n_shards}"
            )
        own = [c for c in self.cells if c.shard_of(n_shards) == shard]
        foreign = [c for c in self.cells if c.shard_of(n_shards) != shard]
        return own, foreign


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse the CLI's ``--shard i/n`` form (e.g. ``0/4``)."""
    try:
        index_text, _, total_text = text.partition("/")
        shard = (int(index_text), int(total_text))
    except ValueError:
        raise ValueError(
            f"--shard must look like i/n (e.g. 0/4), got {text!r}"
        ) from None
    if not 0 <= shard[0] < shard[1]:
        raise ValueError(
            f"--shard needs 0 <= i < n, got {text!r}"
        )
    return shard


def plan_from_cells(name: str, cells: Sequence[SweepCell]) -> SweepPlan:
    """Build a plan, preserving order, de-duplicating by cell hash."""
    return SweepPlan(name=name, cells=list(cells))
