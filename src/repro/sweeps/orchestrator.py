"""Sharded sweep execution with resume and cross-shard work stealing.

The orchestrator walks a :class:`~repro.sweeps.plan.SweepPlan` against a
shared :class:`~repro.sweeps.store.ResultStore`:

* **Resume** — a cell already in the store is skipped (``--force``
  recomputes this shard's own cells), so an interrupted sweep restarted
  with the same plan completes exactly the missing cells.
* **Sharding** — ``shard=(i, n)`` restricts primary work to the cells
  whose hash lands in shard ``i`` (``SweepCell.shard_of``), letting ``n``
  machines split one sweep with no coordinator beyond a shared store
  directory (NFS mount, synced volume).
* **Work stealing** — after finishing its own slice, a shard sweeps the
  *other* shards' cells and computes any still missing, re-checking the
  store immediately before each steal so a cell another machine just
  published is not recomputed.  A straggler shard can therefore never
  hold the sweep hostage; the SCOOP-style rule "idle workers take from
  whoever is behind" falls out of the store's atomic publishes.

Execution fans *across* cells, not just within them: both passes proceed
in waves of ``workers`` cells, and every ``(cell, run_index)`` task of a
wave goes to one shared process pool
(:func:`repro.experiments.parallel.run_many_configs`, sized by
``workers``/``REPRO_WORKERS``) — a 1-run-per-cell smoke sweep still
saturates the machine, while publishes land at wave granularity so an
interrupted sweep loses at most one wave and concurrent shards see each
other's progress.  Results are identical to sequential execution because
every run derives its RNG streams from ``(seed, run_index)``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..experiments.config import ExperimentConfig
from ..experiments.metrics import ExperimentSeries
from ..experiments.parallel import (
    default_workers,
    run_many_configs,
    run_many_parallel,
)
from ..experiments.runner import SeriesRunner
from .plan import SweepCell, SweepPlan
from .store import ResultStore


@dataclass(frozen=True)
class CellOutcome:
    """What happened to one cell during a sweep pass."""

    key: str
    label: str
    action: str  # "computed" | "cached"
    source: str  # "own" | "stolen"
    elapsed_s: float


@dataclass
class SweepReport:
    """The orchestrator's account of one sweep invocation."""

    plan_name: str
    shard: int
    n_shards: int
    outcomes: List[CellOutcome] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def computed(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.action == "computed"]

    @property
    def cached(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.action == "cached"]

    @property
    def stolen(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.source == "stolen" and o.action == "computed"]

    def summary(self) -> str:
        return (
            f"[sweep] {self.plan_name} shard {self.shard}/{self.n_shards}: "
            f"{len(self.computed)} computed ({len(self.stolen)} stolen), "
            f"{len(self.cached)} cache hits, {self.elapsed_s:.1f}s"
        )


def compute_cell(
    cell: SweepCell,
    store: ResultStore,
    workers: Optional[int] = None,
) -> Tuple[ExperimentSeries, float]:
    """Run one cell's repetitions and publish the result; returns the
    series and the compute wall time."""
    start = time.perf_counter()
    series = run_many_parallel(
        cell.config, cell.n_runs, label=cell.label, workers=workers
    )
    elapsed = time.perf_counter() - start
    store.put(cell.key(), series, cell.signature(), elapsed)
    return series, elapsed


def _compute_batch(
    cells: List[SweepCell],
    store: ResultStore,
    workers: Optional[int],
    source: str,
    report: SweepReport,
    emit: Callable[[str], None],
) -> None:
    """Compute a batch of cells by fanning every ``(cell, run_index)`` task
    over one shared pool, then publish each cell.  Per-cell ``elapsed_s``
    is the batch wall time apportioned by run count (individual timings
    are not observable inside a shared pool)."""
    if not cells:
        return
    tasks = [(cell.config, i) for cell in cells for i in range(cell.n_runs)]
    for cell in cells:
        emit(f"[sweep] computing {cell.label} ({cell.key()[:12]}…, {cell.n_runs} runs)")
    start = time.perf_counter()
    runs = run_many_configs(tasks, workers=workers)
    elapsed = time.perf_counter() - start
    cursor = 0
    for cell in cells:
        cell_runs = runs[cursor : cursor + cell.n_runs]
        cursor += cell.n_runs
        share = elapsed * cell.n_runs / len(tasks)
        series = ExperimentSeries(label=cell.label, runs=cell_runs)
        store.put(cell.key(), series, cell.signature(), share)
        report.outcomes.append(
            CellOutcome(cell.key(), cell.label, "computed", source, share)
        )


def run_sweep(
    plan: SweepPlan,
    store: ResultStore,
    shard: Tuple[int, int] = (0, 1),
    workers: Optional[int] = None,
    force: bool = False,
    log: Optional[Callable[[str], None]] = None,
) -> SweepReport:
    """Execute ``plan`` against ``store``; see the module docstring for the
    resume / shard / steal semantics.  ``force`` recomputes this shard's
    own cells (never stolen ones — a forced n-machine sweep would
    otherwise do every cell n times over)."""
    shard_index, n_shards = shard
    own, foreign = plan.shard_split(shard_index, n_shards)
    emit = log or (lambda message: None)
    report = SweepReport(plan_name=plan.name, shard=shard_index, n_shards=n_shards)
    start = time.perf_counter()

    # Both passes run in waves of ~workers cells: large enough that every
    # (cell, run) task of a wave saturates the shared pool, small enough
    # that publishes land incrementally — an interrupted sweep loses at
    # most one wave (resume), and other shards see progress as it happens
    # instead of only when a slice completes (work stealing).
    wave_size = max(1, workers if workers is not None else default_workers())

    remaining = list(own)
    while remaining:
        wave, remaining = remaining[:wave_size], remaining[wave_size:]
        to_compute: List[SweepCell] = []
        for cell in wave:
            if not force and cell.key() in store:
                report.outcomes.append(
                    CellOutcome(cell.key(), cell.label, "cached", "own", 0.0)
                )
            else:
                to_compute.append(cell)
        _compute_batch(to_compute, store, workers, "own", report, emit)

    # Steal pass: re-check the store at each wave boundary (the owning
    # shard may publish cells while this one computes).  Each shard walks
    # the foreign list in its own deterministic shuffled order —
    # concurrently launched shards then start stealing from *different*
    # cells instead of colliding head-on and duplicating the slowest
    # shard's whole in-flight slice.
    remaining = list(foreign)
    random.Random(shard_index).shuffle(remaining)
    while remaining:
        wave, remaining = remaining[:wave_size], remaining[wave_size:]
        to_steal: List[SweepCell] = []
        for cell in wave:
            if cell.key() in store:
                report.outcomes.append(
                    CellOutcome(cell.key(), cell.label, "cached", "stolen", 0.0)
                )
            else:
                to_steal.append(cell)
        _compute_batch(to_steal, store, workers, "stolen", report, emit)

    report.elapsed_s = time.perf_counter() - start
    emit(report.summary())
    return report


def cached_series_runner(
    store: ResultStore,
    workers: Optional[int] = None,
    force: bool = False,
    on_cell: Optional[Callable[[SweepCell, str, str], None]] = None,
) -> SeriesRunner:
    """A :data:`~repro.experiments.runner.SeriesRunner` backed by the store.

    Figure/table harnesses called with this runner transparently reuse
    every cell a sweep already computed and publish whatever they compute
    fresh — so assembly after a sharded sweep is all cache hits, and
    assembly *without* a prior sweep still works, just cold.  ``on_cell``
    observes every request (cell, key, "cached"/"computed") — the hook the
    manifest uses to record an artifact's inputs.
    """

    def run_series(config: ExperimentConfig, n_runs: int, label: str) -> ExperimentSeries:
        cell = SweepCell(config=config, n_runs=n_runs, label=label)
        key = cell.key()
        series = None if force else store.get(key)
        if series is None:
            series, _ = compute_cell(cell, store, workers)
            action = "computed"
        else:
            # Labels are presentation, excluded from the key; serve the
            # caller's label, not whichever consumer stored the cell first.
            series.label = label
            action = "cached"
        if on_cell is not None:
            on_cell(cell, key, action)
        return series

    return run_series
