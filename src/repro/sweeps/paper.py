"""One-command paper reproduction: profiles, artifact registry, assembly.

This module is the bridge between the declarative sweep machinery and the
paper's figures/tables: it knows which cells each artifact needs (via the
config factories the figure/table harnesses themselves export, so the two
can never disagree), builds the full :class:`~repro.sweeps.plan.SweepPlan`,
and renders each artifact to a deterministic text file.

``python -m repro paper`` (see :mod:`repro.sweeps.cli`) drives
:func:`reproduce_paper`: sweep the plan into the result store (resumable,
shardable), then assemble every artifact from the warm store and write a
``repro-manifest/1`` manifest.  Artifacts are plain text (ASCII plot +
series table — the repository's figure format throughout) and are
byte-stable: re-assembling from the same store yields identical files, so
equal manifest hashes certify an exact reproduction.

Profiles scale repetition counts: ``paper`` is full fidelity (the 30/50/100
repetitions of conf_ipps_CaronDT08 Section 4), ``quick`` is the
minutes-scale default, ``smoke`` the seconds-scale CI grade.  The per-cell
seed is the profile's; within one figure every balancer variant shares it —
the paper's common-random-numbers comparison — while run indices fan out
the per-run streams.
"""

from __future__ import annotations

import pathlib
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..experiments.figures import (
    ALL_FIGURES,
    FIGURE_CONFIGS,
    fault_availability_configs,
    fault_repair_configs,
    figure9_configs,
    render_figure_text,
    three_curve_balancers,
)
from ..experiments.runner import SeriesRunner
from ..experiments.tables import (
    TABLE1_LOADS,
    TABLE1_NETWORKS,
    paper_table2_text,
    table1,
    table1_config,
    table2,
)
from .plan import SweepCell, SweepPlan, plan_from_cells


@dataclass(frozen=True)
class SweepProfile:
    """How hard to push a reproduction: platform size and repetitions."""

    name: str
    description: str
    n_peers: int
    seed: int
    runs: Mapping[str, int]  # artifact name -> repetitions per cell


PROFILES: Dict[str, SweepProfile] = {
    "smoke": SweepProfile(
        name="smoke",
        description="seconds-scale CI grade: 20 peers, 1 run per cell",
        n_peers=20,
        seed=20080617,
        runs={"fig4": 1, "fig5": 1, "fig6": 1, "fig7": 1, "fig8": 1,
              "fig9": 1, "table1": 1,
              "fault_availability": 1, "fault_repair": 1},
    ),
    "quick": SweepProfile(
        name="quick",
        description="minutes-scale default: the paper's platform, few runs",
        n_peers=100,
        seed=20080617,
        runs={"fig4": 3, "fig5": 3, "fig6": 3, "fig7": 3, "fig8": 3,
              "fig9": 3, "table1": 2,
              "fault_availability": 2, "fault_repair": 2},
    ),
    "paper": SweepProfile(
        name="paper",
        description="full fidelity: the paper's 30/50/100 repetitions",
        n_peers=100,
        seed=20080617,
        runs={"fig4": 30, "fig5": 30, "fig6": 30, "fig7": 30, "fig8": 50,
              "fig9": 100, "table1": 30,
              "fault_availability": 10, "fault_repair": 10},
    ),
}

#: The default profile of ``python -m repro paper``.
DEFAULT_PROFILE = "quick"


@dataclass(frozen=True)
class PaperArtifact:
    """One regenerable output: its paper anchor, sweep cells, and renderer."""

    name: str
    title: str
    #: Where in the paper the artifact comes from — the gallery key that
    #: ``docs/reproduction.md`` must document (enforced by the tier-1
    #: doc-consistency gate).
    anchor: str
    cells: Callable[[SweepProfile], List[SweepCell]]
    build: Callable[[SweepProfile, Optional[SeriesRunner]], str]


def _three_curve_cells(fig_id: str) -> Callable[[SweepProfile], List[SweepCell]]:
    def cells(profile: SweepProfile) -> List[SweepCell]:
        config = FIGURE_CONFIGS[fig_id](n_peers=profile.n_peers, seed=profile.seed)
        return [
            SweepCell(config=config.with_lb(lb), n_runs=profile.runs[fig_id], label=lb.name)
            for lb in three_curve_balancers()
        ]
    return cells


def _figure_build(fig_id: str) -> Callable[[SweepProfile, Optional[SeriesRunner]], str]:
    def build(profile: SweepProfile, run_series: Optional[SeriesRunner]) -> str:
        fig = ALL_FIGURES[fig_id](
            n_runs=profile.runs[fig_id],
            n_peers=profile.n_peers,
            seed=profile.seed,
            run_series=run_series,
        )
        return render_figure_text(fig, include_params=True) + "\n"
    return build


def _labeled_config_cells(
    name: str, configs_fn: Callable[..., Dict[str, "ExperimentConfig"]]
) -> Callable[[SweepProfile], List[SweepCell]]:
    """Cells for artifacts whose harness exports a ``label -> config``
    factory (figure 9 and the fault figures): one cell per labeled config,
    so the plan can never disagree with what the builder runs."""

    def cells(profile: SweepProfile) -> List[SweepCell]:
        return [
            SweepCell(config=config, n_runs=profile.runs[name], label=label)
            for label, config in configs_fn(
                n_peers=profile.n_peers, seed=profile.seed
            ).items()
        ]

    return cells


def _table1_cells(profile: SweepProfile) -> List[SweepCell]:
    cells: List[SweepCell] = []
    for _, churn in TABLE1_NETWORKS:
        for load in TABLE1_LOADS:
            config = table1_config(
                churn, load, n_peers=profile.n_peers, seed=profile.seed
            )
            cells.extend(
                SweepCell(
                    config=config.with_lb(lb),
                    n_runs=profile.runs["table1"],
                    label=lb.name,
                )
                for lb in three_curve_balancers()
            )
    return cells


def _table1_build(profile: SweepProfile, run_series: Optional[SeriesRunner]) -> str:
    result = table1(
        n_runs=profile.runs["table1"],
        n_peers=profile.n_peers,
        seed=profile.seed,
        run_series=run_series,
    )
    return (
        f"# table1: gains of KC and MLT over no-LB  (runs={result.n_runs})\n\n"
        f"{result.as_text()}\n"
    )


def _query_cost_build(profile: SweepProfile, run_series: Optional[SeriesRunner]) -> str:
    # Like table2, query_cost measures live baseline instances —
    # deterministic, sub-second, not an ExperimentSeries — so it bypasses
    # the store.  Every result set is oracle-checked before rendering.
    from ..baselines.query_cost import measure_query_cost

    result = measure_query_cost(seed=profile.seed)
    return (
        "# query_cost: set-query cost of DLPT vs P-Grid vs PHT "
        "(measured, oracle-checked)\n\n"
        f"{result.as_text()}\n"
    )


def _table2_build(profile: SweepProfile, run_series: Optional[SeriesRunner]) -> str:
    # Table 2 measures live P-Grid/PHT/DLPT instances — deterministic,
    # sub-second, and not an ExperimentSeries, so it bypasses the store.
    result = table2()
    return (
        "# table2: complexities of close trie-structured approaches (measured)\n\n"
        f"{result.as_text()}\n\npaper (analytic):\n{paper_table2_text()}\n"
    )


ARTIFACTS: Dict[str, PaperArtifact] = {
    artifact.name: artifact
    for artifact in (
        PaperArtifact(
            "fig4", "Load balancing - stable network - no overload",
            "Figure 4, Section 4 (stable network, no overload)",
            _three_curve_cells("fig4"), _figure_build("fig4"),
        ),
        PaperArtifact(
            "fig5", "Load balancing - stable network - overload",
            "Figure 5, Section 4 (stable network, overload)",
            _three_curve_cells("fig5"), _figure_build("fig5"),
        ),
        PaperArtifact(
            "fig6", "Comparing LB algorithms - dynamic network - no overload",
            "Figure 6, Section 4 (dynamic network, no overload)",
            _three_curve_cells("fig6"), _figure_build("fig6"),
        ),
        PaperArtifact(
            "fig7", "Comparing LB algorithms - dynamic network - overload",
            "Figure 7, Section 4 (dynamic network, overload)",
            _three_curve_cells("fig7"), _figure_build("fig7"),
        ),
        PaperArtifact(
            "fig8", "Load balancing - dynamic network - hot spots",
            "Figure 8, Section 4 (hot spots)",
            _three_curve_cells("fig8"), _figure_build("fig8"),
        ),
        PaperArtifact(
            "fig9", "Communication gain",
            "Figure 9, Section 4 (communication gain of the mapping)",
            _labeled_config_cells("fig9", figure9_configs), _figure_build("fig9"),
        ),
        PaperArtifact(
            "fault_availability",
            "Availability vs replication degree - crash storms",
            "Section 5, beyond the paper (availability under crash storms)",
            _labeled_config_cells("fault_availability", fault_availability_configs),
            _figure_build("fault_availability"),
        ),
        PaperArtifact(
            "fault_repair", "Repair cost vs crash rate",
            "Section 5, beyond the paper (repair cost of trie maintenance)",
            _labeled_config_cells("fault_repair", fault_repair_configs),
            _figure_build("fault_repair"),
        ),
        PaperArtifact(
            "table1", "Gains of KC and MLT over no-LB",
            "Table 1, Section 4 (gain per load level)",
            _table1_cells, _table1_build,
        ),
        PaperArtifact(
            "table2", "Complexities of close trie-structured approaches",
            "Table 2, Section 2 (P-Grid / PHT / DLPT complexities)",
            lambda profile: [], _table2_build,
        ),
        PaperArtifact(
            "query_cost", "Set-query cost of DLPT vs P-Grid vs PHT",
            "Section 2, beyond the paper (range/prefix query cost)",
            lambda profile: [], _query_cost_build,
        ),
    )
}


def paper_plan(
    profile: SweepProfile, only: Optional[Sequence[str]] = None
) -> SweepPlan:
    """The full (de-duplicated) cell grid behind the selected artifacts."""
    names = list(only) if only else list(ARTIFACTS)
    unknown = [n for n in names if n not in ARTIFACTS]
    if unknown:
        raise ValueError(
            f"unknown artifact(s) {unknown!r} (known: {', '.join(ARTIFACTS)})"
        )
    cells: List[SweepCell] = []
    for name in names:
        cells.extend(ARTIFACTS[name].cells(profile))
    return plan_from_cells(f"paper-{profile.name}", cells)


def reproduce_paper(
    out_dir: str | pathlib.Path,
    store: "ResultStore",
    profile: SweepProfile,
    workers: Optional[int] = None,
    force: bool = False,
    only: Optional[Sequence[str]] = None,
    log: Optional[Callable[[str], None]] = None,
) -> Tuple[Dict[str, object], pathlib.Path]:
    """Regenerate every selected artifact into ``out_dir``; returns the
    manifest document and its path.

    Two phases: first the plan is swept into the store (so an interrupted
    reproduction resumes, and a prior ``repro sweep`` — sharded across
    machines or not — turns this into pure assembly), then each artifact
    is assembled via the store-cached runner and written with its SHA-256
    recorded in the manifest.  ``force`` recomputes the sweep's cells once,
    not once per consuming artifact.
    """
    from .manifest import (
        ArtifactRecord,
        build_manifest,
        file_sha256,
        write_manifest,
    )
    from .orchestrator import cached_series_runner, run_sweep

    emit = log or (lambda message: None)
    names = list(only) if only else list(ARTIFACTS)
    plan = paper_plan(profile, names)  # validates names
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    start = time.perf_counter()

    report = run_sweep(plan, store, workers=workers, force=force, log=log)
    swept = {outcome.key for outcome in report.computed}

    records: List[ArtifactRecord] = []
    assembly_computed: List[str] = []
    for name in names:
        artifact = ARTIFACTS[name]
        consumed: List[Tuple[str, str]] = []
        runner = cached_series_runner(
            store,
            workers=workers,
            on_cell=lambda cell, key, action, sink=consumed: sink.append((key, action)),
        )
        t0 = time.perf_counter()
        text = artifact.build(profile, runner)
        elapsed = time.perf_counter() - t0
        path = out / f"{name}.txt"
        path.write_text(text)
        assembly_computed.extend(
            key for key, action in consumed if action == "computed"
        )
        records.append(
            ArtifactRecord(
                name=name,
                path=path.name,
                sha256=file_sha256(path),
                anchor=artifact.anchor,
                elapsed_s=elapsed,
                cells=[key for key, _ in consumed],
                # "Fresh" means computed during this invocation — normally
                # in the sweep phase; assembly computes only on plan drift.
                computed_cells=[
                    key
                    for key, action in consumed
                    if action == "computed" or key in swept
                ],
            )
        )
        emit(f"[paper] wrote {path} ({artifact.anchor}, {elapsed:.1f}s)")

    doc = build_manifest(
        profile=profile.name,
        store_root=str(store.root),
        artifacts=records,
        elapsed_s=time.perf_counter() - start,
        sweep={
            "computed": len(report.computed),
            "cached": len(report.cached),
            "stolen": len(report.stolen),
        },
        assembly_computed=assembly_computed,
    )
    manifest_path = write_manifest(out / "manifest.json", doc)
    emit(f"[paper] wrote {manifest_path}")
    return doc, manifest_path
