"""Content-addressed on-disk result store (``repro-result/1``).

One completed sweep cell = one JSON file under the store root, addressed
by the cell hash (SHA-256 of the resolved config signature + run count,
:mod:`repro.sweeps.plan`).  Files are laid out two-level
(``<hash[:2]>/<hash>.json``) so 10⁵-cell stores stay listable, and written
atomically (temp file + ``os.replace``) so concurrent shards sharing a
filesystem can never observe a half-written cell — the property the
orchestrator's resume and work-stealing semantics rest on.

Document layout::

    {
      "schema": "repro-result/1",
      "key": "<cell hash>",
      "signature": {"config": {...}, "n_runs": 30},   # resolved identity
      "label": "MLT",                                  # presentation only
      "elapsed_s": 12.34,                              # compute wall time
      "created": "2026-07-28T12:00:00+00:00",
      "series": {"label": "MLT", "runs": [{"units": [...]}, ...]}
    }

``series`` is the *full-fidelity* serialisation
(:func:`repro.experiments.metrics.series_to_dict`, hop histograms
included), so a cache hit reconstructs an
:class:`~repro.experiments.metrics.ExperimentSeries` that is
byte-identical to a fresh computation under re-serialisation.  ``get``
verifies that the stored signature re-hashes to the requested key before
trusting a file; corrupted or hand-edited cells raise
:class:`ResultStoreError` instead of silently serving wrong data.  The
``schema`` tag is bumped on any breaking layout change.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import tempfile
from typing import Any, Dict, Iterator, Optional

from ..experiments.metrics import ExperimentSeries, series_from_dict, series_to_dict
from .plan import signature_hash

#: Schema tag of every stored cell document.
RESULT_SCHEMA = "repro-result/1"


class ResultStoreError(ValueError):
    """A stored cell that cannot be trusted: wrong schema, key mismatch,
    or a signature that no longer hashes to its address."""


class ResultStore:
    """A directory of completed sweep cells, addressed by cell hash."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = pathlib.Path(root)

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        if not self.root.exists():
            return
        for path in sorted(self.root.glob("??/*.json")):
            yield path.stem

    # -- read ---------------------------------------------------------------

    def get_doc(self, key: str) -> Optional[Dict[str, Any]]:
        """The raw stored document for ``key``, validated; None on miss."""
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ResultStoreError(f"unreadable result cell {path}: {exc}") from exc
        if doc.get("schema") != RESULT_SCHEMA:
            raise ResultStoreError(
                f"result cell {path} has schema {doc.get('schema')!r}, "
                f"expected {RESULT_SCHEMA!r}; delete or regenerate the store"
            )
        if doc.get("key") != key or signature_hash(doc.get("signature", {})) != key:
            raise ResultStoreError(
                f"result cell {path} does not hash to its address; the file "
                "was corrupted or edited — delete it and re-run the sweep"
            )
        return doc

    def get(self, key: str) -> Optional[ExperimentSeries]:
        """The cached series for ``key``, or None when the cell is missing.

        The reconstruction is exact (hop histograms and all), so consumers
        cannot tell a hit from a fresh computation.
        """
        doc = self.get_doc(key)
        if doc is None:
            return None
        return series_from_dict(doc["series"])

    # -- write --------------------------------------------------------------

    def put(
        self,
        key: str,
        series: ExperimentSeries,
        signature: Dict[str, Any],
        elapsed_s: float,
    ) -> pathlib.Path:
        """Store a completed cell atomically; returns the cell's path.

        ``key`` must be the hash of ``signature`` — storing under any other
        address would poison every future lookup, so it is rejected here.
        """
        if signature_hash(signature) != key:
            raise ResultStoreError(
                "refusing to store a cell whose signature does not hash to "
                f"its key {key[:12]}…"
            )
        doc = {
            "schema": RESULT_SCHEMA,
            "key": key,
            "signature": signature,
            "label": series.label,
            "elapsed_s": elapsed_s,
            "created": datetime.datetime.now(datetime.timezone.utc).isoformat(),
            "series": series_to_dict(series),
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: a concurrent reader (another shard) either sees
        # the complete file or no file, never a torn write.
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:12]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
                fh.write("\n")
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path
