"""The bidirectional ring of peers (paper Section 3, first protocol part).

"Peers are ordered in a bidirectional ring.  Each peer ``P`` has the
knowledge of its immediate predecessor ``pred_P`` and immediate successor
``succ_P``."  The ring also answers the mapping query of Section 3: the peer
hosting a node ``n`` is the one with the lowest identifier ``>= n``, wrapping
to ``P_min`` for nodes above ``P_max``.

This class is the *state* of the ring (membership + order); protocol-level
join routing through the tree lives in :mod:`repro.dlpt.peer_join`, and node
migration policy in :mod:`repro.dlpt.mapping`.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..util.sortedlist import SortedList
from .peer import Peer


class Ring:
    """Sorted peer membership with circular successor/predecessor queries."""

    def __init__(self) -> None:
        self._ids: SortedList[str] = SortedList()
        self._by_id: dict[str, Peer] = {}

    # -- membership --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, peer_id: str) -> bool:
        return peer_id in self._by_id

    def __iter__(self) -> Iterator[Peer]:
        for pid in self._ids:
            yield self._by_id[pid]

    def peer(self, peer_id: str) -> Peer:
        return self._by_id[peer_id]

    def get(self, peer_id: str) -> Optional[Peer]:
        return self._by_id.get(peer_id)

    def peers(self) -> list[Peer]:
        """All peers in ring (identifier) order."""
        return [self._by_id[pid] for pid in self._ids]

    def ids(self) -> list[str]:
        return self._ids.as_list()

    def join(self, peer: Peer) -> None:
        """Insert ``peer``; identifiers must be unique on the ring."""
        if peer.id in self._by_id:
            raise ValueError(f"peer id {peer.id!r} already on the ring")
        self._ids.add(peer.id)
        self._by_id[peer.id] = peer

    def leave(self, peer_id: str) -> Peer:
        """Remove and return the peer with ``peer_id``."""
        peer = self._by_id.pop(peer_id, None)
        if peer is None:
            raise KeyError(f"peer {peer_id!r} not on the ring")
        self._ids.remove(peer_id)
        return peer

    # -- circular order ----------------------------------------------------

    def min_peer(self) -> Peer:
        """``P_min`` — the peer with the lowest identifier."""
        return self._by_id[self._ids.min()]

    def max_peer(self) -> Peer:
        """``P_max`` — the peer with the highest identifier."""
        return self._by_id[self._ids.max()]

    def successor_of_key(self, key: str) -> Peer:
        """The peer hosting key/label ``key``: lowest peer id ``>= key``,
        wrapping to ``P_min`` (the paper's mapping rule)."""
        return self._by_id[self._ids.successor(key)]

    def successor(self, peer_id: str) -> Peer:
        """``succ_P``: the next peer strictly after ``peer_id`` (circular).
        On a single-peer ring a peer is its own successor."""
        return self._by_id[self._ids.strict_successor(peer_id)]

    def predecessor(self, peer_id: str) -> Peer:
        """``pred_P``: the previous peer strictly before ``peer_id``."""
        return self._by_id[self._ids.predecessor(peer_id)]

    def reposition(self, peer: Peer, new_id: str) -> None:
        """Change ``peer``'s identifier (MLT's "move P along the ring").

        The caller (the mapping layer) is responsible for migrating the
        affected nodes; this method only preserves ring-order consistency.
        The new identifier must keep the peer strictly between its current
        neighbours so that no *other* peer's node interval changes.
        """
        if new_id == peer.id:
            return
        if new_id in self._by_id:
            raise ValueError(f"identifier {new_id!r} already taken")
        if len(self._ids) > 1:
            pred = self.predecessor(peer.id)
            succ = self.successor(peer.id)
            # Strictly inside the (pred, succ) arc; both comparisons are on
            # the non-wrapped segment because MLT only slides P between its
            # physical neighbours.
            from ..core.keyspace import in_interval_open_open

            if not in_interval_open_open(new_id, pred.id, succ.id):
                raise ValueError(
                    f"reposition must stay between neighbours: "
                    f"{pred.id!r} < {new_id!r} < {succ.id!r} violated"
                )
        old_id = peer.id
        self._ids.remove(old_id)
        del self._by_id[old_id]
        peer.id = new_id
        self._ids.add(new_id)
        self._by_id[new_id] = peer

    # -- diagnostics ------------------------------------------------------------

    def check_invariants(self) -> None:
        """Membership/order consistency (property-tested under churn)."""
        ids = self._ids.as_list()
        assert len(ids) == len(self._by_id)
        assert ids == sorted(ids)
        for pid in ids:
            assert self._by_id[pid].id == pid, f"peer id desync at {pid!r}"
        if len(ids) >= 2:
            for i, pid in enumerate(ids):
                succ = self.successor(pid)
                assert succ.id == ids[(i + 1) % len(ids)]
                pred = self.predecessor(pid)
                assert pred.id == ids[(i - 1) % len(ids)]

    def aggregate_capacity(self) -> int:
        """Total requests/unit the whole platform can absorb (Table 1's
        denominator for the load ratio)."""
        return sum(p.capacity for p in self._by_id.values())
