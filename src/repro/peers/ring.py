"""The bidirectional ring of peers (paper Section 3, first protocol part).

"Peers are ordered in a bidirectional ring.  Each peer ``P`` has the
knowledge of its immediate predecessor ``pred_P`` and immediate successor
``succ_P``."  The ring also answers the mapping query of Section 3: the peer
hosting a node ``n`` is the one with the lowest identifier ``>= n``, wrapping
to ``P_min`` for nodes above ``P_max``.

This class is the *state* of the ring (membership + order); protocol-level
join routing through the tree lives in :mod:`repro.dlpt.peer_join`, and node
migration policy in :mod:`repro.dlpt.mapping`.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..util.sortedlist import SortedList
from .peer import Peer

#: Ceiling-cache entries are dropped wholesale past this size; membership
#: changes clear the cache anyway, so the cap only guards degenerate
#: workloads that query millions of distinct keys on a static ring.
_SUCC_CACHE_MAX = 1 << 17


class DuplicatePeerError(ValueError):
    """A peer identifier that is already present on the ring.

    Subclasses :class:`ValueError` so pre-existing callers that caught the
    generic error keep working; carries the colliding id for diagnostics.
    """

    def __init__(self, peer_id: str) -> None:
        super().__init__(f"peer id {peer_id!r} already on the ring")
        self.peer_id = peer_id


class Ring:
    """Sorted peer membership with circular successor/predecessor queries.

    The ring keeps a monotonically increasing :attr:`version` (bumped by
    every membership or identifier change) and memoises
    :meth:`successor_of_key` against it, so bursts of mapping queries
    between membership events — registration storms, invariant sweeps,
    KC candidate scoring — hit a dict instead of re-running the bisect.
    """

    def __init__(self) -> None:
        self._ids: SortedList[str] = SortedList()
        self._by_id: dict[str, Peer] = {}
        #: Bumped on every join/leave/reposition; consumers (caches) compare.
        self.version = 0
        self._succ_cache: dict[str, str] = {}
        self._succ_cache_version = 0

    # -- membership --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, peer_id: str) -> bool:
        return peer_id in self._by_id

    def __iter__(self) -> Iterator[Peer]:
        for pid in self._ids:
            yield self._by_id[pid]

    def peer(self, peer_id: str) -> Peer:
        return self._by_id[peer_id]

    def get(self, peer_id: str) -> Optional[Peer]:
        return self._by_id.get(peer_id)

    def peers(self) -> list[Peer]:
        """All peers in ring (identifier) order."""
        return [self._by_id[pid] for pid in self._ids]

    def peers_unordered(self):
        """Every peer, membership order unspecified — a zero-copy dict view
        for full-ring sweeps where ring order is irrelevant (per-unit
        budget resets, load aggregation).  C-level iteration, against the
        per-peer generator dispatch of ``__iter__``."""
        return self._by_id.values()

    def ids(self) -> list[str]:
        return self._ids.as_list()

    def id_at(self, index: int) -> str:
        """The ``index``-th identifier in sorted ring order, O(1).

        Lets callers draw a uniformly random peer without materialising the
        full id list (the seed's churn loop copied all P ids per leave).
        """
        return self._ids[index]

    def peer_at(self, index: int) -> Peer:
        """The ``index``-th peer in sorted ring order, O(1)."""
        return self._by_id[self._ids[index]]

    def join(self, peer: Peer) -> None:
        """Insert ``peer``; identifiers must be unique on the ring.

        Raises :class:`DuplicatePeerError` (a :class:`ValueError`) naming
        the colliding identifier.
        """
        if peer.id in self._by_id:
            raise DuplicatePeerError(peer.id)
        try:
            self._ids.add(peer.id)
        except ValueError as exc:  # desync guard: surface as the domain error
            raise DuplicatePeerError(peer.id) from exc
        self._by_id[peer.id] = peer
        self.version += 1

    def join_many(self, peers) -> None:
        """Insert a batch of peers with one sorted merge.

        The whole batch is validated first — a collision against the ring
        or within the batch raises :class:`DuplicatePeerError` before
        anything mutates — then the identifiers merge in a single
        :meth:`~repro.util.sortedlist.SortedList.update` pass and
        :attr:`version` bumps once, so bootstrapping 10⁴ peers costs one
        sort instead of 10⁴ O(P) list shifts.
        """
        batch = list(peers)
        ids: set[str] = set()
        for peer in batch:
            if peer.id in self._by_id or peer.id in ids:
                raise DuplicatePeerError(peer.id)
            ids.add(peer.id)
        if not batch:
            return
        self._ids.update(ids)
        by_id = self._by_id
        for peer in batch:
            by_id[peer.id] = peer
        self.version += 1

    def leave(self, peer_id: str) -> Peer:
        """Remove and return the peer with ``peer_id``."""
        peer = self._by_id.pop(peer_id, None)
        if peer is None:
            raise KeyError(f"peer {peer_id!r} not on the ring")
        self._ids.remove(peer_id)
        self.version += 1
        return peer

    # -- circular order ----------------------------------------------------

    def min_peer(self) -> Peer:
        """``P_min`` — the peer with the lowest identifier."""
        return self._by_id[self._ids.min()]

    def max_peer(self) -> Peer:
        """``P_max`` — the peer with the highest identifier."""
        return self._by_id[self._ids.max()]

    def successor_of_key(self, key: str) -> Peer:
        """The peer hosting key/label ``key``: lowest peer id ``>= key``,
        wrapping to ``P_min`` (the paper's mapping rule).

        Memoised per ring :attr:`version` — amortised O(1) for repeated
        keys on a static ring, O(log P) on a cache miss.
        """
        cache = self._succ_cache
        if self._succ_cache_version != self.version:
            cache.clear()
            self._succ_cache_version = self.version
        pid = cache.get(key)
        if pid is None:
            pid = self._ids.successor(key)
            if len(cache) >= _SUCC_CACHE_MAX:
                cache.clear()
            cache[key] = pid
        return self._by_id[pid]

    def successor(self, peer_id: str) -> Peer:
        """``succ_P``: the next peer strictly after ``peer_id`` (circular).
        On a single-peer ring a peer is its own successor."""
        return self._by_id[self._ids.strict_successor(peer_id)]

    def predecessor(self, peer_id: str) -> Peer:
        """``pred_P``: the previous peer strictly before ``peer_id``."""
        return self._by_id[self._ids.predecessor(peer_id)]

    def reposition(self, peer: Peer, new_id: str) -> None:
        """Change ``peer``'s identifier (MLT's "move P along the ring").

        The caller (the mapping layer) is responsible for migrating the
        affected nodes; this method only preserves ring-order consistency.
        The new identifier must keep the peer strictly between its current
        neighbours so that no *other* peer's node interval changes.
        """
        if new_id == peer.id:
            return
        if new_id in self._by_id:
            raise DuplicatePeerError(new_id)
        if len(self._ids) > 1:
            pred = self.predecessor(peer.id)
            succ = self.successor(peer.id)
            # Strictly inside the (pred, succ) arc; both comparisons are on
            # the non-wrapped segment because MLT only slides P between its
            # physical neighbours.
            from ..core.keyspace import in_interval_open_open

            if not in_interval_open_open(new_id, pred.id, succ.id):
                raise ValueError(
                    f"reposition must stay between neighbours: "
                    f"{pred.id!r} < {new_id!r} < {succ.id!r} violated"
                )
        old_id = peer.id
        self._ids.remove(old_id)
        del self._by_id[old_id]
        peer.id = new_id
        self._ids.add(new_id)
        self._by_id[new_id] = peer
        self.version += 1

    # -- diagnostics ------------------------------------------------------------

    def check_invariants(self) -> None:
        """Membership/order consistency (property-tested under churn)."""
        ids = self._ids.as_list()
        assert len(ids) == len(self._by_id)
        assert ids == sorted(ids)
        for pid in ids:
            assert self._by_id[pid].id == pid, f"peer id desync at {pid!r}"
        if len(ids) >= 2:
            for i, pid in enumerate(ids):
                succ = self.successor(pid)
                assert succ.id == ids[(i + 1) % len(ids)]
                pred = self.predecessor(pid)
                assert pred.id == ids[(i - 1) % len(ids)]

    def aggregate_capacity(self) -> int:
        """Total requests/unit the whole platform can absorb (Table 1's
        denominator for the load ratio)."""
        return sum(p.capacity for p in self._by_id.values())
