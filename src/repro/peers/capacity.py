"""Heterogeneous peer-capacity models.

Paper, Section 4: "the capacity of a peer refers to the maximum number of
requests processed by it during one time unit … The ratio between the most
and the least powerful peers is 4."  Capacities are fixed for a peer's whole
lifetime ("the peers capacity does not change over time", Section 3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence


class CapacityModel(Protocol):
    """Draws a capacity for a newly created peer."""

    def sample(self, rng) -> int:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class UniformCapacity:
    """Capacities uniform on the integers ``[base, ratio * base]``.

    With the paper's ratio of 4 and the default base of 5, capacities span
    5..20 requests/unit, giving ~100-peer platforms an aggregate capacity of
    roughly 1250 requests/unit — comfortably laptop-scale while preserving
    the 4× heterogeneity that MLT exploits.
    """

    base: int = 5
    ratio: float = 4.0

    def __post_init__(self) -> None:
        if self.base < 1:
            raise ValueError("base capacity must be >= 1")
        if self.ratio < 1:
            raise ValueError("ratio must be >= 1")

    @property
    def max_capacity(self) -> int:
        return int(round(self.base * self.ratio))

    def sample(self, rng) -> int:
        return rng.randint(self.base, self.max_capacity)

    def mean(self) -> float:
        return (self.base + self.max_capacity) / 2.0


@dataclass(frozen=True)
class FixedCapacity:
    """Every peer gets the same capacity (homogeneous ablation: the
    assumption PHT/P-Grid make and the paper criticises)."""

    value: int = 10

    def __post_init__(self) -> None:
        if self.value < 1:
            raise ValueError("capacity must be >= 1")

    @property
    def max_capacity(self) -> int:
        return self.value

    def sample(self, rng) -> int:
        return self.value

    def mean(self) -> float:
        return float(self.value)


@dataclass(frozen=True)
class DiscreteCapacity:
    """Capacities drawn from an explicit class list (e.g. modelling a grid
    with a few machine generations), with optional weights."""

    values: Sequence[int] = (5, 10, 20)
    weights: Sequence[float] | None = None

    def __post_init__(self) -> None:
        if not self.values or any(v < 1 for v in self.values):
            raise ValueError("values must be non-empty positive integers")
        if self.weights is not None and len(self.weights) != len(self.values):
            raise ValueError("weights must match values")

    @property
    def max_capacity(self) -> int:
        return max(self.values)

    def sample(self, rng) -> int:
        if self.weights is None:
            return rng.choice(list(self.values))
        return rng.choices(list(self.values), weights=list(self.weights), k=1)[0]

    def mean(self) -> float:
        if self.weights is None:
            return sum(self.values) / len(self.values)
        tot = sum(self.weights)
        return sum(v * w for v, w in zip(self.values, self.weights)) / tot
