"""Churn models: stable vs dynamic networks (paper Section 4).

The paper distinguishes a *stable* network — "the number of peers joining and
leaving the system were intentionally low" — from a *dynamic* one — "10% of
the nodes are replaced at each time unit" (peers leave and an equal fraction
joins, keeping the population roughly constant).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ChurnModel:
    """Per-time-unit join/leave fractions of the current population.

    Counts are randomised by rounding the expectation stochastically, so a
    5% rate on 100 peers yields 5 events per unit on average even though the
    per-unit count is integral.
    """

    join_fraction: float = 0.0
    leave_fraction: float = 0.0

    def __post_init__(self) -> None:
        for f in (self.join_fraction, self.leave_fraction):
            if not 0.0 <= f < 1.0:
                raise ValueError("churn fractions must be in [0, 1)")

    def joins(self, population: int, rng) -> int:
        return _stochastic_round(self.join_fraction * population, rng)

    def leaves(self, population: int, rng) -> int:
        n = _stochastic_round(self.leave_fraction * population, rng)
        # Never empty the ring: the overlay is undefined without peers.
        return min(n, max(population - 1, 0))

    @property
    def is_stable(self) -> bool:
        return self.join_fraction == 0.0 and self.leave_fraction == 0.0


def _stochastic_round(x: float, rng) -> int:
    """Round ``x`` to an integer with expectation exactly ``x``."""
    base = int(x)
    frac = x - base
    return base + (1 if frac > 0 and rng.random() < frac else 0)


#: Paper's "stable network": a low trickle of membership change.
STABLE = ChurnModel(join_fraction=0.02, leave_fraction=0.02)

#: Paper's "dynamic network": 10% of peers replaced every unit.
DYNAMIC = ChurnModel(join_fraction=0.10, leave_fraction=0.10)

#: No churn at all (unit tests, micro-benchmarks).
FROZEN = ChurnModel(join_fraction=0.0, leave_fraction=0.0)
