"""Physical peers: identifier, capacity, hosted nodes, load accounting.

The paper's peer model (Sections 2–4): a peer has a distinct identifier drawn
from the same circular space as the tree-node labels, a fixed *capacity* —
"the maximum number of requests processed by it during one time unit. All
requests received on a peer after it reached this number are ignored" — and
runs a set ``ν`` of logical tree nodes.  At the end of each time unit every
peer knows, per node it runs, how many requests that node received (the
``l_n`` of Section 3.3), which is exactly the state MLT consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set


@dataclass
class Peer:
    """One physical peer.

    ``id`` is mutable on purpose: MLT rebalances by *moving a peer along the
    ring* (paper Figure 3(b)), i.e. by changing its identifier within the
    segment between its predecessor and successor.  Use
    :meth:`repro.peers.ring.Ring.reposition` to change it safely.
    """

    id: str
    capacity: int
    #: Labels of the logical tree nodes currently hosted (ν in the paper).
    nodes: Set[str] = field(default_factory=set)
    #: Requests processed so far in the current time unit.
    used: int = 0
    #: Per-node request counts for the current (open) time unit.
    node_load: Dict[str, int] = field(default_factory=dict)
    #: Per-node request counts for the last *closed* unit (MLT's input).
    last_node_load: Dict[str, int] = field(default_factory=dict)
    #: Lifetime counters.
    total_processed: int = 0
    total_rejected: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"peer capacity must be >= 1, got {self.capacity}")

    # -- request processing ----------------------------------------------

    def try_process(self, node_label: str) -> bool:
        """Account one request hop arriving at ``node_label`` on this peer.

        Returns True when within capacity; False when the request must be
        ignored (peer exhausted for this unit).  Either way the node's
        received-request counter advances — a node's popularity is observed
        regardless of whether the peer could serve it, which is what lets
        MLT react to overload.
        """
        self.node_load[node_label] = self.node_load.get(node_label, 0) + 1
        if self.used >= self.capacity:
            self.total_rejected += 1
            return False
        self.used += 1
        self.total_processed += 1
        return True

    @property
    def load(self) -> int:
        """Requests received this unit across all hosted nodes (``L_S``)."""
        return sum(self.node_load.values())

    @property
    def saturated(self) -> bool:
        return self.used >= self.capacity

    def end_time_unit(self) -> None:
        """Close the current unit: roll per-node loads into history and
        reset the capacity budget."""
        self.last_node_load = self.node_load
        self.node_load = {}
        self.used = 0

    # -- node hosting ---------------------------------------------------------

    def host_node(self, label: str) -> None:
        self.nodes.add(label)

    def drop_node(self, label: str) -> None:
        self.nodes.discard(label)
        # Keep the open unit's accounting consistent for migrated nodes: the
        # receiving peer starts a fresh counter; history stays with the
        # period in which it was observed.
        self.node_load.pop(label, None)

    def last_load_of(self, label: str) -> int:
        """Last closed unit's request count for ``label`` (0 if unknown)."""
        return self.last_node_load.get(label, 0)

    def __hash__(self) -> int:  # identity-based: peers are mutable entities
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


def migrate_labels(labels, src: Peer, dst: Peer, host: Dict[str, "Peer"]) -> int:
    """Move ``labels`` from ``src`` to ``dst``, updating the caller's
    ``host`` index; returns the number of labels moved.

    The bulk equivalent of ``dst.host_node``/``src.drop_node`` per label —
    set/dict batch operations keep interval migrations at C speed.  Shared
    by every mapping implementation so the open-unit accounting rule
    (``node_load`` does not follow a migrated node) lives in one place.
    """
    if not labels:
        return 0
    src.nodes.difference_update(labels)
    dst.nodes.update(labels)
    if src.node_load:
        pop = src.node_load.pop
        for lbl in labels:
            pop(lbl, None)
    host.update(dict.fromkeys(labels, dst))
    return len(labels)
