"""Physical layer: peers, the bidirectional ring, capacities, churn."""

from .capacity import DiscreteCapacity, FixedCapacity, UniformCapacity
from .churn import DYNAMIC, FROZEN, STABLE, ChurnModel
from .peer import Peer
from .ring import Ring

__all__ = [
    "Peer", "Ring",
    "UniformCapacity", "FixedCapacity", "DiscreteCapacity",
    "ChurnModel", "STABLE", "DYNAMIC", "FROZEN",
]
