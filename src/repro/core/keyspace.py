"""Circular identifier spaces (paper Section 3, first paragraph).

The protocol works over "a circular identifier space ``I`` of all distinct ids
``i`` such that ``i`` is a finite sequence of digits of ``A``", ordered
lexicographically and closed into a ring: the successor of the highest
identifier wraps to the lowest.  Peers and logical tree nodes draw their
identifiers from the *same* space, which is what lets the mapping rule
("node ``n`` is hosted by the lowest peer id ``>= n``") work without hashing.

This module provides the circular-order predicates shared by the DLPT ring,
the MLT balancer and the Chord baseline (which uses an integer keyspace).
"""

from __future__ import annotations

from typing import TypeVar

K = TypeVar("K")


def in_interval_open_closed(x: K, a: K, b: K) -> bool:
    """Circular membership ``x ∈ (a, b]``.

    On the ring, the interval from ``a`` (exclusive) to ``b`` (inclusive)
    wraps around when ``a >= b``.  ``(a, a]`` denotes the full ring minus
    nothing — i.e. every ``x`` (a single-peer ring owns all keys).
    """
    if a < b:
        return a < x <= b
    # wrapped (or degenerate single-element ring)
    return x > a or x <= b


def in_interval_open_open(x: K, a: K, b: K) -> bool:
    """Circular membership ``x ∈ (a, b)``; ``(a, a)`` is everything but ``a``."""
    if a < b:
        return a < x < b
    return x > a or x < b


def in_interval_closed_open(x: K, a: K, b: K) -> bool:
    """Circular membership ``x ∈ [a, b)``; ``[a, a)`` is everything."""
    if a < b:
        return a <= x < b
    return x >= a or x < b


def ring_distance_clockwise(a: int, b: int, modulus: int) -> int:
    """Clockwise distance from ``a`` to ``b`` in an integer ring mod
    ``modulus`` (used by the Chord baseline's finger maintenance)."""
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    return (b - a) % modulus
