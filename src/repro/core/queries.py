"""Query model for service discovery.

The paper motivates trie overlays by the search flexibility they provide:
exact match, *automatic completion of partial search strings*, *range
queries*, and an easy extension to *multi-attribute queries* (Section 1).
This module defines those query types as small immutable objects with a
``matches(key)`` predicate; executing them against a tree (reference or
distributed) is the responsibility of the tree / service layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union


@dataclass(frozen=True)
class ExactQuery:
    """Find the service registered under exactly ``key``."""

    key: str

    def matches(self, key: str) -> bool:
        return key == self.key

    def describe(self) -> str:
        return f"exact:{self.key}"


@dataclass(frozen=True)
class PrefixQuery:
    """Automatic completion: all keys starting with ``prefix``."""

    prefix: str

    def matches(self, key: str) -> bool:
        return key.startswith(self.prefix)

    def describe(self) -> str:
        return f"prefix:{self.prefix}*"


@dataclass(frozen=True)
class RangeQuery:
    """All keys ``lo <= key <= hi`` in lexicographic order."""

    lo: str
    hi: str

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty range: lo={self.lo!r} > hi={self.hi!r}")

    def matches(self, key: str) -> bool:
        return self.lo <= key <= self.hi

    def describe(self) -> str:
        return f"range:[{self.lo},{self.hi}]"


SingleAttributeQuery = Union[ExactQuery, PrefixQuery, RangeQuery]

#: Separator between an attribute name and its value in composed keys.
ATTR_SEP = "="


def attribute_key(attribute: str, value: str) -> str:
    """Compose the key registered in the tree for one attribute of a service.

    Multi-attribute support (paper Section 1: trie overlays "are easy to
    extend to multi-attribute queries") is realised by registering each
    service once per attribute under ``attribute=value`` and intersecting
    per-attribute results at query time.
    """
    if ATTR_SEP in attribute:
        raise ValueError(f"attribute name may not contain {ATTR_SEP!r}")
    return f"{attribute}{ATTR_SEP}{value}"


@dataclass(frozen=True)
class MultiAttributeQuery:
    """Conjunction of per-attribute sub-queries.

    ``clauses`` maps attribute name to the sub-query its value must satisfy.
    A service matches when *all* clauses match.
    """

    clauses: Mapping[str, SingleAttributeQuery]

    def __post_init__(self) -> None:
        if not self.clauses:
            raise ValueError("multi-attribute query needs at least one clause")

    def attribute_queries(self) -> dict[str, SingleAttributeQuery]:
        """The sub-query to run against each attribute's key band, rebased
        onto composed ``attribute=value`` keys."""
        out: dict[str, SingleAttributeQuery] = {}
        for attr, q in self.clauses.items():
            prefix = attr + ATTR_SEP
            if isinstance(q, ExactQuery):
                out[attr] = ExactQuery(prefix + q.key)
            elif isinstance(q, PrefixQuery):
                out[attr] = PrefixQuery(prefix + q.prefix)
            elif isinstance(q, RangeQuery):
                out[attr] = RangeQuery(prefix + q.lo, prefix + q.hi)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unsupported clause type {type(q)!r}")
        return out

    def describe(self) -> str:
        inner = ", ".join(f"{a}~{q.describe()}" for a, q in sorted(self.clauses.items()))
        return f"multi:{{{inner}}}"
