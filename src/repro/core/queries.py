"""Query model for service discovery.

The paper motivates trie overlays by the search flexibility they provide:
exact match, *automatic completion of partial search strings*, *range
queries*, and an easy extension to *multi-attribute queries* (Section 1).
This module defines those query types as small immutable objects with a
``matches(key)`` predicate; executing them against a tree (reference or
distributed) is the responsibility of the tree / service layer.

:func:`parse_query` builds a query from a compact spec (string or dict)
and validates it — including every identifier against the configured
:class:`~repro.core.alphabet.Alphabet` — at *parse* time, raising
:class:`QuerySpecError`.  Before this existed an out-of-alphabet range
bound only failed deep inside the tree walk; now no executor ever sees an
invalid query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

from ..util.specs import SpecError


@dataclass(frozen=True)
class ExactQuery:
    """Find the service registered under exactly ``key``."""

    key: str

    def matches(self, key: str) -> bool:
        return key == self.key

    def describe(self) -> str:
        return f"exact:{self.key}"


@dataclass(frozen=True)
class PrefixQuery:
    """Automatic completion: all keys starting with ``prefix``."""

    prefix: str

    def matches(self, key: str) -> bool:
        return key.startswith(self.prefix)

    def describe(self) -> str:
        return f"prefix:{self.prefix}*"


@dataclass(frozen=True)
class RangeQuery:
    """All keys ``lo <= key <= hi`` in lexicographic order."""

    lo: str
    hi: str

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty range: lo={self.lo!r} > hi={self.hi!r}")

    def matches(self, key: str) -> bool:
        return self.lo <= key <= self.hi

    def describe(self) -> str:
        return f"range:[{self.lo},{self.hi}]"


SingleAttributeQuery = Union[ExactQuery, PrefixQuery, RangeQuery]

#: Separator between an attribute name and its value in composed keys.
ATTR_SEP = "="


def attribute_key(attribute: str, value: str) -> str:
    """Compose the key registered in the tree for one attribute of a service.

    Multi-attribute support (paper Section 1: trie overlays "are easy to
    extend to multi-attribute queries") is realised by registering each
    service once per attribute under ``attribute=value`` and intersecting
    per-attribute results at query time.
    """
    if ATTR_SEP in attribute:
        raise ValueError(f"attribute name may not contain {ATTR_SEP!r}")
    return f"{attribute}{ATTR_SEP}{value}"


@dataclass(frozen=True)
class MultiAttributeQuery:
    """Conjunction of per-attribute sub-queries.

    ``clauses`` maps attribute name to the sub-query its value must satisfy.
    A service matches when *all* clauses match.
    """

    clauses: Mapping[str, SingleAttributeQuery]

    def __post_init__(self) -> None:
        if not self.clauses:
            raise ValueError("multi-attribute query needs at least one clause")

    def attribute_queries(self) -> dict[str, SingleAttributeQuery]:
        """The sub-query to run against each attribute's key band, rebased
        onto composed ``attribute=value`` keys."""
        out: dict[str, SingleAttributeQuery] = {}
        for attr, q in self.clauses.items():
            prefix = attr + ATTR_SEP
            if isinstance(q, ExactQuery):
                out[attr] = ExactQuery(prefix + q.key)
            elif isinstance(q, PrefixQuery):
                out[attr] = PrefixQuery(prefix + q.prefix)
            elif isinstance(q, RangeQuery):
                out[attr] = RangeQuery(prefix + q.lo, prefix + q.hi)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unsupported clause type {type(q)!r}")
        return out

    def describe(self) -> str:
        inner = ", ".join(f"{a}~{q.describe()}" for a, q in sorted(self.clauses.items()))
        return f"multi:{{{inner}}}"


Query = Union[SingleAttributeQuery, MultiAttributeQuery]


class QuerySpecError(SpecError):
    """A query spec is malformed or names identifiers outside the alphabet."""


def validate_query(query: Query, alphabet=None) -> Query:
    """Check every identifier a query names against ``alphabet``.

    Returns the query unchanged when valid; raises :class:`QuerySpecError`
    otherwise.  With ``alphabet=None`` only the structural constraints
    already enforced by the dataclasses hold (useful for layers that have
    no alphabet in scope, e.g. the wire broker).
    """
    if isinstance(query, MultiAttributeQuery):
        # Rebasing exercises the clause kinds; validating the rebased keys
        # covers the attribute names (and the ``=`` separator) too.
        for sub in query.attribute_queries().values():
            validate_query(sub, alphabet)
        return query
    if alphabet is None:
        return query
    try:
        if isinstance(query, ExactQuery):
            alphabet.validate(query.key)
        elif isinstance(query, PrefixQuery):
            if query.prefix:  # the empty prefix (match everything) is legal
                alphabet.validate(query.prefix)
        elif isinstance(query, RangeQuery):
            alphabet.validate(query.lo)
            alphabet.validate(query.hi)
        else:
            raise QuerySpecError(f"unsupported query type {type(query).__name__}")
    except QuerySpecError:
        raise
    except ValueError as exc:
        raise QuerySpecError(f"{query.describe()}: {exc}") from None
    return query


def _single_from_string(spec: str) -> SingleAttributeQuery:
    kind, sep, rest = spec.partition(":")
    if not sep:
        raise QuerySpecError(
            f"query spec {spec!r} has no ':' — expected exact:KEY, "
            "prefix:PARTIAL or range:LO:HI"
        )
    if kind == "exact":
        return ExactQuery(rest)
    if kind == "prefix":
        return PrefixQuery(rest)
    if kind == "range":
        lo, sep, hi = rest.partition(":")
        if not sep:
            raise QuerySpecError(f"range spec {spec!r} needs two bounds: range:LO:HI")
        try:
            return RangeQuery(lo, hi)
        except ValueError as exc:
            raise QuerySpecError(f"range spec {spec!r}: {exc}") from None
    raise QuerySpecError(f"unknown query kind {kind!r} in {spec!r}")


def _single_from_dict(spec: dict) -> SingleAttributeQuery:
    kind = spec.get("kind")
    try:
        if kind == "exact":
            return ExactQuery(str(spec["key"]))
        if kind == "prefix":
            return PrefixQuery(str(spec["prefix"]))
        if kind == "range":
            return RangeQuery(str(spec["lo"]), str(spec["hi"]))
    except KeyError as exc:
        raise QuerySpecError(f"query spec {spec!r} is missing field {exc}") from None
    except ValueError as exc:
        raise QuerySpecError(f"query spec {spec!r}: {exc}") from None
    raise QuerySpecError(f"unknown query kind {kind!r} in {spec!r}")


def parse_query(spec, alphabet=None) -> Query:
    """Build a query from a compact spec and validate it *now*.

    ``spec`` may be an existing query object, a string (``"exact:KEY"``,
    ``"prefix:PARTIAL"``, ``"range:LO:HI"`` — safe because no stock
    alphabet contains ``:``), or a dict (``{"kind": "range", "lo": ...,
    "hi": ...}``; multi-attribute queries use ``{"kind": "multi",
    "clauses": {attr: subspec}}``).  Passing the configured
    :class:`~repro.core.alphabet.Alphabet` moves bound validation to parse
    time: a malformed or out-of-alphabet spec raises
    :class:`QuerySpecError` here instead of failing mid-walk.
    """
    if isinstance(spec, (ExactQuery, PrefixQuery, RangeQuery, MultiAttributeQuery)):
        return validate_query(spec, alphabet)
    if isinstance(spec, str):
        return validate_query(_single_from_string(spec), alphabet)
    if isinstance(spec, dict):
        if spec.get("kind") == "multi":
            clauses = spec.get("clauses")
            if not isinstance(clauses, Mapping) or not clauses:
                raise QuerySpecError(
                    f"multi query spec {spec!r} needs a non-empty 'clauses' mapping"
                )
            parsed = {}
            for attr, sub in clauses.items():
                if isinstance(sub, str):
                    parsed[attr] = _single_from_string(sub)
                elif isinstance(sub, dict):
                    parsed[attr] = _single_from_dict(sub)
                else:
                    raise QuerySpecError(
                        f"clause {attr!r}: unsupported sub-spec {sub!r}"
                    )
            try:
                query: Query = MultiAttributeQuery(parsed)
            except ValueError as exc:  # pragma: no cover - guarded above
                raise QuerySpecError(str(exc)) from None
            return validate_query(query, alphabet)
        return validate_query(_single_from_dict(spec), alphabet)
    raise QuerySpecError(f"unsupported query spec type {type(spec).__name__}")


def query_signature(query: Query) -> dict:
    """Canonical JSON-able form of a query (config signatures, traces)."""
    if isinstance(query, ExactQuery):
        return {"kind": "exact", "key": query.key}
    if isinstance(query, PrefixQuery):
        return {"kind": "prefix", "prefix": query.prefix}
    if isinstance(query, RangeQuery):
        return {"kind": "range", "lo": query.lo, "hi": query.hi}
    if isinstance(query, MultiAttributeQuery):
        return {
            "kind": "multi",
            "clauses": {a: query_signature(q) for a, q in sorted(query.clauses.items())},
        }
    raise QuerySpecError(f"unsupported query type {type(query).__name__}")
