"""Reference in-memory Proper-Greatest-Common-Prefix tree (Definition 1).

This is the *logical* data structure that the distributed protocol of
Section 3 maintains across peers.  The reference implementation serves three
purposes:

1. It documents the tree semantics independently of any distribution concern
   (the distributed tree in :mod:`repro.dlpt.tree` must stay node-for-node
   equivalent to it — an equivalence that is property-tested).
2. It implements the search primitives the paper claims for trie overlays:
   exact lookup, automatic completion of partial strings (prefix queries) and
   lexicographic range queries.
3. Its :meth:`PGCPTree.check_invariants` is the oracle used everywhere.

Definition 1 (paper): *a PGCP tree is a labeled rooted tree such that the
label of each node is the Proper Greatest Common Prefix of the labels of
every pair of its children.*  Consequences used as checkable invariants:

* a node's label is a proper prefix of each of its children's labels;
* two distinct children never share a common prefix longer than their
  parent's label (their GCP **is** the parent label);
* equivalently, the children's first digits after the parent label are
  pairwise distinct, so a child lookup is a single dict probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import itemgetter
from typing import Iterator, Optional

from .ids import common_prefix_len, gcp, is_proper_prefix


@dataclass(eq=False)
class PGCPNode:
    """A node of the reference tree.

    ``label`` is the node identifier; ``data`` holds the values registered
    under the key equal to the label (empty for the paper's "non-filled"
    structural nodes, e.g. ``101`` and ``ε`` in Figure 1(a)).
    """

    label: str
    parent: Optional["PGCPNode"] = None
    # Children indexed by their first digit after this node's label — valid
    # because Definition 1 forces those digits to be pairwise distinct.
    children: dict[str, "PGCPNode"] = field(default_factory=dict)
    data: set[object] = field(default_factory=set)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_filled(self) -> bool:
        """A *filled* node stores at least one registered datum."""
        return bool(self.data)

    def child_towards(self, key: str) -> Optional["PGCPNode"]:
        """The child whose subtree could contain ``key`` (shares a prefix
        longer than this node's label), or ``None``."""
        if len(key) <= len(self.label):
            return None
        return self.children.get(key[len(self.label)])

    def add_child(self, child: "PGCPNode") -> None:
        digit = child.label[len(self.label)]
        assert digit not in self.children, "duplicate child branch digit"
        self.children[digit] = child
        child.parent = self

    def remove_child(self, child: "PGCPNode") -> None:
        digit = child.label[len(self.label)]
        assert self.children.get(digit) is child
        del self.children[digit]
        child.parent = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PGCPNode({self.label!r}, children={len(self.children)}, data={len(self.data)})"


class PGCPTree:
    """Reference PGCP tree over string keys.

    The tree starts empty; the first insertion makes the key the root.  Later
    insertions may create a new root labelled by a (possibly empty) common
    prefix, exactly as the distributed Algorithm 3 does.
    """

    def __init__(self) -> None:
        self.root: Optional[PGCPNode] = None
        self._by_label: dict[str, PGCPNode] = {}
        # Optional hooks fired on structural change; the distributed layer
        # uses them to keep the node→peer mapping in sync with the tree.
        self.on_create = None  # Callable[[PGCPNode], None]
        self.on_remove = None  # Callable[[PGCPNode], None]
        #: Structural version counter: bumped on every node creation and
        #: removal.  Read-side caches (the discovery router's spine memo)
        #: stay valid exactly while this number does not change; data-only
        #: updates on existing nodes leave routes — and the counter — alone.
        self.version = 0
        #: Number of *filled* nodes (registered keys), maintained on every
        #: data transition so callers can read it in O(1) instead of
        #: walking the tree (``len(self.keys())``).  Code that bypasses the
        #: normal insert/remove paths (crash surgery, repair resets) must
        #: reconcile it by hand, exactly like :attr:`version`.
        self.filled_count = 0

    # -- basic accessors ---------------------------------------------------

    def __len__(self) -> int:
        """Number of nodes (filled + structural)."""
        return len(self._by_label)

    def __contains__(self, label: str) -> bool:
        return label in self._by_label

    def node(self, label: str) -> Optional[PGCPNode]:
        return self._by_label.get(label)

    def nodes(self) -> Iterator[PGCPNode]:
        return iter(self._by_label.values())

    def labels(self) -> set[str]:
        return set(self._by_label)

    def keys(self) -> set[str]:
        """Labels of filled nodes — the registered service keys."""
        return {lbl for lbl, n in self._by_label.items() if n.data}

    def depth(self) -> int:
        """Height of the tree in edges (0 for a single node, -1 when empty)."""
        if self.root is None:
            return -1

        def _h(n: PGCPNode) -> int:
            return 0 if not n.children else 1 + max(_h(c) for c in n.children.values())

        return _h(self.root)

    # -- insertion ---------------------------------------------------------

    def insert(self, key: str, datum: object = None) -> PGCPNode:
        """Register ``datum`` under ``key``, creating nodes as needed.

        Mirrors the four cases of Algorithm 3 (node found / key below /
        key above / sibling split), restated for a sequential tree.
        Returns the node holding the key.
        """
        if datum is None:
            datum = key
        if self.root is None:
            node = self._new_node(key)
            self.root = node
            node.data.add(datum)
            self.filled_count += 1
            return node

        node = self._locate(key)
        # ``node`` is the node whose neighbourhood must host ``key``.
        if node.label == key:
            if not node.data:
                self.filled_count += 1
            node.data.add(datum)
            return node

        if is_proper_prefix(node.label, key):
            # key belongs below ``node``; no child shares a longer prefix
            # (otherwise _locate would have descended) -> new leaf.
            child = node.child_towards(key)
            if child is None:
                leaf = self._new_node(key)
                node.add_child(leaf)
                leaf.data.add(datum)
                self.filled_count += 1
                return leaf
            # child shares >1 digit with key but neither prefixes the other,
            # or key prefixes child: split below node.
            return self._split(node, child, key, datum)

        if is_proper_prefix(key, node.label):
            # key must become an ancestor of ``node`` (Algorithm 3 lines
            # 3.10–3.20): insert between node and its parent (or as root).
            new = self._new_node(key)
            self._insert_above(node, new)
            new.data.add(datum)
            self.filled_count += 1
            return new

        # Neither prefixes the other (lines 3.21–3.31): create their common
        # parent labelled GCP(node.label, key) plus the key node.
        g = gcp(node.label, key)
        parent = node.parent
        if parent is not None and parent.label == g:
            leaf = self._new_node(key)
            parent.add_child(leaf)
            leaf.data.add(datum)
            self.filled_count += 1
            return leaf
        inner = self._new_node(g)
        self._insert_above(node, inner)
        leaf = self._new_node(key)
        inner.add_child(leaf)
        leaf.data.add(datum)
        self.filled_count += 1
        return leaf

    def insert_batch(self, pairs) -> int:
        """Register many ``(key, datum)`` pairs in one pass (``datum=None``
        registers the key itself, as in :meth:`insert`).

        The bulk-construction fast path of Algorithm 3: the batch is sorted
        lexicographically once, and a *cursor* — the root path of the
        previous insertion point — persists across iterations.  Because
        consecutive sorted keys share their longest common prefixes, each
        insertion pops the cursor to the deepest ancestor that still
        prefixes the new key and descends only the GCP delta, instead of
        paying a full root descent per key: amortised O(|key|) per key.

        A PGCP tree is canonical for its key set — insertion order never
        changes the final node set, edges or data — so this produces a tree
        identical to sequential :meth:`insert` calls in the caller's order
        (property-tested, including the total :attr:`version` advance);
        only the node-*creation* order within the batch differs (sorted,
        not caller order).  ``on_create`` hooks fire per created node as
        usual.  Returns the number of pairs applied.
        """
        items = [(key, key if datum is None else datum) for key, datum in pairs]
        if not items:
            return 0
        items.sort(key=itemgetter(0))
        # Cursor: the root path of the previous key's node.  Every non-root
        # entry properly prefixes the previous key, so after trimming, the
        # "key above node" / divergence cases can only involve the root.
        path: list[PGCPNode] = []
        if self.root is None:
            key, datum = items[0]
            node = self._new_node(key)
            self.root = node
            node.data.add(datum)
            self.filled_count += 1
            path.append(node)
            start = 1
        else:
            path.append(self.root)
            start = 0
        for key, datum in items[start:] if start else items:
            # Trim the cursor to the deepest ancestor prefixing ``key``.
            while len(path) > 1 and not key.startswith(path[-1].label):
                path.pop()
            node = path[-1]
            # Inlined _locate + insert, resumed from ``node`` (equivalent
            # to a root descent: every node prefixing ``key`` lies on one
            # root path, which the cursor preserved).
            while True:
                label = node.label
                if label == key:
                    if not node.data:
                        self.filled_count += 1
                    node.data.add(datum)
                    break
                if key.startswith(label):
                    child = node.children.get(key[len(label)]) if len(key) > len(label) else None
                    if child is None:
                        leaf = self._new_node(key)
                        node.add_child(leaf)
                        leaf.data.add(datum)
                        self.filled_count += 1
                        path.append(leaf)
                        break
                    cpl = common_prefix_len(child.label, key)
                    if cpl == len(child.label):
                        node = child
                        path.append(child)
                        continue
                    result = self._split(node, child, key, datum)
                    if result.parent is not node:
                        path.append(result.parent)  # divergence: inner GCP node
                    path.append(result)
                    break
                # ``node`` is the root (deeper cursor entries all prefix
                # ``key``): Algorithm 3's "key above" / divergence cases.
                if is_proper_prefix(key, label):
                    new = self._new_node(key)
                    self._insert_above(node, new)
                    new.data.add(datum)
                    self.filled_count += 1
                    del path[:]
                    path.append(new)  # ``new`` is the root now
                    break
                g = gcp(label, key)
                inner = self._new_node(g)
                self._insert_above(node, inner)
                leaf = self._new_node(key)
                inner.add_child(leaf)
                leaf.data.add(datum)
                self.filled_count += 1
                del path[:]
                path.append(inner)  # ``inner`` is the root now
                path.append(leaf)
                break
        return len(items)

    def _locate(self, key: str) -> PGCPNode:
        """Descend from the root towards ``key``; return the node where the
        insertion (or lookup) decision must be taken.

        The returned node ``p`` satisfies one of: ``p.label == key``;
        ``p.label`` properly prefixes ``key`` and no child of ``p`` both
        shares a longer prefix with ``key`` *and* properly prefixes it;
        or ``p`` is the deepest node whose label does not prefix ``key``
        (split needed at or above ``p``).
        """
        assert self.root is not None
        node = self.root
        while True:
            if node.label == key:
                return node
            if not is_proper_prefix(node.label, key):
                return node
            child = node.child_towards(key)
            if child is None:
                return node
            cpl = common_prefix_len(child.label, key)
            if cpl == len(child.label):
                node = child  # child prefixes key (possibly equals): descend
            else:
                return node  # split between child and key happens below node
        # unreachable

    def _split(self, parent: PGCPNode, child: PGCPNode, key: str, datum: object) -> PGCPNode:
        """Handle insertion of ``key`` that collides with ``child`` under
        ``parent``: either ``key`` prefixes ``child`` (key becomes the new
        intermediate node) or they diverge (a structural GCP node is made)."""
        cpl = common_prefix_len(child.label, key)
        assert cpl > len(parent.label), "split must share more than parent label"
        assert cpl < len(child.label), "_locate should have descended"
        if cpl == len(key):
            # key properly prefixes child: new node for key between them.
            new = self._new_node(key)
            parent.remove_child(child)
            parent.add_child(new)
            new.add_child(child)
            new.data.add(datum)
            self.filled_count += 1
            return new
        # true divergence: structural node labelled the common prefix.
        g = child.label[:cpl]
        inner = self._new_node(g)
        parent.remove_child(child)
        parent.add_child(inner)
        inner.add_child(child)
        leaf = self._new_node(key)
        inner.add_child(leaf)
        leaf.data.add(datum)
        self.filled_count += 1
        return leaf

    def _insert_above(self, node: PGCPNode, new: PGCPNode) -> None:
        """Splice ``new`` (whose label properly prefixes ``node.label``)
        between ``node`` and its parent; ``new`` becomes root if needed."""
        assert is_proper_prefix(new.label, node.label)
        parent = node.parent
        if parent is not None:
            assert is_proper_prefix(parent.label, new.label), (
                "new ancestor must sit strictly between parent and node"
            )
            parent.remove_child(node)
            parent.add_child(new)
        else:
            self.root = new
        new.add_child(node)

    def _new_node(self, label: str) -> PGCPNode:
        assert label not in self._by_label, f"node {label!r} already exists"
        node = PGCPNode(label)
        self._by_label[label] = node
        self.version += 1
        if self.on_create is not None:
            self.on_create(node)
        return node

    def _drop_node(self, node: PGCPNode) -> None:
        del self._by_label[node.label]
        self.version += 1
        if self.on_remove is not None:
            self.on_remove(node)

    # -- removal (extension; the paper does not specify deletion) -----------

    def remove(self, key: str, datum: object = None) -> bool:
        """Unregister ``datum`` (or all data when ``None``) from ``key``.

        Structural contraction: a now-empty leaf is pruned; an empty internal
        node left with a single child is contracted (child re-attached to the
        grandparent), keeping the PGCP invariant.  Returns whether anything
        was removed.  This is an extension — the paper leaves departure of
        services to future work — and is exercised by churn tests.
        """
        node = self._by_label.get(key)
        if node is None or not node.data:
            return False
        if datum is None:
            node.data.clear()
        elif datum in node.data:
            node.data.discard(datum)
        else:
            return False
        if not node.data:
            self.filled_count -= 1
        self._contract(node)
        return True

    def _contract(self, node: PGCPNode) -> None:
        """Prune/contract ``node`` upwards while it is structurally idle."""
        while node is not None and not node.data:
            parent = node.parent
            if not node.children:
                # empty leaf: prune (unless it is the only node left).
                if parent is None:
                    self.root = None
                    self._drop_node(node)
                    return
                parent.remove_child(node)
                self._drop_node(node)
                node = parent
            elif len(node.children) == 1:
                (child,) = node.children.values()
                if parent is None:
                    node.remove_child(child)
                    self.root = child
                    child.parent = None
                else:
                    node.remove_child(child)
                    parent.remove_child(node)
                    parent.add_child(child)
                self._drop_node(node)
                node = parent
            else:
                return

    # -- search primitives ---------------------------------------------------

    def lookup(self, key: str) -> Optional[PGCPNode]:
        """Exact lookup: the node labelled ``key`` if it exists and is filled
        or structural; ``None`` when absent."""
        return self._by_label.get(key)

    def complete(self, partial: str) -> list[str]:
        """Automatic completion: all registered keys having ``partial`` as a
        prefix, in lexicographic order (paper: "automatic completion of
        partial search strings")."""
        if self.root is None:
            return []
        # Find the highest node whose label could cover ``partial``.
        node = self.root
        if common_prefix_len(node.label, partial) < min(len(node.label), len(partial)):
            return []
        while len(node.label) < len(partial):
            child = node.child_towards(partial)
            if child is None:
                return []
            if common_prefix_len(child.label, partial) < min(len(child.label), len(partial)):
                return []
            node = child
        out: list[str] = []
        self._collect_keys(node, out)
        return sorted(out)

    def _collect_keys(self, node: PGCPNode, out: list[str]) -> None:
        if node.data:
            out.append(node.label)
        for child in node.children.values():
            self._collect_keys(child, out)

    def range_query(self, lo: str, hi: str) -> list[str]:
        """All registered keys ``k`` with ``lo <= k <= hi`` (lexicographic),
        in order — the trie descends only branches overlapping the range."""
        if lo > hi:
            raise ValueError("range_query requires lo <= hi")
        out: list[str] = []
        if self.root is not None:
            self._range(self.root, lo, hi, out)
        return sorted(out)

    def _range(self, node: PGCPNode, lo: str, hi: str, out: list[str]) -> None:
        # Prune: the subtree of ``node`` only contains keys extending
        # node.label; skip it when that whole band misses [lo, hi].
        lbl = node.label
        if lbl > hi:
            return
        # Largest possible key in subtree starts with lbl; if lbl is not a
        # prefix of lo and lbl < lo then every extension is still < lo only
        # when lbl is lexicographically below lo and not a prefix of it.
        if lbl < lo and not lo.startswith(lbl):
            return
        if node.data and lo <= lbl <= hi:
            out.append(lbl)
        for child in node.children.values():
            self._range(child, lo, hi, out)

    # -- invariants & rendering ---------------------------------------------

    def check_invariants(self) -> None:
        """Raise :class:`AssertionError` when Definition 1 is violated."""
        if self.root is None:
            assert not self._by_label, "index non-empty but root is None"
            return
        assert self.root.parent is None, "root must have no parent"
        seen: set[str] = set()
        stack = [self.root]
        while stack:
            node = stack.pop()
            assert node.label not in seen, f"duplicate label {node.label!r}"
            seen.add(node.label)
            assert self._by_label.get(node.label) is node, "index out of sync"
            digits = list(node.children.keys())
            assert len(set(digits)) == len(digits)
            kids = list(node.children.values())
            for digit, child in node.children.items():
                assert child.parent is node, f"broken parent link at {child.label!r}"
                assert is_proper_prefix(node.label, child.label), (
                    f"{node.label!r} not a proper prefix of child {child.label!r}"
                )
                assert child.label[len(node.label)] == digit, "child dict key wrong"
            for i in range(len(kids)):
                for j in range(i + 1, len(kids)):
                    g = gcp(kids[i].label, kids[j].label)
                    assert g == node.label, (
                        f"children {kids[i].label!r}, {kids[j].label!r} share "
                        f"prefix {g!r} != parent {node.label!r} (Definition 1)"
                    )
            stack.extend(kids)
        assert seen == set(self._by_label), "index contains detached labels"
        filled = sum(1 for n in self._by_label.values() if n.data)
        assert filled == self.filled_count, (
            f"filled_count {self.filled_count} != {filled} filled nodes"
        )

    def render(self) -> str:
        """ASCII rendering (used by tests and the quickstart example)."""
        if self.root is None:
            return "(empty)"
        lines: list[str] = []

        def _walk(node: PGCPNode, depth: int) -> None:
            mark = "*" if node.data else "o"
            label = node.label if node.label else "ε"
            lines.append("  " * depth + f"{mark} {label}")
            for d in sorted(node.children):
                _walk(node.children[d], depth + 1)

        _walk(self.root, 0)
        return "\n".join(lines)
