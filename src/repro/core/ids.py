"""Identifier algebra: prefixes, GCP and PGCP (paper Section 2).

All functions operate on plain strings.  ``""`` is the empty identifier ``ε``.

Definitions (quoting the paper):

* ``u`` is a *prefix* of ``v`` iff there is a ``w`` with ``v = uw``; it is a
  *proper* prefix when additionally ``u != v``.
* ``GCP(w1, ..., wk)`` is the longest prefix shared by all of them.
* ``PGCP(w1, ..., wk)`` is the longest prefix ``u`` shared by all of them such
  that ``u != wi`` for every ``i`` (the *proper* greatest common prefix).

These operations are the entire vocabulary of Algorithm 3 (data insertion) and
of the PGCP-tree invariant (Definition 1), so they are implemented here once
and reused by the reference tree, the distributed protocol and the tests.
"""

from __future__ import annotations

from typing import Iterable

EPSILON = ""


def is_prefix(u: str, v: str) -> bool:
    """True iff ``u`` is a (not necessarily proper) prefix of ``v``."""
    return v.startswith(u)


def is_proper_prefix(u: str, v: str) -> bool:
    """True iff ``u`` is a prefix of ``v`` and ``u != v``."""
    return len(u) < len(v) and v.startswith(u)


def common_prefix_len(a: str, b: str) -> int:
    """Length of the greatest common prefix of ``a`` and ``b``."""
    n = min(len(a), len(b))
    i = 0
    while i < n and a[i] == b[i]:
        i += 1
    return i


def gcp(a: str, b: str) -> str:
    """Greatest common prefix of two identifiers.

    ``gcp("101", "100") == "10"`` (paper Section 3's worked example).
    """
    return a[: common_prefix_len(a, b)]


def gcp_many(identifiers: Iterable[str]) -> str:
    """Greatest common prefix of a non-empty collection."""
    it = iter(identifiers)
    try:
        acc = next(it)
    except StopIteration:
        raise ValueError("gcp_many() requires at least one identifier") from None
    for w in it:
        acc = acc[: common_prefix_len(acc, w)]
        if not acc:
            break
    return acc


def pgcp(identifiers: Iterable[str]) -> str:
    """Proper greatest common prefix of a collection (paper Section 2).

    The longest prefix shared by all identifiers that differs from each of
    them.  When the plain GCP equals one of the identifiers (i.e. one
    identifier prefixes all others) the PGCP is the GCP shortened by one
    digit — any shorter prefix is still shared, and it cannot collide with
    another identifier because every identifier has length >= |GCP|.
    """
    idents = list(identifiers)
    g = gcp_many(idents)
    if any(w == g for w in idents):
        if not g:
            raise ValueError(
                "PGCP undefined: empty identifier present in the collection"
            )
        return g[:-1]
    return g


def prefixes(k: str) -> list[str]:
    """All *proper* prefixes of ``k``, shortest first, including ``ε``.

    ``prefixes("10101") == ["", "1", "10", "101", "1010"]`` — the paper's
    ``Prefixes`` primitive used by Algorithms 1 and 3.
    """
    return [k[:i] for i in range(len(k))]


def prefix_set(k: str) -> frozenset[str]:
    """:func:`prefixes` as a frozenset, for O(1) membership tests."""
    return frozenset(k[:i] for i in range(len(k)))


def concat(u: str, v: str) -> str:
    """Concatenation ``uv`` (paper Section 2).  Provided for symmetry; the
    identity laws ``concat(ε, w) == concat(w, ε) == w`` are property-tested."""
    return u + v


def length(w: str) -> int:
    """``|w|`` — number of digits, with ``|ε| == 0``."""
    return len(w)
