"""Identifier algebra, the reference PGCP tree, and the query model."""

from .alphabet import BINARY, PRINTABLE, Alphabet, alphabet_for
from .ids import gcp, gcp_many, is_prefix, is_proper_prefix, pgcp, prefixes
from .pgcp import PGCPNode, PGCPTree
from .queries import ExactQuery, MultiAttributeQuery, PrefixQuery, RangeQuery

__all__ = [
    "Alphabet", "BINARY", "PRINTABLE", "alphabet_for",
    "gcp", "gcp_many", "pgcp", "prefixes", "is_prefix", "is_proper_prefix",
    "PGCPNode", "PGCPTree",
    "ExactQuery", "PrefixQuery", "RangeQuery", "MultiAttributeQuery",
]
