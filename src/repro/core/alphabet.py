"""Digit alphabets for DLPT identifier spaces.

The paper (Section 2, *Greatest Common Prefix Tree*) defines identifiers as
finite sequences of digits over a finite set ``A`` (e.g. ``A = {0, 1}``).
Identifiers in this library are plain Python strings whose characters must all
belong to the alphabet; the lexicographic order used by the ring and the tree
is the order induced by the alphabet's digit order.

For the two built-in alphabets (:data:`BINARY` and :data:`PRINTABLE`) the digit
order coincides with Unicode code-point order, so plain string comparison is a
valid lexicographic comparison and the hot routing paths can compare strings
directly.  Custom alphabets with a non-natural digit order are supported via
:meth:`Alphabet.sort_key`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Alphabet:
    """An ordered, finite set of single-character digits.

    Parameters
    ----------
    digits:
        The digits in increasing order.  Each digit must be a single
        character and digits must be pairwise distinct.
    name:
        Optional human-readable name used in ``repr`` and error messages.
    """

    digits: tuple[str, ...]
    name: str = "custom"
    _rank: dict[str, int] = field(init=False, repr=False, compare=False, hash=False, default=None)

    def __post_init__(self) -> None:
        if not self.digits:
            raise ValueError("alphabet must contain at least one digit")
        for d in self.digits:
            if not isinstance(d, str) or len(d) != 1:
                raise ValueError(f"alphabet digit must be a single character, got {d!r}")
        if len(set(self.digits)) != len(self.digits):
            raise ValueError("alphabet digits must be distinct")
        object.__setattr__(self, "_rank", {d: i for i, d in enumerate(self.digits)})

    # -- basic queries ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.digits)

    def __contains__(self, digit: str) -> bool:
        return digit in self._rank

    def __iter__(self):
        return iter(self.digits)

    @property
    def size(self) -> int:
        """``|A|`` — the number of digits (used in Table 2's local-state bound)."""
        return len(self.digits)

    def rank(self, digit: str) -> int:
        """Position of ``digit`` in the alphabet order (0-based)."""
        try:
            return self._rank[digit]
        except KeyError:
            raise ValueError(f"digit {digit!r} not in alphabet {self.name!r}") from None

    @property
    def is_natural_order(self) -> bool:
        """True when digit order equals Unicode order (string compare is valid)."""
        return all(
            ord(self.digits[i]) < ord(self.digits[i + 1])
            for i in range(len(self.digits) - 1)
        )

    # -- identifier validation & ordering --------------------------------

    def validate(self, identifier: str) -> str:
        """Return ``identifier`` unchanged if every character is a digit of this
        alphabet; raise :class:`ValueError` otherwise.  The empty identifier
        (``ε`` in the paper) is always valid."""
        for ch in identifier:
            if ch not in self._rank:
                raise ValueError(
                    f"identifier {identifier!r} contains {ch!r}, "
                    f"not a digit of alphabet {self.name!r}"
                )
        return identifier

    def is_valid(self, identifier: str) -> bool:
        """Non-raising form of :meth:`validate`."""
        return all(ch in self._rank for ch in identifier)

    def validate_many(self, identifiers) -> None:
        """Validate a batch of identifiers in one pass.

        One set comparison over the concatenated text replaces the
        per-character membership loop of :meth:`validate` — the bulk
        registration path validates thousands of keys per call.  On
        failure it falls back to per-identifier :meth:`validate` so the
        error names the offending identifier, exactly as the sequential
        path would have raised it.
        """
        if set("".join(identifiers)) <= self._rank.keys():
            return
        for identifier in identifiers:
            self.validate(identifier)

    def sort_key(self, identifier: str) -> tuple[int, ...]:
        """A tuple usable as a sort key realising this alphabet's
        lexicographic order even when the digit order is not natural."""
        rank = self._rank
        return tuple(rank[ch] for ch in identifier)

    def compare(self, a: str, b: str) -> int:
        """Three-way lexicographic comparison (-1, 0, +1) under this alphabet."""
        if self.is_natural_order:
            return (a > b) - (a < b)
        ka, kb = self.sort_key(a), self.sort_key(b)
        return (ka > kb) - (ka < kb)

    # -- generation helpers ----------------------------------------------

    def random_identifier(self, rng, length: int) -> str:
        """Draw a uniformly random identifier of exactly ``length`` digits."""
        if length < 0:
            raise ValueError("length must be >= 0")
        digits = self.digits
        n = len(digits)
        return "".join(digits[rng.randrange(n)] for _ in range(length))


#: The binary alphabet of the paper's Figure 1(a).
BINARY = Alphabet(digits=("0", "1"), name="binary")

#: Printable identifier alphabet covering grid service names such as BLAS,
#: S3L and ScaLAPACK routine names (Figure 1(b) and the Figure 8 hot spots),
#: plus the ``attr=value`` keys of multi-attribute registration and common
#: name punctuation.  Digits are in natural (code-point) order so plain
#: string comparison is the lexicographic order.
PRINTABLE = Alphabet(
    digits=tuple(
        sorted("-.=_0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz")
    ),
    name="printable",
)


def alphabet_for(identifiers) -> Alphabet:
    """Infer the smallest natural-order alphabet covering ``identifiers``.

    Useful in tests and examples where keys come from an arbitrary corpus.
    """
    chars = sorted({ch for ident in identifiers for ch in ident})
    if not chars:
        chars = ["0"]
    return Alphabet(digits=tuple(chars), name="inferred")
