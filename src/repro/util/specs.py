"""``name:key=value:...`` spec tokenisation.

One tokenizer behind both compact-spec surfaces — workload specs
(:mod:`repro.workloads.spec`) and balancer specs
(:func:`repro.lb.balancer_from_spec`) — so the syntax and its error
messages cannot drift apart.  Values are returned as strings; each caller
owns its own coercion (numbers, booleans) and error type.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


def split_spec(spec: str) -> Tuple[str, List[str]]:
    """Split ``"name:tok1:tok2"`` into ``("name", ["tok1", "tok2"])``."""
    name, *rest = spec.split(":")
    return name, rest


def parse_options(tokens: List[str], spec: str, label: str = "spec") -> Dict[str, str]:
    """Parse ``key=value`` tokens into a string→string dict.

    Raises :class:`ValueError` naming the offending token and the full
    ``spec`` (prefixed with ``label`` for context).
    """
    options: Dict[str, str] = {}
    for token in tokens:
        key, sep, value = token.partition("=")
        if not sep:
            raise ValueError(
                f"{label} {spec!r}: expected key=value, got {token!r}"
            )
        options[key] = value
    return options
