"""One spec surface: tokenisation, the parser registry, and ``SpecError``.

Every compact-spec syntax in the repository — workloads
(:mod:`repro.workloads.spec`), faults (:mod:`repro.faults.spec`), set
queries (:mod:`repro.workloads.queries`) and balancers (:mod:`repro.lb`)
— parses through this module, at two levels:

* **Tokenisation** (:func:`split_spec` / :func:`parse_options`): the
  shared ``name:key=value:...`` syntax, so grammar and error messages
  cannot drift between the surfaces.
* **The registry** (:func:`parse_spec` / :func:`spec_signature` /
  :func:`spec_hash`): each spec *kind* registers its parser and canonical
  signature function once (:func:`register_spec_kind`); callers name the
  kind and hand over any accepted value form (string, dict, constructed
  object) — ``parse_spec("workload", "zipf:1.2")``,
  ``parse_spec("faults", {"kind": "crash_storm", "rate": 0.05})``,
  ``parse_spec("balancer", "mlt:fraction=0.5")``.  Signatures are the
  JSON-canonical structures the sweep store hashes; :func:`spec_hash`
  collapses one to a stable SHA-256, identically for every kind.

Every parse failure raises a subclass of :class:`SpecError` (itself a
``ValueError``, so pre-registry ``except ValueError`` callers keep
working) naming the offending spec.  The per-kind error classes —
``WorkloadSpecError``, ``FaultSpecError``, ``QuerySpecError``,
``BalancerSpecError`` — all derive from it, so one ``except SpecError``
guards any mixed configuration surface.

The pre-registry entry points (``repro.workloads.spec.parse_workload``,
``repro.faults.spec.parse_faults``, ``repro.workloads.queries
.parse_queries``, ``repro.lb.balancer_from_spec``) remain as thin
deprecated shims over this registry.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Dict, List, Optional, Tuple


class SpecError(ValueError):
    """Base of every compact-spec parse/validation failure.

    Subclasses ``ValueError`` so callers written against the pre-registry
    per-module error types (which were bare ``ValueError`` subclasses)
    keep catching what they caught.
    """


class UnknownSpecKindError(SpecError):
    """``parse_spec`` was asked for a kind no module registered."""


# -- tokenisation ------------------------------------------------------------


def split_spec(spec: str) -> Tuple[str, List[str]]:
    """Split ``"name:tok1:tok2"`` into ``("name", ["tok1", "tok2"])``."""
    name, *rest = spec.split(":")
    return name, rest


def parse_options(tokens: List[str], spec: str, label: str = "spec") -> Dict[str, str]:
    """Parse ``key=value`` tokens into a string→string dict.

    Raises :class:`SpecError` naming the offending token and the full
    ``spec`` (prefixed with ``label`` for context).
    """
    options: Dict[str, str] = {}
    for token in tokens:
        key, sep, value = token.partition("=")
        if not sep:
            raise SpecError(
                f"{label} {spec!r}: expected key=value, got {token!r}"
            )
        options[key] = value
    return options


# -- the parser registry -----------------------------------------------------


class _SpecKind:
    __slots__ = ("name", "parser", "signature")

    def __init__(self, name: str, parser: Callable, signature: Optional[Callable]):
        self.name = name
        self.parser = parser
        self.signature = signature


_REGISTRY: Dict[str, _SpecKind] = {}

#: Modules whose import registers the built-in kinds; loaded lazily so
#: this low-level module never imports the feature packages at import
#: time (repro.util must stay dependency-free).
_BUILTIN_PROVIDERS = (
    "repro.workloads.spec",
    "repro.workloads.queries",
    "repro.faults.spec",
    "repro.lb",
    "repro.net.chaos",
)


def register_spec_kind(
    name: str,
    parser: Callable[[object], Any],
    signature: Optional[Callable[[Any], Any]] = None,
) -> None:
    """Register (or replace) the parser for one spec ``kind``.

    ``parser`` takes any accepted value form and returns the validated
    object (raising a :class:`SpecError` subclass otherwise);
    ``signature`` maps a parsed object to its canonical JSON-serialisable
    structure (``None`` when the kind has no signature surface).
    """
    _REGISTRY[name] = _SpecKind(name, parser, signature)


def _resolve(kind: str) -> _SpecKind:
    entry = _REGISTRY.get(kind)
    if entry is None:
        import importlib

        for module in _BUILTIN_PROVIDERS:
            importlib.import_module(module)
        entry = _REGISTRY.get(kind)
    if entry is None:
        raise UnknownSpecKindError(
            f"unknown spec kind {kind!r} (registered: {', '.join(spec_kinds())})"
        )
    return entry


def spec_kinds() -> List[str]:
    """The registered spec kinds (importing the built-in providers)."""
    import importlib

    for module in _BUILTIN_PROVIDERS:
        importlib.import_module(module)
    return sorted(_REGISTRY)


def parse_spec(kind: str, value: object) -> Any:
    """Parse ``value`` as a ``kind`` spec through the registry.

    The single entry point behind every compact-spec surface::

        parse_spec("workload", "zipf:1.2")        -> WorkloadSchedule
        parse_spec("faults", "crash_storm:0.02")  -> FaultPlan
        parse_spec("queries", "mixed:n=4")        -> QueryWorkload
        parse_spec("balancer", "mlt:fraction=0.5") -> LoadBalancer

    Raises :class:`UnknownSpecKindError` for an unregistered kind and the
    kind's own :class:`SpecError` subclass for a bad value.
    """
    return _resolve(kind).parser(value)


def spec_signature(kind: str, parsed: Any) -> Any:
    """The canonical JSON-serialisable signature of a parsed ``kind`` spec.

    Uniform across kinds: this is what :class:`~repro.experiments.config.
    ExperimentConfig.signature` embeds and what the sweep store hashes.
    """
    entry = _resolve(kind)
    if entry.signature is None:
        raise SpecError(f"spec kind {kind!r} has no signature surface")
    return entry.signature(parsed)


def spec_hash(kind: str, parsed: Any) -> str:
    """A stable SHA-256 over the canonical signature, identical for any
    two specs that parse to semantically equal objects (dict key order
    never matters)."""
    canonical = json.dumps(
        {"kind": kind, "signature": spec_signature(kind, parsed)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
