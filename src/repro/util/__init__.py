"""Shared utilities: sorted containers, statistics, seeded RNG streams."""

from .rng import RngStreams
from .sortedlist import SortedList
from .stats import SeriesSummary, gain_percent, mean_ci, summarize_series

__all__ = ["RngStreams", "SortedList", "SeriesSummary", "gain_percent", "mean_ci", "summarize_series"]
