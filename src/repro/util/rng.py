"""Named, seeded RNG streams for reproducible experiments.

Every stochastic component of the simulator (peer-id generation, churn,
workload, capacity draw, load balancing tie-breaks) draws from its own named
stream derived from a master seed.  This makes experiments reproducible and —
crucially for the paper's comparisons — lets MLT / KC / no-LB runs share
identical workloads and churn schedules so that differences in satisfied
requests are attributable to the heuristic alone (common random numbers).
"""

from __future__ import annotations

import random
from typing import Dict


class RngStreams:
    """A family of independent :class:`random.Random` streams keyed by name.

    Streams are derived deterministically from ``(master_seed, name)``; asking
    for the same name twice returns the same stream object.
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream called ``name``."""
        s = self._streams.get(name)
        if s is None:
            # Derive a stream seed from the pair; Random(hash) would be
            # process-dependent for strings, so combine explicitly.
            seed = (self.master_seed * 1_000_003) ^ _stable_hash(name)
            s = random.Random(seed)
            self._streams[name] = s
        return s

    def spawn(self, index: int) -> "RngStreams":
        """Derive a child family (e.g. one per simulation run)."""
        return RngStreams((self.master_seed * 31_337 + index * 2_654_435_761) & 0xFFFFFFFFFFFF)

    def __repr__(self) -> str:
        return f"RngStreams(master_seed={self.master_seed})"


def _stable_hash(name: str) -> int:
    """A process-independent 48-bit hash of ``name`` (FNV-1a)."""
    h = 0xCBF29CE484222325
    for ch in name.encode("utf-8"):
        h ^= ch
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h & 0xFFFFFFFFFFFF
