"""Statistics helpers for multi-run experiment aggregation.

The paper repeats every simulation 30, 50 or 100 times and plots per-time-unit
means.  This module aggregates per-run time series into mean / stdev /
confidence-interval series, and computes the *gain* metric of Table 1
(relative improvement in satisfied requests over the no-load-balancing run).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

# Two-sided 95% standard-normal quantile; with >= 30 runs (the paper's
# minimum) the normal approximation to the t distribution is adequate.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class SeriesSummary:
    """Per-time-unit aggregate of repeated runs of one time series."""

    mean: np.ndarray
    std: np.ndarray
    ci95: np.ndarray
    n_runs: int

    def __len__(self) -> int:
        return len(self.mean)


def summarize_series(runs: Sequence[Sequence[float]]) -> SeriesSummary:
    """Aggregate ``runs`` (one sequence per run, equal lengths) pointwise."""
    if not runs:
        raise ValueError("summarize_series() requires at least one run")
    arr = np.asarray(runs, dtype=float)
    if arr.ndim != 2:
        raise ValueError("all runs must have the same length")
    n = arr.shape[0]
    mean = arr.mean(axis=0)
    std = arr.std(axis=0, ddof=1) if n > 1 else np.zeros(arr.shape[1])
    ci = _Z95 * std / math.sqrt(n) if n > 1 else np.zeros(arr.shape[1])
    return SeriesSummary(mean=mean, std=std, ci95=ci, n_runs=n)


def mean_ci(values: Sequence[float]) -> tuple[float, float]:
    """Mean and 95% CI half-width of a scalar sample."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("mean_ci() requires at least one value")
    if arr.size == 1:
        return float(arr[0]), 0.0
    return float(arr.mean()), float(_Z95 * arr.std(ddof=1) / math.sqrt(arr.size))

def gain_percent(heuristic_satisfied: float, baseline_satisfied: float) -> float:
    """Table 1's gain metric: relative improvement (in %) of a heuristic's
    satisfied-request count over the no-load-balancing baseline.

    ``gain = 100 * (heuristic - baseline) / baseline``.
    """
    if baseline_satisfied <= 0:
        raise ValueError("baseline satisfied-request count must be positive")
    return 100.0 * (heuristic_satisfied - baseline_satisfied) / baseline_satisfied


def steady_state_mean(series: Sequence[float], warmup: int) -> float:
    """Mean of ``series`` after discarding the first ``warmup`` entries
    (the paper's first ~10 units are tree-growth transient)."""
    tail = list(series)[warmup:]
    if not tail:
        raise ValueError("warmup discards the whole series")
    return float(np.mean(tail))
