"""A small bisect-based sorted list with ceiling/floor queries.

The DLPT mapping (paper Section 3) repeatedly asks: *given a node label n,
which peer hosts it?* — the peer with the lowest identifier ``>= n``, wrapping
to the minimum peer when ``n`` exceeds every peer id (``P_min`` hosts every
node above ``P_max``).  That is a ceiling query on a sorted set with circular
wrap-around, which this module provides in ``O(log n)`` without external
dependencies (``sortedcontainers`` is not available offline).
"""

from __future__ import annotations

import bisect
from typing import Generic, Iterable, Iterator, Optional, TypeVar

T = TypeVar("T")


class SortedList(Generic[T]):
    """Sorted list of unique, mutually comparable items.

    Supports ``O(log n)`` membership, insertion position, ceiling/floor and
    circular successor/predecessor queries, and ``O(n)`` insertion/removal
    (list shifting) — entirely adequate for rings of 10^2–10^4 peers.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Optional[Iterable[T]] = None) -> None:
        self._items: list[T] = sorted(set(items)) if items else []

    # -- container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __contains__(self, item: T) -> bool:
        i = bisect.bisect_left(self._items, item)
        return i < len(self._items) and self._items[i] == item

    def __getitem__(self, index: int) -> T:
        return self._items[index]

    def __repr__(self) -> str:
        return f"SortedList({self._items!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SortedList):
            return self._items == other._items
        return NotImplemented

    # -- mutation ------------------------------------------------------------

    def add(self, item: T) -> None:
        """Insert ``item``; raise :class:`ValueError` if already present."""
        i = bisect.bisect_left(self._items, item)
        if i < len(self._items) and self._items[i] == item:
            raise ValueError(f"duplicate item {item!r}")
        self._items.insert(i, item)

    def discard(self, item: T) -> bool:
        """Remove ``item`` if present; return whether it was present."""
        i = bisect.bisect_left(self._items, item)
        if i < len(self._items) and self._items[i] == item:
            del self._items[i]
            return True
        return False

    def remove(self, item: T) -> None:
        """Remove ``item``; raise :class:`ValueError` if absent."""
        if not self.discard(item):
            raise ValueError(f"item {item!r} not present")

    def clear(self) -> None:
        self._items.clear()

    # -- bulk mutation -----------------------------------------------------

    def update(self, items: Iterable[T]) -> None:
        """Insert many items at once; raise :class:`ValueError` on any
        duplicate (within ``items`` or against existing content), in which
        case the list is left unchanged (atomic either way).

        A node-interval migration moves a whole slice of labels between
        peers; merging the batch in one pass is O(n + m log m) instead of
        the O(n·m) of repeated single inserts.
        """
        batch = sorted(items)
        if not batch:
            return
        for i in range(1, len(batch)):
            if batch[i - 1] == batch[i]:
                raise ValueError(f"duplicate item {batch[i]!r}")
        if len(batch) <= 8:
            # Tiny batch: a few bisect inserts beat a full O(n) merge.
            # (Each insert shifts O(n) elements, so this only wins for
            # genuinely small m.)  Validate against existing content
            # first to stay atomic.
            for item in batch:
                if item in self:
                    raise ValueError(f"duplicate item {item!r}")
            for item in batch:
                self.add(item)
            return
        merged = self._items + batch
        merged.sort()  # timsort: two sorted runs merge in O(n + m)
        for i in range(1, len(merged)):
            if merged[i - 1] == merged[i]:
                raise ValueError(f"duplicate item {merged[i]!r}")
        self._items = merged

    def remove_many(self, items: Iterable[T]) -> None:
        """Remove many items at once; raise :class:`ValueError` if any is
        absent, in which case the list is left unchanged (atomic either
        way).  O(n + m) for large batches (single filtering pass)."""
        batch = set(items)
        if not batch:
            return
        if len(batch) <= 8:
            # Tiny batch: per-item deletes beat the full filtering pass.
            for item in batch:
                if item not in self:
                    raise ValueError(f"item {item!r} not present")
            for item in batch:
                self.remove(item)
            return
        kept = [x for x in self._items if x not in batch]
        if len(kept) != len(self._items) - len(batch):
            missing = batch.difference(self._items)
            raise ValueError(f"items not present: {sorted(missing)[:5]!r}")
        self._items = kept

    # -- order queries ---------------------------------------------------

    def index(self, item: T) -> int:
        """Index of ``item``; raise :class:`ValueError` if absent."""
        i = bisect.bisect_left(self._items, item)
        if i < len(self._items) and self._items[i] == item:
            return i
        raise ValueError(f"item {item!r} not present")

    def index_left(self, key) -> int:
        """``bisect_left`` position of ``key`` (first index with item >= key)."""
        return bisect.bisect_left(self._items, key)

    def index_right(self, key) -> int:
        """``bisect_right`` position of ``key`` (first index with item > key)."""
        return bisect.bisect_right(self._items, key)

    def slice(self, start: int, stop: int) -> list[T]:
        """Copy of ``[start:stop)`` of the underlying sorted list."""
        return self._items[start:stop]

    def range_open_closed(self, a, b) -> list[T]:
        """All items in the *circular* interval ``(a, b]``.

        The interval wraps when ``a >= b`` (and ``(a, a]`` is the full ring —
        the single-peer case), mirroring
        :func:`repro.core.keyspace.in_interval_open_closed`.  Two bisects and
        a slice instead of a full scan: this is the primitive behind
        interval-batched node migration.
        """
        items = self._items
        if a < b:
            return items[bisect.bisect_right(items, a) : bisect.bisect_right(items, b)]
        # wrapped (or degenerate full-ring) interval: (a, max] ∪ [min, b]
        return items[bisect.bisect_right(items, a) :] + items[: bisect.bisect_right(items, b)]

    def min(self) -> T:
        if not self._items:
            raise ValueError("empty SortedList has no min")
        return self._items[0]

    def max(self) -> T:
        if not self._items:
            raise ValueError("empty SortedList has no max")
        return self._items[-1]

    def ceiling(self, key) -> Optional[T]:
        """Smallest item ``>= key``, or ``None`` if every item is smaller."""
        i = bisect.bisect_left(self._items, key)
        return self._items[i] if i < len(self._items) else None

    def floor(self, key) -> Optional[T]:
        """Largest item ``<= key``, or ``None`` if every item is larger."""
        i = bisect.bisect_right(self._items, key)
        return self._items[i - 1] if i > 0 else None

    def higher(self, key) -> Optional[T]:
        """Smallest item strictly ``> key``, or ``None``."""
        i = bisect.bisect_right(self._items, key)
        return self._items[i] if i < len(self._items) else None

    def lower(self, key) -> Optional[T]:
        """Largest item strictly ``< key``, or ``None``."""
        i = bisect.bisect_left(self._items, key)
        return self._items[i - 1] if i > 0 else None

    # -- circular (ring) queries ------------------------------------------

    def successor(self, key) -> T:
        """Circular ceiling: smallest item ``>= key``, wrapping to ``min()``.

        This is exactly the paper's node→peer mapping rule ("the lowest peer
        id higher than the key"; nodes above ``P_max`` map to ``P_min``).
        """
        if not self._items:
            raise ValueError("empty SortedList has no successor")
        c = self.ceiling(key)
        return c if c is not None else self._items[0]

    def strict_successor(self, key) -> T:
        """Circular strictly-greater query, wrapping to ``min()``."""
        if not self._items:
            raise ValueError("empty SortedList has no successor")
        h = self.higher(key)
        return h if h is not None else self._items[0]

    def predecessor(self, key) -> T:
        """Circular strictly-lower query, wrapping to ``max()``."""
        if not self._items:
            raise ValueError("empty SortedList has no predecessor")
        lo = self.lower(key)
        return lo if lo is not None else self._items[-1]

    def as_list(self) -> list[T]:
        """A copy of the underlying sorted list."""
        return list(self._items)

    def raw(self) -> list[T]:
        """The underlying sorted list itself — zero-copy, READ-ONLY.

        For hot loops that index repeatedly (bulk random sampling) and
        must not pay a per-call ``__getitem__`` dispatch or an ``as_list``
        copy.  Mutating the returned list corrupts the structure."""
        return self._items
