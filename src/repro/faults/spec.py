"""Fault specs: build any fault plan from a string or dict.

``ExperimentConfig(faults=...)`` and the ``python -m repro run --faults``
CLI flag accept a compact spec instead of constructed objects, mirroring
the workload specs of :mod:`repro.workloads.spec`:

* ``"crash_storm:0.02"`` — each peer crashes with probability 2% per unit;
  optional ``start=``/``end=`` bound the storm window;
* ``"correlated:0.3@40"`` — 30% of the peers crash simultaneously at
  unit 40;
* ``"partition:8@40"`` / ``"partition:8@40:fraction=0.25"`` — a contiguous
  ring arc is unreachable for 8 units starting at unit 40;
* every kind accepts the policy options ``r=N`` (successor-replication
  factor, 0 disables) and ``repair_every=N`` (repair cadence in units);
* a dict composes phases, like mixed workloads: ``{"kind": "mixed",
  "phases": [{"start": 10, "end": 30, "faults": "crash_storm:0.05"},
  {"start": 30, "end": 40, "faults": "partition:5@32"}], "r": 2}`` —
  policy options live at the top level only;
* an already-built :class:`~repro.faults.schedules.FaultPlan` or bare
  schedule passes through (the latter wrapped with the default policy).

Every failure raises :class:`FaultSpecError` naming the offending spec —
validation happens when the config is parsed, not mid-simulation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..util.specs import SpecError, parse_options, register_spec_kind, split_spec
from .schedules import (
    CorrelatedCrash,
    CrashStorm,
    FaultPhase,
    FaultPlan,
    FaultSchedule,
    MixedFaults,
    PartitionSchedule,
)

#: Spec kinds accepted by :func:`parse_faults` (string and dict forms).
FAULT_KINDS = ("crash_storm", "correlated", "partition", "mixed")

#: Options that configure the response policy rather than the schedule.
_POLICY_OPTIONS = ("r", "repair_every")


class FaultSpecError(SpecError):
    """A fault spec that cannot be parsed or validated."""


def _number(token: str, spec: object) -> float:
    try:
        return int(token) if str(token).lstrip("+-").isdigit() else float(token)
    except ValueError:
        raise FaultSpecError(
            f"fault spec {spec!r}: {token!r} is not a number"
        ) from None


def _options(tokens: List[str], spec: str) -> Dict[str, float]:
    try:
        raw = parse_options(tokens, spec, label="fault spec")
    except ValueError as exc:
        raise FaultSpecError(str(exc)) from exc
    return {key: _number(value, spec) for key, value in raw.items()}


def _apply(factory, kwargs: Dict[str, Any], spec: object):
    try:
        return factory(**kwargs)
    except (TypeError, ValueError) as exc:
        raise FaultSpecError(f"fault spec {spec!r}: {exc}") from exc


def _split_policy(
    options: Dict[str, float], spec: object, allow_policy: bool
) -> Tuple[Dict[str, Any], Dict[str, int]]:
    """Separate schedule options from policy options (``r``,
    ``repair_every``); policy options are only legal at the top level."""
    schedule_opts = {k: v for k, v in options.items() if k not in _POLICY_OPTIONS}
    policy = {k: int(v) for k, v in options.items() if k in _POLICY_OPTIONS}
    if policy and not allow_policy:
        raise FaultSpecError(
            f"fault spec {spec!r}: policy options {sorted(policy)} are only "
            "allowed at the top level, not inside mixed phases"
        )
    return schedule_opts, policy


def _at_value(token: str, spec: str) -> Tuple[float, Optional[int]]:
    """Parse a ``VALUE[@UNIT]`` positional token."""
    value_text, sep, at_text = token.partition("@")
    value = _number(value_text, spec)
    if not sep:
        return value, None
    at = _number(at_text, spec)
    if at != int(at):
        raise FaultSpecError(f"fault spec {spec!r}: unit {at_text!r} must be an integer")
    return value, int(at)


def _parse_string(spec: str, allow_policy: bool) -> Tuple[FaultSchedule, Dict[str, int]]:
    kind, rest = split_spec(spec)
    if kind == "crash_storm":
        if not rest:
            raise FaultSpecError(f"fault spec {spec!r}: crash_storm needs a rate")
        rate = _number(rest[0], spec)
        opts, policy = _split_policy(_options(rest[1:], spec), spec, allow_policy)
        kwargs: Dict[str, Any] = {"rate": rate}
        for key in ("start", "end"):
            if key in opts:
                kwargs[key] = int(opts.pop(key))
        if opts:
            raise FaultSpecError(
                f"fault spec {spec!r}: unknown option(s) {sorted(opts)}"
            )
        return _apply(CrashStorm, kwargs, spec), policy
    if kind == "correlated":
        if not rest:
            raise FaultSpecError(
                f"fault spec {spec!r}: correlated needs fraction@unit"
            )
        fraction, at = _at_value(rest[0], spec)
        if at is None:
            raise FaultSpecError(
                f"fault spec {spec!r}: correlated needs a unit, e.g. correlated:0.3@40"
            )
        opts, policy = _split_policy(_options(rest[1:], spec), spec, allow_policy)
        if opts:
            raise FaultSpecError(
                f"fault spec {spec!r}: unknown option(s) {sorted(opts)}"
            )
        return _apply(CorrelatedCrash, {"fraction": fraction, "at": at}, spec), policy
    if kind == "partition":
        if not rest:
            raise FaultSpecError(
                f"fault spec {spec!r}: partition needs a duration, e.g. partition:8@40"
            )
        duration, at = _at_value(rest[0], spec)
        if duration != int(duration):
            raise FaultSpecError(
                f"fault spec {spec!r}: duration must be an integer number of units"
            )
        opts, policy = _split_policy(_options(rest[1:], spec), spec, allow_policy)
        kwargs = {"duration": int(duration), "at": at if at is not None else 0}
        if "fraction" in opts:
            kwargs["fraction"] = opts.pop("fraction")
        if opts:
            raise FaultSpecError(
                f"fault spec {spec!r}: unknown option(s) {sorted(opts)}"
            )
        return _apply(PartitionSchedule, kwargs, spec), policy
    raise FaultSpecError(
        f"unknown fault kind {kind!r} in spec {spec!r} "
        f"(known kinds: {', '.join(FAULT_KINDS)})"
    )


def _parse_dict(spec: Dict[str, Any], allow_policy: bool) -> Tuple[FaultSchedule, Dict[str, int]]:
    kind = spec.get("kind")
    if kind == "mixed":
        raw_phases = spec.get("phases")
        if not raw_phases:
            raise FaultSpecError(f"mixed fault spec needs non-empty 'phases': {spec!r}")
        phases: List[FaultPhase] = []
        for raw in raw_phases:
            try:
                schedule, _ = _parse_schedule(raw["faults"], allow_policy=False)
                phases.append(
                    FaultPhase(start=int(raw["start"]), end=int(raw["end"]), schedule=schedule)
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise FaultSpecError(f"bad mixed fault phase {raw!r}: {exc}") from exc
        policy = {
            k: int(spec[k]) for k in _POLICY_OPTIONS if k in spec
        }
        if policy and not allow_policy:
            raise FaultSpecError(
                f"fault spec {spec!r}: policy options {sorted(policy)} are only "
                "allowed at the top level, not inside mixed phases"
            )
        return _apply(MixedFaults, {"phases": phases}, spec), policy
    if kind in FAULT_KINDS:
        # Generic form: {"kind": "crash_storm", "rate": 0.05, "r": 2}.
        factories = {
            "crash_storm": CrashStorm,
            "correlated": CorrelatedCrash,
            "partition": PartitionSchedule,
        }
        kwargs = {k: v for k, v in spec.items() if k != "kind"}
        policy = {k: int(kwargs.pop(k)) for k in _POLICY_OPTIONS if k in kwargs}
        if policy and not allow_policy:
            raise FaultSpecError(
                f"fault spec {spec!r}: policy options {sorted(policy)} are only "
                "allowed at the top level, not inside mixed phases"
            )
        return _apply(factories[kind], kwargs, spec), policy
    raise FaultSpecError(
        f"unknown fault kind {kind!r} in spec {spec!r} "
        f"(known kinds: {', '.join(FAULT_KINDS)})"
    )


def _parse_schedule(spec: object, allow_policy: bool) -> Tuple[FaultSchedule, Dict[str, int]]:
    if isinstance(spec, str):
        return _parse_string(spec, allow_policy)
    if isinstance(spec, dict):
        return _parse_dict(spec, allow_policy)
    if isinstance(spec, FaultSchedule):
        return spec, {}
    raise FaultSpecError(
        f"{spec!r} is not a fault spec (string, dict, FaultSchedule or FaultPlan)"
    )


def _parse_faults(spec: object) -> Optional[FaultPlan]:
    if spec is None:
        return None
    if isinstance(spec, FaultPlan):
        return spec
    schedule, policy = _parse_schedule(spec, allow_policy=True)
    kwargs: Dict[str, int] = {}
    if "r" in policy:
        kwargs["replication"] = policy["r"]
    if "repair_every" in policy:
        kwargs["repair_every"] = policy["repair_every"]
    return _apply(FaultPlan, {"schedule": schedule, **kwargs}, spec)


def parse_faults(spec: object) -> Optional[FaultPlan]:
    """Build and validate a :class:`FaultPlan` from any spec form.

    ``None`` passes through (no faults); a ready plan is returned as-is; a
    bare schedule is wrapped with the default policy (``r=1``,
    ``repair_every=1``).  Raises :class:`FaultSpecError` with the offending
    spec on any problem.

    .. deprecated::
        Thin shim over the unified registry; new code should call
        ``repro.util.specs.parse_spec("faults", spec)``.
    """
    from ..util.specs import parse_spec

    return parse_spec("faults", spec)


def _schedule_signature(schedule: FaultSchedule) -> Dict[str, Any]:
    if isinstance(schedule, CrashStorm):
        return {
            "kind": "crash_storm",
            "rate": schedule.rate,
            "start": schedule.start,
            "end": schedule.end,
        }
    if isinstance(schedule, CorrelatedCrash):
        return {"kind": "correlated", "fraction": schedule.fraction, "at": schedule.at}
    if isinstance(schedule, PartitionSchedule):
        return {
            "kind": "partition",
            "duration": schedule.duration,
            "at": schedule.at,
            "fraction": schedule.fraction,
        }
    if isinstance(schedule, MixedFaults):
        return {
            "kind": "mixed",
            "phases": [
                {
                    "start": p.start,
                    "end": p.end,
                    "schedule": _schedule_signature(p.schedule),
                }
                for p in schedule.phases
            ],
        }
    return {
        "kind": "opaque",
        "type": type(schedule).__name__,
        "name": getattr(schedule, "name", type(schedule).__name__),
    }


def faults_signature(plan: Optional[FaultPlan]) -> Optional[Dict[str, Any]]:
    """Canonical, JSON-serialisable structure of a fault plan (``None`` for
    fault-free configs).

    The fault component of the sweep store's cell hash: two plans that
    inject the same faults under the same policy produce equal signatures;
    any semantic change — a rate, a window, the replication factor —
    changes it.  Like :func:`repro.workloads.spec.workload_signature`,
    unknown schedule classes degrade to their display name.
    """
    if plan is None:
        return None
    return {
        "schedule": _schedule_signature(plan.schedule),
        "replication": plan.replication,
        "repair_every": plan.repair_every,
    }


register_spec_kind("faults", _parse_faults, faults_signature)
