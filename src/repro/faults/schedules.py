"""Declarative fault schedules (extension; the paper defers fault handling).

A fault schedule describes *when* faults strike, separately from how the
system responds (replication factor and repair cadence — the policy half of
a :class:`FaultPlan`).  Schedules expose two channels:

* :meth:`~FaultSchedule.timed_events` — deterministic one-shot events
  (a correlated crash burst at unit ``t``, a partition opening at ``t`` and
  healing ``duration`` units later).  The injector schedules these on the
  discrete-event engine (:class:`repro.sim.engine.Simulator`) once, and
  each unit advances the simulated clock to collect what fired.
* :meth:`~FaultSchedule.crash_rate` — the per-peer, per-unit crash
  probability of rate-based schedules (crash storms); the injector turns
  it into an integral crash count by stochastic rounding, mirroring the
  churn models.

:class:`MixedFaults` splices schedules over ``[start, end)`` phases exactly
like :class:`repro.workloads.dynamics.MixedSchedule` splices workloads, so
scenario timelines compose across both axes (a crash storm during a flash
crowd, a partition during the recovery window, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol, Sequence, Tuple, runtime_checkable

from ..workloads.requests import sort_and_check_phases


@dataclass(frozen=True)
class CrashBurst:
    """One-shot event: crash ``fraction`` of the current population now."""

    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction < 1.0:
            raise ValueError("crash fraction must be in (0, 1)")


@dataclass(frozen=True)
class PartitionStart:
    """One-shot event: a contiguous ring arc covering ``fraction`` of the
    peers becomes unreachable for ``duration`` units."""

    fraction: float
    duration: int

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction < 1.0:
            raise ValueError("partition fraction must be in (0, 1)")
        if self.duration < 1:
            raise ValueError("partition duration must be >= 1")


@runtime_checkable
class FaultSchedule(Protocol):
    """What the injector needs from any fault schedule."""

    def timed_events(self) -> List[Tuple[int, object]]:
        """Deterministic ``(unit, event)`` one-shots, any order."""
        ...  # pragma: no cover - protocol

    def crash_rate(self, unit: int) -> float:
        """Per-peer crash probability during ``unit`` (0.0 = no storm)."""
        ...  # pragma: no cover - protocol


class CrashStorm:
    """Fail-stop churn: every unit in ``[start, end)`` each peer crashes
    with probability ``rate`` (expected ``rate * population`` crashes)."""

    def __init__(self, rate: float, start: int = 0, end: int | None = None) -> None:
        if not 0.0 < rate < 1.0:
            raise ValueError("crash rate must be in (0, 1)")
        if start < 0:
            raise ValueError("start must be >= 0")
        if end is not None and end <= start:
            raise ValueError("end must be > start")
        self.rate = rate
        self.start = start
        self.end = end
        self.name = f"crash_storm:{rate:g}"

    def timed_events(self) -> List[Tuple[int, object]]:
        return []

    def crash_rate(self, unit: int) -> float:
        if unit < self.start or (self.end is not None and unit >= self.end):
            return 0.0
        return self.rate


class CorrelatedCrash:
    """A single correlated failure: ``fraction`` of the peers crash
    simultaneously at unit ``at`` (rack loss, a buggy rollout)."""

    def __init__(self, fraction: float, at: int) -> None:
        if at < 0:
            raise ValueError("crash unit must be >= 0")
        self._burst = CrashBurst(fraction)  # validates the fraction
        self.fraction = fraction
        self.at = at
        self.name = f"correlated:{fraction:g}@{at}"

    def timed_events(self) -> List[Tuple[int, object]]:
        return [(self.at, self._burst)]

    def crash_rate(self, unit: int) -> float:
        return 0.0


class PartitionSchedule:
    """A network partition: a contiguous arc of the ring (``fraction`` of
    the peers) is unreachable from unit ``at`` for ``duration`` units, then
    heals.  Partitioned peers keep their nodes and data — requests charged
    to them are dropped, not lost."""

    def __init__(self, duration: int, at: int = 0, fraction: float = 0.25) -> None:
        if at < 0:
            raise ValueError("partition start must be >= 0")
        self._start = PartitionStart(fraction, duration)  # validates both
        self.duration = duration
        self.at = at
        self.fraction = fraction
        self.name = f"partition:{duration}@{at}"

    def timed_events(self) -> List[Tuple[int, object]]:
        return [(self.at, self._start)]

    def crash_rate(self, unit: int) -> float:
        return 0.0


@dataclass(frozen=True)
class FaultPhase:
    """A half-open window ``[start, end)`` during which ``schedule`` is the
    active fault source."""

    start: int
    end: int
    schedule: FaultSchedule

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"bad fault phase window [{self.start}, {self.end})")
        if not isinstance(self.schedule, FaultSchedule):
            raise TypeError(
                f"{self.schedule!r} does not implement FaultSchedule "
                "(needs timed_events() and crash_rate(unit))"
            )


class MixedFaults:
    """Splice fault schedules over phases — the fault-axis twin of
    :class:`repro.workloads.dynamics.MixedSchedule`.

    Sub-schedules see absolute unit indices; their one-shot events are kept
    only when they fall inside the phase window, and their crash rates apply
    only while the phase is active.  Units outside every phase are
    fault-free.
    """

    def __init__(self, phases: Sequence[FaultPhase]) -> None:
        if not phases:
            raise ValueError("MixedFaults needs at least one phase")
        self.phases = sort_and_check_phases(phases)
        self.name = "mixed-faults[" + ",".join(
            getattr(p.schedule, "name", type(p.schedule).__name__) for p in self.phases
        ) + "]"

    def timed_events(self) -> List[Tuple[int, object]]:
        events: List[Tuple[int, object]] = []
        for phase in self.phases:
            events.extend(
                (unit, event)
                for unit, event in phase.schedule.timed_events()
                if phase.start <= unit < phase.end
            )
        return events

    def crash_rate(self, unit: int) -> float:
        for phase in self.phases:
            if phase.start <= unit < phase.end:
                return phase.schedule.crash_rate(unit)
        return 0.0


@dataclass(frozen=True)
class FaultPlan:
    """A full fault axis: when faults strike + how the system responds.

    ``replication`` is the successor-replication factor ``r`` (0 disables
    replication: crashes lose data for good); ``repair_every`` is the
    repair cadence in units — 1 repairs in the same unit as the damage,
    larger values batch repairs and make time-to-repair a real
    distribution.  The runner forces a repair before any registration batch
    touches a damaged tree, so deferred repair never corrupts growth.
    """

    schedule: FaultSchedule
    replication: int = 1
    repair_every: int = 1

    def __post_init__(self) -> None:
        if self.replication < 0:
            raise ValueError("replication factor must be >= 0")
        if self.repair_every < 1:
            raise ValueError("repair_every must be >= 1")
        if not isinstance(self.schedule, FaultSchedule):
            raise TypeError(
                f"{self.schedule!r} does not implement FaultSchedule "
                "(needs timed_events() and crash_rate(unit))"
            )
