"""The fault injector: timed fault events applied to a live system.

One :class:`FaultInjector` accompanies one simulation run.  At construction
it schedules every deterministic one-shot of the fault plan (correlated
crash bursts, partition openings) on a discrete-event
:class:`~repro.sim.engine.Simulator`; each time unit the runner calls
:meth:`FaultInjector.begin_unit`, which advances the simulated clock to
collect the events that fired, draws the rate-based storm crashes, applies
everything to the system (fail-stop crashes via
:func:`repro.dlpt.failures.crash_peer`, partitions by exhausting the
affected peers' capacity budget for the unit), runs the repair policy, and
accounts the availability/durability metrics into the unit's
:class:`~repro.experiments.metrics.UnitStats`.

Fault events are *workload-side* randomness: in recording mode every
applied event is appended to the run's ``repro-trace/1`` trace (as ring
position draws, like churn departures), and in replay mode the injector
re-applies the recorded events verbatim — so a fault trace replayed under
a different balancer, mapping or replication policy drives identical
faults into a different system.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..dlpt.failures import ReplicationManager, crash_peer, repair
from ..dlpt.system import DLPTSystem
from ..sim.engine import Simulator
from .schedules import CrashBurst, FaultPlan, PartitionStart


class _NoSchedule:
    """An empty schedule: the injector only re-applies trace events."""

    name = "replay"

    def timed_events(self) -> List[Tuple[int, object]]:
        return []

    def crash_rate(self, unit: int) -> float:
        return 0.0


#: Policy used when a fault-bearing trace is replayed under a config with
#: no fault axis of its own: the recorded events are applied, the tree is
#: repaired every unit from survivors, and nothing is replicated.
REPLAY_POLICY_PLAN = FaultPlan(schedule=_NoSchedule(), replication=0, repair_every=1)


def _stochastic_round(x: float, rng) -> int:
    """Round ``x`` to an integer with expectation exactly ``x`` (the churn
    models' convention, repeated here so fault rates compose identically)."""
    base = int(x)
    frac = x - base
    return base + (1 if frac > 0 and rng.random() < frac else 0)


class FaultInjector:
    """Applies one fault plan to one system, one time unit at a time.

    Parameters
    ----------
    plan:
        The fault axis: schedule + replication factor + repair cadence.
    system:
        The live :class:`~repro.dlpt.system.DLPTSystem` under test.
    rng:
        The dedicated ``"faults"`` RNG stream — fault draws never perturb
        the workload or churn streams, so a fault-free config simulates
        bit-identically to a build without this subsystem.
    recorder:
        Optional :class:`~repro.workloads.traces.TraceRecorder`; every
        applied event is recorded for replay.
    """

    def __init__(
        self,
        plan: FaultPlan,
        system: DLPTSystem,
        rng,
        recorder=None,
    ) -> None:
        self.plan = plan
        self.system = system
        self.rng = rng
        self.recorder = recorder
        self.replication: Optional[ReplicationManager] = (
            ReplicationManager(system, factor=plan.replication)
            if plan.replication > 0
            else None
        )
        self.sim = Simulator()
        self._emitted: List[object] = []
        for at, event in plan.schedule.timed_events():
            self.sim.schedule_at(
                at,
                lambda event=event: self._emitted.append(event),
                label=type(event).__name__,
            )
        #: Keys destroyed since the last repair pass.
        self._pending_lost: Set[str] = set()
        #: Units of damaging crashes awaiting repair (time-to-repair input).
        self._pending_crash_units: List[int] = []
        self._damaged = False
        #: Active partitions: ``(heal_unit, peer set)``.  Members are
        #: :class:`Peer` objects, not ring ids: MLT renames peers when it
        #: rebalances, and a partition must keep holding a renamed peer.
        self._partitions: List[Tuple[int, Set[object]]] = []

    # -- per-unit driving ---------------------------------------------------

    def begin_unit(self, unit: int, stats, trace_events: Optional[List[list]] = None) -> None:
        """Run the fault step of one time unit: generate (or replay) the
        unit's events, apply them, repair if the cadence is due, and
        enforce active partitions."""
        if trace_events is None:
            records = self._generate(unit)
            if self.recorder is not None:
                for record in records:
                    self.recorder.fault(record)
        else:
            records = trace_events
        self._apply(unit, records, stats)
        self.maybe_repair(unit, stats)
        self._enforce_partitions(unit, stats)

    def before_registrations(self, unit: int, stats) -> None:
        """Force a repair before the tree grows: registering into a crash-
        damaged forest is undefined (a surviving orphan could collide with
        the insertion path), so deferred repair yields to growth."""
        if self._damaged:
            self.maybe_repair(unit, stats, force=True)

    def on_registered(self, key: str) -> None:
        """A key was (re)registered through the runner: refresh its replicas."""
        if self.replication is not None:
            self.replication.replicate_key(key)

    def on_peer_departed(self, peer) -> None:
        """A peer left gracefully (churn): its replica store dies with it.
        ``peer`` is the departed :class:`Peer` object (an O(1) store drop;
        a bare ring id also works but pays a scan).  Partition membership
        needs no cleanup — departed peers fail the liveness check in
        :meth:`_enforce_partitions`."""
        if self.replication is not None:
            self.replication.on_peer_removed(peer)

    # -- event generation ---------------------------------------------------

    def _generate(self, unit: int) -> List[list]:
        """This unit's concrete fault events as JSON-able trace records."""
        self.sim.run(until=unit)
        events, self._emitted = self._emitted, []
        records: List[list] = []
        n = len(self.system.ring)
        drawn = 0

        def crash_draws(count: int) -> None:
            nonlocal drawn
            for _ in range(count):
                if drawn >= n - 1:  # never empty the ring
                    return
                records.append(["crash", self.rng.randrange(max(n - drawn, 1))])
                drawn += 1

        for event in events:
            if isinstance(event, CrashBurst):
                crash_draws(max(1, round(event.fraction * n)))
            elif isinstance(event, PartitionStart):
                count = min(max(1, round(event.fraction * n)), n)
                records.append(
                    ["partition", self.rng.randrange(n), count, event.duration]
                )
        crash_draws(_stochastic_round(self.plan.schedule.crash_rate(unit) * n, self.rng))
        return records

    # -- event application --------------------------------------------------

    def _apply(self, unit: int, records: List[list], stats) -> None:
        for record in records:
            kind = record[0]
            if kind == "crash":
                self._apply_crash(int(record[1]), unit, stats)
            elif kind == "partition":
                self._apply_partition(
                    int(record[1]), int(record[2]), int(record[3]), unit
                )
            else:
                raise ValueError(f"unknown fault event record {record!r}")

    def _apply_crash(self, index: int, unit: int, stats) -> None:
        ring = self.system.ring
        if len(ring) <= 1:
            return  # the overlay is undefined without peers
        victim = ring.id_at(index % len(ring))
        victim_peer = ring.peer(victim)
        report = crash_peer(self.system, victim)
        if self.replication is not None:
            self.replication.on_peer_removed(victim_peer)
        stats.crashes += 1
        stats.keys_lost += len(report.lost_keys)
        self._pending_lost |= report.lost_keys
        if report.lost_nodes:
            self._damaged = True
            self._pending_crash_units.append(unit)

    def _apply_partition(self, start: int, count: int, duration: int, unit: int) -> None:
        ring = self.system.ring
        n = len(ring)
        peers = {ring.peer(ring.id_at((start + i) % n)) for i in range(min(count, n))}
        self._partitions.append((unit + duration, peers))

    # -- repair policy ------------------------------------------------------

    def maybe_repair(self, unit: int, stats, force: bool = False) -> None:
        """Repair the tree when damage is pending and the cadence is due
        (every ``repair_every`` units), or unconditionally when forced."""
        if not self._damaged:
            return
        if not force and (unit + 1) % self.plan.repair_every != 0:
            return
        report = repair(
            self.system, self.replication, lost_keys=frozenset(self._pending_lost)
        )
        stats.keys_recovered += report.recovered_from_replicas
        stats.keys_unrecoverable += len(report.unrecoverable_keys)
        stats.repair_cost += report.reinserted_keys
        for crash_unit in self._pending_crash_units:
            delay = unit - crash_unit
            stats.ttr_histogram[delay] = stats.ttr_histogram.get(delay, 0) + 1
        self._pending_lost.clear()
        self._pending_crash_units.clear()
        self._damaged = False

    # -- partitions ---------------------------------------------------------

    def _enforce_partitions(self, unit: int, stats) -> None:
        """Heal expired partitions and exhaust the capacity budget of every
        still-partitioned live peer, so every request charged to it this
        unit is dropped — unreachable, not destroyed."""
        self._partitions = [(heal, peers) for heal, peers in self._partitions if heal > unit]
        ring = self.system.ring
        saturated: Set[object] = set()
        for _, peers in self._partitions:
            for peer in peers:
                # Live = this very object still sits on the ring under its
                # (possibly rebalanced) current id; crashed and departed
                # peers fail the identity check.
                if peer not in saturated and peer.id in ring and ring.peer(peer.id) is peer:
                    saturated.add(peer)
                    peer.used = peer.capacity
        stats.partitioned += len(saturated)
