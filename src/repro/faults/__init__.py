"""Fault injection: declarative fault schedules, policies, and the injector.

The paper's protocol handles *graceful* departure only and its conclusion
defers fault handling to future tuning on a real grid.  This package
promotes failures to a first-class experiment axis on top of the crash /
replication / repair primitives of :mod:`repro.dlpt.failures`:

* :mod:`repro.faults.schedules` — declarative fault schedules (crash
  storms, correlated crash bursts, network partitions, phase-spliced
  mixes) emitting timed events through the discrete-event engine;
* :mod:`repro.faults.spec` — compact spec strings/dicts
  (``"crash_storm:0.02:r=2"``) with parse-time validation and the
  canonical ``faults_signature`` the sweep store hashes;
* :mod:`repro.faults.injector` — the :class:`FaultInjector` the
  experiment runner drives once per time unit: it applies crash and
  partition events, runs the repair policy, and accounts availability /
  durability metrics.
"""

from .injector import FaultInjector, REPLAY_POLICY_PLAN
from .schedules import (
    CorrelatedCrash,
    CrashBurst,
    CrashStorm,
    FaultPhase,
    FaultPlan,
    FaultSchedule,
    MixedFaults,
    PartitionSchedule,
    PartitionStart,
)
from .spec import FAULT_KINDS, FaultSpecError, faults_signature, parse_faults

__all__ = [
    "CorrelatedCrash",
    "CrashBurst",
    "CrashStorm",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPhase",
    "FaultPlan",
    "FaultSchedule",
    "FaultSpecError",
    "MixedFaults",
    "PartitionSchedule",
    "PartitionStart",
    "REPLAY_POLICY_PLAN",
    "faults_signature",
    "parse_faults",
]
