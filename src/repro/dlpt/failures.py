"""Crash failures, replication and tree repair (extension).

The paper's protocol handles *graceful* membership change: a leaving peer's
nodes migrate to its successor.  Real grids also crash.  The paper's
conclusion defers fault handling ("study its behavior on a real grid …
tune its parameters"), and the DLPT line of work addresses it in companion
papers with replication; this module implements the natural design on top
of our substrate so the overlay is usable under fail-stop faults:

* :class:`ReplicationManager` keeps, for every tree node, a copy of its
  registration data on the ``r`` ring successors of its host (successor
  replication, the classic DHT scheme — the ring is already maintained).
* :func:`crash_peer` removes a peer *without* migration: its hosted nodes
  vanish from the tree (fail-stop data loss).
* :func:`repair` rebuilds the tree from the surviving replicas: every key
  whose node (or whose ancestors) died is re-registered through the normal
  insertion path, recreating structural nodes and the mapping.  Repair cost
  (re-registrations performed) is returned so experiments can quantify the
  maintenance the paper calls "costly".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from ..peers.peer import Peer
from .system import DLPTSystem


@dataclass
class ReplicaRecord:
    """Replicated state of one filled tree node."""

    key: str
    data: Set[object] = field(default_factory=set)


class ReplicationManager:
    """Successor replication of registration data.

    ``factor`` is the number of distinct successor peers holding a copy of
    each key's data (in addition to the primary host).  Replicas are plain
    peer-addressed storage — they do not participate in routing — so the
    overlay's behaviour is unchanged until a crash makes a replica the only
    surviving copy.
    """

    def __init__(self, system: DLPTSystem, factor: int = 1) -> None:
        if factor < 1:
            raise ValueError("replication factor must be >= 1")
        self.system = system
        self.factor = factor
        #: peer -> {key -> ReplicaRecord} held *for other peers*.  Keyed by
        #: the :class:`Peer` object (identity), not its ring id: MLT
        #: rebalances by *renaming* peers (``Ring.reposition``), and a
        #: replica must survive its holder moving along the ring.
        self.stores: Dict[Peer, Dict[str, ReplicaRecord]] = {}
        self.replica_writes = 0

    # -- replica placement -------------------------------------------------

    def replica_peers(self, key: str) -> list[Peer]:
        """The ``factor`` distinct peers after the key's host on the ring."""
        ring = self.system.ring
        host = self.system.mapping.host_of(key)
        out: list[Peer] = []
        current = host.id
        for _ in range(min(self.factor, max(len(ring) - 1, 0))):
            peer = ring.successor(current)
            if peer is host or any(p is peer for p in out):
                break
            out.append(peer)
            current = peer.id
        return out

    def replicate_key(self, key: str) -> None:
        """(Re)write the replicas of ``key``'s registration data."""
        node = self.system.tree.node(key)
        if node is None or not node.data:
            return
        for peer in self.replica_peers(key):
            store = self.stores.setdefault(peer, {})
            store[key] = ReplicaRecord(key=key, data=set(node.data))
            self.replica_writes += 1

    def replicate_all(self) -> int:
        """Refresh every filled node's replicas (periodic anti-entropy);
        returns the number of replica writes performed."""
        before = self.replica_writes
        for key in self.system.tree.keys():
            self.replicate_key(key)
        return self.replica_writes - before

    # -- membership maintenance ----------------------------------------------

    def on_peer_removed(self, peer: "Peer | str") -> None:
        """Drop the replica store of a departed peer (its copies die with
        it; surviving replicas elsewhere are untouched).  Accepts the peer
        object or its last ring id."""
        if isinstance(peer, str):
            peer = next((p for p in self.stores if p.id == peer), None)
            if peer is None:
                return
        self.stores.pop(peer, None)

    def surviving_records(self) -> Dict[str, ReplicaRecord]:
        """Union of all replicas currently held by *live* peers (peers are
        compared by identity, so a repositioned holder stays live)."""
        out: Dict[str, ReplicaRecord] = {}
        live = set(self.system.ring)
        for peer, store in self.stores.items():
            if peer not in live:
                continue
            for key, rec in store.items():
                if key in out:
                    out[key].data |= rec.data
                else:
                    out[key] = ReplicaRecord(key=key, data=set(rec.data))
        return out


@dataclass(frozen=True)
class CrashReport:
    """What a fail-stop crash destroyed."""

    peer_id: str
    lost_nodes: frozenset[str]
    lost_keys: frozenset[str]


def crash_peer(system: DLPTSystem, peer_id: str) -> CrashReport:
    """Fail-stop removal: the peer leaves the ring and its hosted nodes are
    destroyed (no migration).  The tree is surgically detached: references
    to the dead nodes are removed from surviving fathers/children so the
    remaining forest stays internally consistent for repair."""
    peer = system.ring.peer(peer_id)
    if len(system.ring) == 1:
        raise RuntimeError("cannot crash the last peer")
    lost = set(peer.nodes)
    lost_keys = {lbl for lbl in lost if system.tree.node(lbl).data}

    tree = system.tree
    # Detach lost nodes from survivors.
    for lbl in lost:
        node = tree.node(lbl)
        parent = node.parent
        if parent is not None and parent.label not in lost:
            parent.remove_child(node)
        for child in list(node.children.values()):
            if child.label not in lost:
                node.remove_child(child)  # orphan: survives as a root
    # Remove lost nodes from the index (bypassing normal contraction —
    # their state is gone, not restructured).  The direct index surgery
    # bypasses ``_drop_node``, so the structural version counter that
    # guards the discovery router's caches must be advanced by hand.
    for lbl in lost:
        node = tree._by_label.pop(lbl)
        tree.version += 1
        if tree.on_remove is not None:
            tree.on_remove(node)
    tree.filled_count -= len(lost_keys)  # same surgery applies to the counter
    if tree.root is not None and tree.root.label in lost:
        tree.root = None
    system.ring.leave(peer_id)
    return CrashReport(
        peer_id=peer_id, lost_nodes=frozenset(lost), lost_keys=frozenset(lost_keys)
    )


@dataclass(frozen=True)
class RepairReport:
    """Outcome of a repair pass."""

    reinserted_keys: int
    recovered_from_replicas: int
    unrecoverable_keys: frozenset[str]
    orphans_reattached: int


def repair(
    system: DLPTSystem,
    replication: ReplicationManager | None = None,
    lost_keys: frozenset[str] = frozenset(),
    construction: str | None = None,
) -> RepairReport:
    """Rebuild a consistent PGCP tree after crashes.

    Strategy: collect the surviving *filled* keys (from orphaned fragments)
    plus every lost key recoverable from replicas, reset the tree, and
    re-register everything through the normal Algorithm 3 path.  This is
    the simple, provably correct repair — O(|N|) insertions — and its cost
    is exactly what the paper means by trie maintenance being expensive;
    the fault-injection bench measures it.

    ``construction`` selects how the re-registrations are applied:
    ``"bulk"`` routes the whole damaged key set through
    :meth:`DLPTSystem.register_pairs` (one sorted insert walk plus one
    deferred placement pass), ``"seed"`` re-registers per datum (the
    pre-batch loop), and ``None`` (default) picks ``"bulk"`` exactly when
    the mapping supports deferred placement — so the frozen seed reference
    keeps timing the sequential rebuild while live systems repair in one
    batch.  Both paths produce identical trees and mappings
    (property-tested).
    """
    tree = system.tree
    # Survey survivors: every currently indexed filled node.
    survivors: Dict[str, set] = {
        lbl: set(node.data) for lbl, node in tree._by_label.items() if node.data
    }
    orphans = sum(
        1
        for node in tree._by_label.values()
        if node.parent is None and (tree.root is None or node is not tree.root)
    )

    recovered: Dict[str, set] = {}
    if replication is not None:
        surviving = replication.surviving_records()
        for key in lost_keys:
            rec = surviving.get(key)
            if rec is not None:
                recovered[key] = set(rec.data)
    unrecoverable = frozenset(
        k for k in lost_keys if k not in recovered and k not in survivors
    )

    # Rebuild from scratch through the public path (hooks keep the mapping
    # and node index in sync).
    old_index = list(tree._by_label.values())
    for node in old_index:
        if tree.on_remove is not None:
            tree.on_remove(node)
    tree._by_label.clear()
    tree.root = None
    tree.version += 1  # index surgery bypassed _drop_node (router caches)
    tree.filled_count = 0  # rebuilt below through the counting insert paths

    pairs: list[tuple[str, object]] = []
    for key, data in survivors.items():
        for datum in data or {key}:
            pairs.append((key, datum))
    for key, data in recovered.items():
        for datum in data or {key}:
            pairs.append((key, datum))
    if construction is None:
        construction = (
            "bulk" if getattr(system.mapping, "place_batch", None) is not None else "seed"
        )
    if construction == "bulk":
        if pairs:
            system.register_pairs(pairs)
    elif construction == "seed":
        for key, datum in pairs:
            system.register(key, datum)
    else:
        raise ValueError(f"unknown construction implementation {construction!r}")
    reinserted = len(pairs)
    if replication is not None:
        replication.replicate_all()
    return RepairReport(
        reinserted_keys=reinserted,
        recovered_from_replicas=len(recovered),
        unrecoverable_keys=unrecoverable,
        orphans_reattached=orphans,
    )
