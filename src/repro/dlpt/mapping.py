"""Node→peer mapping strategies.

The paper's first contribution is a *self-contained* lexicographic mapping:
"The mapping scheme ensures that the peer P chosen to run a given node n
always satisfies the condition that P is the lowest peer id higher than n …
if n > P_max, the peer running n is P_min" (Section 3).  Because consecutive
tree nodes share long prefixes, they tend to land on the same peer, which is
what Figure 9 measures as the communication gain.

The original DLPT [5] instead mapped nodes through a DHT — effectively a
*random* mapping that breaks locality.  That baseline lives in
:mod:`repro.baselines.dlpt_dht` and implements the same interface so the
experiment runner can swap mappings.
"""

from __future__ import annotations

from typing import Dict, Iterable, KeysView, Protocol

from ..core.keyspace import in_interval_open_closed
from ..peers.peer import Peer, migrate_labels
from ..peers.ring import Ring
from ..util.sortedlist import SortedList


class Mapping(Protocol):
    """Strategy interface: owns the host assignment of every tree node."""

    def host_of(self, label: str) -> Peer:  # pragma: no cover - protocol
        ...

    def on_node_created(self, label: str) -> None: ...

    def on_node_removed(self, label: str) -> None: ...

    def on_peer_joined(self, peer: Peer) -> int:
        """Migrate nodes to the newly joined peer; return migration count."""
        ...

    def on_peer_leaving(self, peer: Peer) -> int:
        """Migrate nodes off ``peer`` (still on the ring); return count."""
        ...


class LexicographicMapping:
    """The paper's self-contained mapping over the peer ring.

    Maintains ``host[label]`` for every tree node plus each peer's ``nodes``
    set, and migrates exactly the affected interval on membership changes:

    * join of ``P``: labels in the circular interval ``(pred_P, P]`` move
      from ``succ_P`` to ``P`` (Algorithm 2's ν split);
    * leave of ``P``: all of ``P``'s labels move to ``succ_P``;
    * reposition of ``P`` (MLT): labels between the old and new identifier
      move between ``P`` and ``succ_P``.

    A sorted :attr:`label_index` of every mapped label makes each interval
    two bisects plus a slice copy — O(log N + k) for k moved labels — where
    the seed implementation scanned the successor's whole node set.  Moves
    themselves are batched (set/dict bulk updates) instead of per-label
    Python loops, which is what lets churn storms on 10⁴-peer rings run at
    C speed.  :class:`repro.dlpt.system.DLPTSystem` aliases its entry-node
    index to :attr:`label_index`, so the index is maintained once, not twice.
    """

    #: MLT can slide peers along this mapping's ring (see :meth:`reposition`).
    supports_reposition = True

    def __init__(self, ring: Ring) -> None:
        self.ring = ring
        self.host: Dict[str, Peer] = {}
        #: All mapped labels in lexicographic order — the migration index.
        self.label_index: SortedList[str] = SortedList()
        self.migrations = 0  # lifetime node-migration counter (LB cost metric)
        #: Host-assignment version counter: bumped whenever any label's host
        #: may have changed.  The discovery router's per-node host/hop cache
        #: is valid exactly while this number holds still.
        self.version = 0

    # -- queries -----------------------------------------------------------

    def host_of(self, label: str) -> Peer:
        return self.host[label]

    def labels(self) -> KeysView[str]:
        """Read-only view of every mapped label (no copy; do not mutate)."""
        return self.host.keys()

    # -- tree change hooks -------------------------------------------------

    def on_node_created(self, label: str) -> None:
        peer = self.ring.successor_of_key(label)
        self.host[label] = peer
        peer.host_node(label)
        self.label_index.add(label)
        self.version += 1

    def on_node_removed(self, label: str) -> None:
        peer = self.host.pop(label)
        peer.drop_node(label)
        self.label_index.remove(label)
        self.version += 1

    def place_batch(self, labels: Iterable[str]) -> None:
        """Place many freshly created labels in one deferred pass — the bulk
        twin of per-node :meth:`on_node_created` hook firings.

        Per-node placement pays a successor bisect plus an O(N) sorted
        insert for every created label.  Here the batch is sorted once and
        grouped into *runs* sharing a host: the ceiling peer of a label
        hosts every following label up to its identifier (there is no peer
        id in between), so one bisect covers a whole run of consecutive
        labels.  Labels above ``P_max`` wrap to ``P_min`` (the paper's
        mapping rule), which in sorted order is always the final run.  The
        index merge is a single :meth:`SortedList.update` and the version
        bumps once.  Final state is identical to per-node placement
        (property-tested); labels must be new (unmapped) — a duplicate
        fails the atomic index merge.
        """
        batch = sorted(labels)
        if not batch:
            return
        ring = self.ring
        host = self.host
        n = len(batch)
        i = 0
        while i < n:
            label = batch[i]
            peer = ring.successor_of_key(label)
            pid = peer.id
            j = i + 1
            if pid >= label:
                # Run of labels in (label, pid] — all hosted by ``peer``.
                while j < n and batch[j] <= pid:
                    j += 1
            else:
                # Wrapped: ``label`` > P_max, so is every later label.
                j = n
            run = batch[i:j]
            peer.nodes.update(run)
            host.update(dict.fromkeys(run, peer))
            i = j
        self.label_index.update(batch)
        self.version += 1

    # -- membership change hooks ---------------------------------------------

    def on_peer_joined(self, peer: Peer) -> int:
        """``peer`` is already on the ring; pull its interval from its
        successor (the peer that hosted the interval before the join)."""
        if len(self.ring) <= 1:
            return 0
        succ = self.ring.successor(peer.id)
        pred = self.ring.predecessor(peer.id)
        # Every label in (pred, P] was hosted by succ (mapping invariant),
        # so the index range IS the migrating set — no per-label filtering.
        moving = self.label_index.range_open_closed(pred.id, peer.id)
        return self._move_batch(moving, succ, peer)

    def on_peer_leaving(self, peer: Peer) -> int:
        """``peer`` is still on the ring; hand all its nodes to its
        successor before the caller removes it."""
        if len(self.ring) <= 1:
            if peer.nodes:
                raise RuntimeError("cannot drain the last peer while nodes exist")
            return 0
        succ = self.ring.successor(peer.id)
        return self._move_batch(list(peer.nodes), peer, succ)

    def reposition(self, peer: Peer, new_id: str) -> int:
        """MLT's ring move: change ``peer``'s identifier and migrate the
        interval between the old and new position to/from its successor.

        All interval arithmetic is circular, so the move works on the
        wrapped arc too (e.g. the minimum peer — host of the root node ε —
        sliding across the key-space origin).
        """
        old_id = peer.id
        if new_id == old_id:
            return 0
        succ = self.ring.successor(old_id)
        self.ring.reposition(peer, new_id)
        if in_interval_open_closed(new_id, old_id, succ.id):
            # Peer moved towards its successor: absorb (old_id, new_id].
            moving = self.label_index.range_open_closed(old_id, new_id)
            return self._move_batch(moving, succ, peer)
        # Peer moved towards its predecessor: shed (new_id, old_id].
        moving = self.label_index.range_open_closed(new_id, old_id)
        return self._move_batch(moving, peer, succ)

    # -- internals ----------------------------------------------------------

    def _move_batch(self, labels: Iterable[str], src: Peer, dst: Peer) -> int:
        """Migrate ``labels`` from ``src`` to ``dst`` with bulk set/dict
        operations; returns (and counts) the number of migrations."""
        n = migrate_labels(labels, src, dst, self.host)
        self.migrations += n
        self.version += 1
        return n

    # -- invariants -----------------------------------------------------------

    def check_invariants(self) -> None:
        """Every node is hosted by the ceiling peer; peer node-sets and the
        label index agree with the host map (property-tested under churn +
        MLT)."""
        for label, peer in self.host.items():
            expected = self.ring.successor_of_key(label)
            assert peer is expected, (
                f"node {label!r} hosted by {peer.id!r}, mapping rule "
                f"demands {expected.id!r}"
            )
            assert label in peer.nodes, f"peer {peer.id!r} missing node {label!r}"
        counted = sum(len(p.nodes) for p in self.ring)
        assert counted == len(self.host), (
            f"peer node-sets hold {counted} labels, host index {len(self.host)}"
        )
        assert self.label_index.as_list() == sorted(self.host), (
            "label index out of sync with the host map"
        )
