"""The DLPT overlay: mapping, routing, macro system, async protocol, facade."""

from .failures import CrashReport, RepairReport, ReplicationManager, crash_peer, repair
from .mapping import LexicographicMapping
from .protocol import ProtocolEngine
from .routing import RequestOutcome, RoutePath, route_path
from .service import DiscoveryService, ServiceRecord
from .system import DLPTSystem

__all__ = [
    "DLPTSystem", "DiscoveryService", "ServiceRecord",
    "LexicographicMapping", "ProtocolEngine",
    "ReplicationManager", "crash_peer", "repair", "CrashReport", "RepairReport",
    "RoutePath", "RequestOutcome", "route_path",
]
