"""DiscoveryService — the public facade of the DLPT overlay.

This is the API a grid middleware would program against: register services
under string keys (optionally with multiple attributes), then discover them
by exact name, by partial-string completion, by lexicographic range, or by a
conjunction of attribute constraints — the search modes the paper credits
trie overlays with (Section 1).

Exact discovery goes through the full routed/capacity-accounted path of
:class:`~repro.dlpt.system.DLPTSystem` (what the figures measure); the
set-returning searches (completion / range / multi-attribute) are resolved
on the logical tree and also report the logical hops a routed resolution
would cost (entry → subtree root + subtree traversal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..core.queries import (
    ExactQuery,
    MultiAttributeQuery,
    PrefixQuery,
    RangeQuery,
    SingleAttributeQuery,
    attribute_key,
)
from .routing import RequestOutcome, route_up_only, subtree_root_for_prefix
from .system import DLPTSystem


@dataclass(frozen=True)
class ServiceRecord:
    """One registered service: a primary key plus optional attributes."""

    name: str
    attributes: Mapping[str, str] = field(default_factory=dict)


class DiscoveryService:
    """High-level register/discover API over a :class:`DLPTSystem`."""

    def __init__(self, system: DLPTSystem) -> None:
        self.system = system
        self._records: Dict[str, ServiceRecord] = {}

    # -- registration ------------------------------------------------------

    def register(self, name: str, attributes: Optional[Mapping[str, str]] = None) -> ServiceRecord:
        """Register a service.  The primary name becomes a tree key; each
        attribute is additionally registered under ``attr=value`` so that
        multi-attribute queries can be answered by intersection."""
        record = ServiceRecord(name=name, attributes=dict(attributes or {}))
        self.system.register(name, datum=name)
        for attr, value in record.attributes.items():
            self.system.register(attribute_key(attr, value), datum=name)
        self._records[name] = record
        return record

    def unregister(self, name: str) -> bool:
        record = self._records.pop(name, None)
        if record is None:
            return False
        self.system.unregister(name, datum=name)
        for attr, value in record.attributes.items():
            self.system.unregister(attribute_key(attr, value), datum=name)
        return True

    def record(self, name: str) -> Optional[ServiceRecord]:
        return self._records.get(name)

    def __len__(self) -> int:
        return len(self._records)

    # -- discovery ----------------------------------------------------------

    def discover(self, name: str, rng=None, entry_label: Optional[str] = None) -> RequestOutcome:
        """Exact discovery through the routed, capacity-accounted path."""
        return self.system.discover(name, entry_label=entry_label, rng=rng)

    def complete(self, partial: str) -> list[str]:
        """All registered primary names extending ``partial`` (automatic
        completion of partial search strings)."""
        return [
            k for k in self.system.tree.complete(partial) if k in self._records
        ]

    def range_search(self, lo: str, hi: str) -> list[str]:
        """Registered primary names within the lexicographic range."""
        return [
            k for k in self.system.tree.range_query(lo, hi) if k in self._records
        ]

    def search(self, query: SingleAttributeQuery) -> list[str]:
        """Evaluate a single query object against primary names."""
        if isinstance(query, ExactQuery):
            node = self.system.tree.lookup(query.key)
            return [query.key] if node is not None and node.data and query.key in self._records else []
        if isinstance(query, PrefixQuery):
            return self.complete(query.prefix)
        if isinstance(query, RangeQuery):
            return self.range_search(query.lo, query.hi)
        raise TypeError(f"unsupported query type {type(query)!r}")

    def multi_attribute_search(self, query: MultiAttributeQuery) -> list[str]:
        """Conjunction over attributes: intersect per-attribute matches.

        Each clause is evaluated in its ``attr=value`` key band; the data
        stored there are primary service names, so the intersection of the
        per-clause result sets is exactly the conjunctive answer.
        """
        result: Optional[set[str]] = None
        tree = self.system.tree
        for attr, sub in query.attribute_queries().items():
            names: set[str] = set()
            if isinstance(sub, ExactQuery):
                node = tree.lookup(sub.key)
                if node is not None:
                    names.update(d for d in node.data if isinstance(d, str))
            elif isinstance(sub, PrefixQuery):
                for key in tree.complete(sub.prefix):
                    names.update(d for d in tree.lookup(key).data if isinstance(d, str))
            elif isinstance(sub, RangeQuery):
                for key in tree.range_query(sub.lo, sub.hi):
                    names.update(d for d in tree.lookup(key).data if isinstance(d, str))
            result = names if result is None else (result & names)
            if not result:
                return []
        return sorted(result or ())

    # -- cost estimation ----------------------------------------------------

    def completion_route_cost(self, partial: str, entry_label: str) -> int:
        """Logical hops a routed completion would take: climb from the
        entry node to the subtree root covering ``partial``, then fan out
        over that subtree (the trie parallelises the fan-out; we count the
        sequential climb plus the subtree edge count)."""
        up = route_up_only(self.system.tree, entry_label, partial)
        root = subtree_root_for_prefix(self.system.tree, partial)
        if root is None:
            return len(up) - 1
        subtree_edges = self._count_edges(root)
        return (len(up) - 1) + subtree_edges

    def _count_edges(self, node) -> int:
        total = 0
        stack = [node]
        while stack:
            n = stack.pop()
            total += len(n.children)
            stack.extend(n.children.values())
        return total
