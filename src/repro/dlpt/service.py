"""DiscoveryService — the public facade of the DLPT overlay.

This is the API a grid middleware would program against: register services
under string keys (optionally with multiple attributes), then discover them
by exact name, by partial-string completion, by lexicographic range, or by a
conjunction of attribute constraints — the search modes the paper credits
trie overlays with (Section 1).

Exact discovery goes through the full routed/capacity-accounted path of
:class:`~repro.dlpt.system.DLPTSystem` (what the figures measure); the
set-returning searches (completion / range / multi-attribute) ride the
same routed path via :meth:`DLPTSystem.search` — climb to the scan root,
fan out over the scan subtree, charge every scanned node's host — and
:meth:`DiscoveryService.execute` exposes the full
:class:`~repro.dlpt.routing.QueryOutcome` (hop counts, scan size,
capacity verdict) for callers that need more than the name list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..core.queries import (
    ExactQuery,
    MultiAttributeQuery,
    PrefixQuery,
    RangeQuery,
    SingleAttributeQuery,
    attribute_key,
)
from .routing import (
    QueryOutcome,
    RequestOutcome,
    route_up_only,
    subtree_root_for_prefix,
)
from .system import DLPTSystem


@dataclass(frozen=True)
class ServiceRecord:
    """One registered service: a primary key plus optional attributes."""

    name: str
    attributes: Mapping[str, str] = field(default_factory=dict)


class DiscoveryService:
    """High-level register/discover API over a :class:`DLPTSystem`."""

    def __init__(self, system: DLPTSystem) -> None:
        self.system = system
        self._records: Dict[str, ServiceRecord] = {}

    # -- registration ------------------------------------------------------

    def register(self, name: str, attributes: Optional[Mapping[str, str]] = None) -> ServiceRecord:
        """Register a service.  The primary name becomes a tree key; each
        attribute is additionally registered under ``attr=value`` so that
        multi-attribute queries can be answered by intersection."""
        record = ServiceRecord(name=name, attributes=dict(attributes or {}))
        self.system.register(name, datum=name)
        for attr, value in record.attributes.items():
            self.system.register(attribute_key(attr, value), datum=name)
        self._records[name] = record
        return record

    def unregister(self, name: str) -> bool:
        record = self._records.pop(name, None)
        if record is None:
            return False
        self.system.unregister(name, datum=name)
        for attr, value in record.attributes.items():
            self.system.unregister(attribute_key(attr, value), datum=name)
        return True

    def record(self, name: str) -> Optional[ServiceRecord]:
        return self._records.get(name)

    def __len__(self) -> int:
        return len(self._records)

    # -- discovery ----------------------------------------------------------

    def discover(self, name: str, rng=None, entry_label: Optional[str] = None) -> RequestOutcome:
        """Exact discovery through the routed, capacity-accounted path."""
        return self.system.discover(name, entry_label=entry_label, rng=rng)

    def execute(
        self,
        query,
        entry_label: Optional[str] = None,
        rng=None,
    ) -> QueryOutcome:
        """Run any query (object or spec) through the routed,
        capacity-accounted path and return the full outcome — result set,
        hop counts, scan size and the capacity verdict."""
        return self.system.search(query, entry_label=entry_label, rng=rng)

    def complete(
        self, partial: str, entry_label: Optional[str] = None, rng=None
    ) -> list[str]:
        """All registered primary names extending ``partial`` (automatic
        completion of partial search strings), served by the routed scan."""
        outcome = self.execute(PrefixQuery(partial), entry_label, rng)
        return [k for k in outcome.results if k in self._records]

    def range_search(
        self, lo: str, hi: str, entry_label: Optional[str] = None, rng=None
    ) -> list[str]:
        """Registered primary names within the lexicographic range."""
        outcome = self.execute(RangeQuery(lo, hi), entry_label, rng)
        return [k for k in outcome.results if k in self._records]

    def search(
        self,
        query: SingleAttributeQuery,
        entry_label: Optional[str] = None,
        rng=None,
    ) -> list[str]:
        """Evaluate a single query object against primary names."""
        if isinstance(query, (ExactQuery, PrefixQuery, RangeQuery)):
            outcome = self.execute(query, entry_label, rng)
            return [k for k in outcome.results if k in self._records]
        raise TypeError(f"unsupported query type {type(query)!r}")

    def multi_attribute_search(
        self,
        query: MultiAttributeQuery,
        entry_label: Optional[str] = None,
        rng=None,
    ) -> list[str]:
        """Conjunction over attributes: intersect per-attribute matches.

        Each clause is evaluated as a routed scan in its ``attr=value`` key
        band; the data stored there are primary service names, so the
        intersection of the per-clause result sets — what
        :meth:`DLPTSystem.search` returns for a multi-attribute query — is
        exactly the conjunctive answer.
        """
        outcome = self.execute(query, entry_label, rng)
        return [k for k in outcome.results if k in self._records]

    # -- cost estimation ----------------------------------------------------

    def completion_route_cost(self, partial: str, entry_label: str) -> int:
        """Logical hops a routed completion would take: climb from the
        entry node to the subtree root covering ``partial``, then fan out
        over that subtree (the trie parallelises the fan-out; we count the
        sequential climb plus the subtree edge count)."""
        up = route_up_only(self.system.tree, entry_label, partial)
        root = subtree_root_for_prefix(self.system.tree, partial)
        if root is None:
            return len(up) - 1
        subtree_edges = self._count_edges(root)
        return (len(up) - 1) + subtree_edges

    def _count_edges(self, node) -> int:
        total = 0
        stack = [node]
        while stack:
            n = stack.pop()
            total += len(n.children)
            stack.extend(n.children.values())
        return total
