"""The asynchronous DLPT protocol engine (Algorithms 1–3 over messages).

This is the *message-level* realisation of the protocols whose net effect
the macro model (:class:`repro.dlpt.system.DLPTSystem`) applies atomically.
Peers are endpoints on a simulated network; logical nodes live inside peers
as :class:`NodeState` records with father/children *labels* (not object
references — everything crosses the wire by identifier, as in the paper).

Fidelity notes (divergences from the pseudo-code are deliberate and small):

* Algorithm 2 line 2.03 forwards ``NewPredecessor`` while ``Q < P``; taken
  literally this loops forever when the joiner's id exceeds ``P_max`` (every
  peer satisfies ``Q < P``).  We use the circular-interval test
  ``P ∈ (pred_Q, Q]`` instead, which reduces to the paper's condition on the
  non-wrapped arc and terminates on the wrapped one.
* Line 3.37 hands a new node to the host of the current (tree-wise closest)
  node; when a peer with an identifier between that node and the new label
  exists, the mapping rule points elsewhere, so ``Host`` messages forward
  along ring successors until the rule ``host = lowest peer >= label`` holds.
* Node-addressed messages resolve the destination peer through a location
  table updated on node installs/migrations, modelling the node-to-node
  addressing the pseudo-code assumes.  A message that races with a node
  migration is re-resolved once on arrival.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.ids import common_prefix_len, gcp
from ..core.keyspace import in_interval_open_closed
from ..sim.engine import Simulator
from ..sim.network import Envelope, Network
from . import messages as m


@dataclass
class NodeState:
    """A logical node as stored on its hosting peer.

    The descent steps of Algorithms 1 and 3 are served from a sorted
    snapshot of the children (two bisects) instead of scanning the child
    set per message.  The snapshot rebuilds lazily whenever the child
    count changed; the one equal-size mutation (``UpdateChild`` swapping a
    child label) goes through :meth:`replace_child`, which dirties it
    explicitly.
    """

    label: str
    father: Optional[str]
    children: set[str] = field(default_factory=set)
    data: set[object] = field(default_factory=set)
    _sorted: list = field(default_factory=list, repr=False, compare=False)

    def _index(self) -> list:
        idx = self._sorted
        if len(idx) != len(self.children):
            idx = sorted(self.children)
            self._sorted = idx
        return idx

    def replace_child(self, old: str, new: str) -> None:
        """Swap a child label in place (``UpdateChild``): the only child
        mutation that keeps the count — dirty the snapshot by hand."""
        self.children.discard(old)
        self.children.add(new)
        self._sorted = []

    def max_child_leq(self, key: str) -> Optional[str]:
        """``Max({q ∈ C_p : q <= key})`` — the descent step of Algorithms
        1 and 3 (lines 1.12 and 3.33); one bisect on the sorted snapshot."""
        idx = self._index()
        i = bisect.bisect_right(idx, key)
        return idx[i - 1] if i else None

    def child_sharing_longer_prefix(self, key: str) -> Optional[str]:
        """The child ``q`` with ``|GCP(k, q)| > |GCP(k, p)|`` of line 3.05;
        unique when it exists because children diverge right after the
        parent label — so the one candidate is the first child at or above
        ``key``'s next-digit probe in sorted order."""
        depth = len(self.label)
        if len(key) <= depth:
            return None
        idx = self._index()
        i = bisect.bisect_left(idx, key[: depth + 1])
        if i < len(idx) and common_prefix_len(idx[i], key) > depth:
            return idx[i]
        return None


@dataclass
class ProtocolPeer:
    """Peer-local protocol state: ring pointers + hosted nodes (ν)."""

    id: str
    capacity: int
    pred: Optional[str] = None
    succ: Optional[str] = None
    nodes: Dict[str, NodeState] = field(default_factory=dict)

    @property
    def joined(self) -> bool:
        return self.pred is not None


class ProtocolEngine:
    """Drives peers, nodes and messages over a message transport.

    The engine is transport-agnostic: it talks only to the
    :class:`~repro.net.transport.Transport` surface (``register`` /
    ``unregister`` / ``send`` plus a clock), so the same protocol code
    runs under the discrete-event simulator and under a live asyncio
    event loop.  The transport-first form ``ProtocolEngine(transport=t)``
    is the API; constructing with nothing builds a default
    :class:`~repro.net.transport.SimTransport`, and the legacy
    ``sim=``/``network=`` arguments still do the same but emit a
    :class:`DeprecationWarning` (migration note: docs/runtime.md).
    ``self.sim`` / ``self.net`` stay bound to the simulator and network
    for existing callers; under a non-sim transport those aliases point
    at the transport itself and :meth:`run` defers to ``await
    transport.drain()``.

    ``client_endpoint`` names the engine's reply sink (default
    ``"@client"``); when several engine groups share one wire — the
    multi-process runtime of :mod:`repro.net.procgroup` — each group
    passes a unique endpoint so discovery and query replies route back
    to the issuing process.  ``on_node_installed``, when set, fires as
    ``hook(label, peer_id)`` after every node install/migration — the
    seam cross-process locator replication hangs off.
    """

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        network: Optional[Network] = None,
        transport=None,
        *,
        client_endpoint: str = "@client",
        on_node_installed=None,
    ) -> None:
        if transport is None:
            # Local import: repro.net.wire imports repro.dlpt for the
            # message types, so this module must not import repro.net at
            # module scope.
            from ..net.transport import SimTransport

            if sim is not None or network is not None:
                import warnings

                warnings.warn(
                    "ProtocolEngine(sim=..., network=...) is deprecated; "
                    "pass transport=SimTransport(sim=..., network=...) "
                    "instead (see docs/runtime.md)",
                    DeprecationWarning,
                    stacklevel=2,
                )
            transport = SimTransport(sim=sim, network=network)
        elif sim is not None or network is not None:
            raise ValueError("pass either transport= or sim=/network=, not both")
        self.transport = transport
        self.sim = getattr(transport, "sim", transport)
        self.net = getattr(transport, "network", transport)
        self.peers: Dict[str, ProtocolPeer] = {}
        #: label -> hosting peer id (node location service).
        self.locator: Dict[str, str] = {}
        #: Messages for labels not yet installed (a SearchingHost can race
        #: the Host message creating its target); flushed on install.
        self.pending_node_messages: Dict[str, list] = {}
        self.discovery_replies: list[m.DiscoveryReply] = []
        self.query_replies: list[m.SetQueryReply] = []
        self.dead_node_messages = 0
        self.on_node_installed = on_node_installed
        self._client_endpoint = client_endpoint
        self.transport.register(self._client_endpoint, self._on_client_message)

    # ------------------------------------------------------------------
    # bootstrap & membership
    # ------------------------------------------------------------------

    def bootstrap_peer(self, peer_id: str, capacity: int = 10) -> ProtocolPeer:
        """Create the very first peer: a ring of one."""
        if self.peers:
            raise RuntimeError("bootstrap only valid on an empty system")
        peer = ProtocolPeer(id=peer_id, capacity=capacity, pred=peer_id, succ=peer_id)
        self._install_peer(peer)
        return peer

    def join_peer(
        self,
        peer_id: str,
        capacity: int = 10,
        via: Optional[str] = None,
        seed: Optional[str] = None,
    ) -> ProtocolPeer:
        """Start the Algorithm 1 join of ``peer_id``.

        ``via`` is the label of the entry node; a random node of an
        arbitrary known peer in a real deployment.  When the tree is empty
        the request is delegated directly to the peer layer (there are no
        nodes to route it, cf. Section 3: routing "is mainly achieved by
        the nodes").

        ``seed`` is a registry-assisted shortcut: the id of a peer believed
        to be the joiner's ring successor (as handed out by
        :class:`repro.net.bootstrap.BootstrapRegistry`).  The
        ``NewPredecessor`` request is sent straight to that peer — O(1)
        instead of a ring walk — and Algorithm 2's interval check still
        forwards it along the ring if the registry's view was stale.
        """
        if peer_id in self.peers:
            raise ValueError(f"peer {peer_id!r} already exists")
        peer = ProtocolPeer(id=peer_id, capacity=capacity)
        self._install_peer(peer)
        if seed is not None:
            self.transport.send(
                peer_id, seed, m.NewPredecessor(joiner=peer_id, capacity=capacity)
            )
            return peer
        if via is None:
            via = next(iter(self.locator), None)
        if via is None:
            # Empty tree: seed the NewPredecessor walk at any joined peer.
            seed = next(pid for pid in self.peers if self.peers[pid].joined)
            self.transport.send(peer_id, seed, m.NewPredecessor(joiner=peer_id, capacity=capacity))
        else:
            self.send_to_node(
                peer_id, via,
                m.PeerJoin(node=via, joiner=peer_id, state=0, capacity=capacity),
            )
        return peer

    def _install_peer(self, peer: ProtocolPeer) -> None:
        self.peers[peer.id] = peer
        self.transport.register(peer.id, self._on_peer_message)

    def leave_peer(self, peer_id: str) -> None:
        """Graceful departure: hand ν to the successor, then disappear.

        The leaver sends one ``LeaveTransfer`` to its successor (nodes +
        its predecessor pointer) and an ``UpdatePredecessor`` notice to its
        predecessor, then unregisters its endpoint — any message still in
        flight to it is re-resolved through the location table on arrival.
        """
        peer = self.peers.get(peer_id)
        if peer is None or not peer.joined:
            raise KeyError(f"peer {peer_id!r} not joined")
        if peer.succ == peer.id:
            raise RuntimeError("cannot leave a single-peer ring")
        payloads = tuple(
            m.NodePayload(
                label=st.label,
                father=st.father,
                children=frozenset(st.children),
                data=tuple(st.data),
            )
            for st in peer.nodes.values()
        )
        self.transport.send(peer.id, peer.succ, m.LeaveTransfer(pred=peer.pred, nodes=payloads))
        self.transport.send(peer.id, peer.pred, m.UpdateSuccessor(new_successor=peer.succ))
        peer.nodes.clear()
        self.transport.unregister(peer.id)
        del self.peers[peer_id]

    def _on_leave_transfer(self, peer: ProtocolPeer, msg: m.LeaveTransfer) -> None:
        for payload in msg.nodes:
            self._install_node(peer, payload)
        if msg.pred == peer.id:
            # The leaver's predecessor was us: the ring collapsed to one
            # peer — point at ourselves.  (Pointer-local test, not a
            # ``len(self.peers)`` census: under the multi-process runtime
            # a group sees only its own peers.)
            peer.pred = peer.id
            peer.succ = peer.id
        else:
            peer.pred = msg.pred

    def _on_update_predecessor(self, peer: ProtocolPeer, msg: m.UpdatePredecessor) -> None:
        peer.pred = msg.new_predecessor

    # ------------------------------------------------------------------
    # client operations
    # ------------------------------------------------------------------

    def insert_data(self, key: str, datum: object = None, via: Optional[str] = None) -> None:
        """Issue a DataInsertion for ``key`` (Algorithm 3 entry point)."""
        datum = key if datum is None else datum
        if not self.locator:
            # Empty tree: fabricate the root node and find it a host.
            payload = m.NodePayload(label=key, father=None, children=frozenset(), data=(datum,))
            start = next(pid for pid in self.peers if self.peers[pid].joined)
            self.transport.send(self._client_endpoint, start, m.Host(payload=payload))
            return
        if via is None:
            via = next(iter(self.locator))
        self.send_to_node(self._client_endpoint, via, m.DataInsertion(node=via, key=key, datum=datum))

    def discover(self, key: str, via: Optional[str] = None) -> None:
        """Issue an asynchronous discovery; the reply lands in
        :attr:`discovery_replies` once the simulator runs."""
        if not self.locator:
            raise RuntimeError("tree is empty")
        if via is None:
            via = next(iter(self.locator))
        self.send_to_node(
            self._client_endpoint,
            via,
            m.DiscoveryRequest(node=via, key=key, reply_to=self._client_endpoint),
        )

    def search_query(
        self, kind: str, lo: str, hi: str = "", via: Optional[str] = None
    ) -> None:
        """Issue an asynchronous set query (``kind`` ``"prefix"`` with the
        prefix in ``lo``, or ``"range"`` with both bounds); the reply lands
        in :attr:`query_replies` once the transport drains."""
        if kind not in ("prefix", "range"):
            raise ValueError(f"unknown set-query kind {kind!r}")
        if kind == "range" and lo > hi:
            raise ValueError(f"empty range: {lo!r} > {hi!r}")
        if not self.locator:
            raise RuntimeError("tree is empty")
        if via is None:
            via = next(iter(self.locator))
        self.send_to_node(
            self._client_endpoint,
            via,
            m.SetQueryRequest(
                node=via, kind=kind, lo=lo, hi=hi, reply_to=self._client_endpoint
            ),
        )

    # ------------------------------------------------------------------
    # message plumbing
    # ------------------------------------------------------------------

    def send_to_node(self, src: str, label: str, payload) -> None:
        """Deliver a node-addressed message via the location table.

        Messages for a label with no known host are parked until the node
        installs — the common cause is a ``SearchingHost`` racing the
        ``Host`` message that creates its target node.
        """
        host = self.locator.get(label)
        if host is None:
            self.pending_node_messages.setdefault(label, []).append((src, payload))
            return
        self.transport.send(src, host, payload)

    def _on_client_message(self, env: Envelope) -> None:
        if isinstance(env.payload, m.DiscoveryReply):
            self.discovery_replies.append(env.payload)
        elif isinstance(env.payload, m.SetQueryReply):
            self.query_replies.append(env.payload)

    def _on_peer_message(self, env: Envelope) -> None:
        peer = self.peers[env.dst]
        msg = env.payload
        # Node-addressed messages may race a migration: re-resolve once.
        node_label = getattr(msg, "node", None)
        if node_label is not None and node_label not in peer.nodes:
            current = self.locator.get(node_label)
            if current is not None and current != peer.id:
                self.transport.send(env.src, current, msg)
            elif current is None:
                self.pending_node_messages.setdefault(node_label, []).append(
                    (env.src, msg)
                )
            else:
                self.dead_node_messages += 1
            return
        handler = self._HANDLERS[type(msg)]
        handler(self, peer, msg)

    # ------------------------------------------------------------------
    # Algorithm 1 — peer insertion, on node p
    # ------------------------------------------------------------------

    def _on_peer_join(self, peer: ProtocolPeer, msg: m.PeerJoin) -> None:
        p = peer.nodes[msg.node]
        joiner = msg.joiner
        cap = msg.capacity
        if msg.state == 0:
            # Upward phase (lines 1.03–1.10): climb until this node's label
            # prefixes the joiner's id (its band covers the joiner) or the
            # root is reached; either flips the request to state 1.
            if _is_prefix(p.label, joiner) or p.father is None:
                self.send_to_node(
                    peer.id, p.label,
                    m.PeerJoin(node=p.label, joiner=joiner, state=1, capacity=cap),
                )
            else:
                self.send_to_node(
                    peer.id, p.father,
                    m.PeerJoin(node=p.father, joiner=joiner, state=0, capacity=cap),
                )
            return
        # Downward phase (lines 1.11–1.16): descend towards the highest
        # node id <= joiner, then delegate to the peer layer.
        q = p.max_child_leq(joiner)
        if q is not None:
            self.send_to_node(
                peer.id, q, m.PeerJoin(node=q, joiner=joiner, state=1, capacity=cap)
            )
        else:
            self.transport.send(peer.id, peer.id, m.NewPredecessor(joiner=joiner, capacity=cap))

    # ------------------------------------------------------------------
    # Algorithm 2 — peer insertion, on peer Q
    # ------------------------------------------------------------------

    def _on_new_predecessor(self, peer: ProtocolPeer, msg: m.NewPredecessor) -> None:
        joiner = msg.joiner
        if peer.pred == peer.id:
            # A self-loop pointer means we are alone on the ring (the
            # pointer-local singleton test — valid in any process of a
            # multi-process ring): second peer makes a trivial two-peer
            # ring.
            moving = self._split_nodes(peer, joiner)
            self._send_your_information(peer, joiner, pred=peer.id, moving=moving)
            peer.pred = joiner
            peer.succ = joiner
            return
        if not in_interval_open_closed(joiner, peer.pred, peer.id):
            # Not my predecessor: forward along the ring (paper line 2.04,
            # generalised to the circular interval — see module docstring).
            self.transport.send(peer.id, peer.succ, msg)
            return
        moving = self._split_nodes(peer, joiner)
        old_pred = peer.pred
        self._send_your_information(peer, joiner, pred=old_pred, moving=moving)
        self.transport.send(peer.id, old_pred, m.UpdateSuccessor(new_successor=joiner))
        peer.pred = joiner

    def _split_nodes(self, peer: ProtocolPeer, joiner: str) -> list[m.NodePayload]:
        """ν_P = {n ∈ ν_Q : n ∈ (pred_Q, P]} (lines 2.06–2.07, interval
        form so the wrapped arc behaves)."""
        pred = peer.pred if peer.pred is not None else peer.id
        moving_labels = [
            lbl for lbl in peer.nodes if in_interval_open_closed(lbl, pred, joiner)
        ]
        payloads = []
        for lbl in moving_labels:
            st = peer.nodes.pop(lbl)
            payloads.append(
                m.NodePayload(
                    label=st.label,
                    father=st.father,
                    children=frozenset(st.children),
                    data=tuple(st.data),
                )
            )
        return payloads

    def _send_your_information(
        self, peer: ProtocolPeer, joiner: str, pred: str, moving: list[m.NodePayload]
    ) -> None:
        self.transport.send(
            peer.id,
            joiner,
            m.YourInformation(pred=pred, succ=peer.id, nodes=tuple(moving)),
        )

    def _on_your_information(self, peer: ProtocolPeer, msg: m.YourInformation) -> None:
        peer.pred = msg.pred
        peer.succ = msg.succ
        for payload in msg.nodes:
            self._install_node(peer, payload)

    def _on_update_successor(self, peer: ProtocolPeer, msg: m.UpdateSuccessor) -> None:
        peer.succ = msg.new_successor

    # ------------------------------------------------------------------
    # Algorithm 3 — data insertion, on node p
    # ------------------------------------------------------------------

    def _on_data_insertion(self, peer: ProtocolPeer, msg: m.DataInsertion) -> None:
        p = peer.nodes[msg.node]
        k = msg.key
        datum = msg.datum

        if p.label == k:  # line 3.03
            p.data.add(datum)
            return

        if _is_prefix(p.label, k) and p.label != k:  # lines 3.04–3.09
            q = p.child_sharing_longer_prefix(k)
            if q is not None:
                self.send_to_node(peer.id, q, m.DataInsertion(node=q, key=k, datum=datum))
            else:
                payload = m.NodePayload(label=k, father=p.label, children=frozenset(), data=(datum,))
                p.children.add(k)
                self.send_to_node(peer.id, p.label, m.SearchingHost(node=p.label, payload=payload))
            return

        if _is_prefix(k, p.label):  # lines 3.10–3.20 (k properly prefixes p)
            if p.father is None:
                payload = m.NodePayload(
                    label=k, father=None, children=frozenset({p.label}), data=(datum,)
                )
                p.father = k
                self.send_to_node(peer.id, p.label, m.SearchingHost(node=p.label, payload=payload))
            else:
                father = p.father
                # Line 3.15's printed condition |GCP(k, f_p)| = |p| can
                # never hold (the GCP is at most |k| < |p|), and reading it
                # as |f_p| ping-pongs between p and its father.  Both k and
                # f_p prefix p, so they are totally ordered: climb when k
                # is at or above the father (k prefixes f_p), splice k
                # between f_p and p otherwise.
                if common_prefix_len(k, father) == len(k):
                    self.send_to_node(peer.id, father, m.DataInsertion(node=father, key=k, datum=datum))
                else:
                    payload = m.NodePayload(
                        label=k, father=father, children=frozenset({p.label}), data=(datum,)
                    )
                    self.send_to_node(peer.id, father, m.SearchingHost(node=father, payload=payload))
                    self.send_to_node(peer.id, father, m.UpdateChild(node=father, old=p.label, new=k))
                    p.father = k
            return

        # Neither prefixes the other (lines 3.21–3.31).
        father = p.father
        if father is not None and common_prefix_len(k, p.label) == common_prefix_len(k, father):
            self.send_to_node(peer.id, father, m.DataInsertion(node=father, key=k, datum=datum))
            return
        g = gcp(p.label, k)
        parent_payload = m.NodePayload(
            label=g, father=father, children=frozenset({p.label, k}), data=()
        )
        key_payload = m.NodePayload(label=k, father=g, children=frozenset(), data=(datum,))
        if father is None:
            self.send_to_node(peer.id, p.label, m.SearchingHost(node=p.label, payload=parent_payload))
            self.send_to_node(peer.id, p.label, m.SearchingHost(node=p.label, payload=key_payload))
        else:
            self.send_to_node(peer.id, father, m.SearchingHost(node=father, payload=parent_payload))
            self.send_to_node(peer.id, father, m.UpdateChild(node=father, old=p.label, new=g))
            self.send_to_node(peer.id, father, m.SearchingHost(node=father, payload=key_payload))
        p.father = g

    def _on_searching_host(self, peer: ProtocolPeer, msg: m.SearchingHost) -> None:
        # Lines 3.32–3.37: descend to the highest node lower than the new
        # label, then hand the payload to the peer layer.
        p = peer.nodes[msg.node]
        q = p.max_child_leq(msg.payload.label)
        if q is not None and q != msg.payload.label:
            self.send_to_node(peer.id, q, m.SearchingHost(node=q, payload=msg.payload))
        else:
            self.transport.send(peer.id, peer.id, m.Host(payload=msg.payload))

    def _on_host(self, peer: ProtocolPeer, msg: m.Host) -> None:
        # Peer layer: enforce the mapping rule by ring forwarding (module
        # docstring, fidelity note 2).
        label = msg.payload.label
        if peer.pred is None:
            self.dead_node_messages += 1
            return
        if not in_interval_open_closed(label, peer.pred, peer.id):
            # ``(pred, pred]`` is the whole ring, so a singleton peer
            # (self-loop pointers) accepts every label without needing a
            # peer census — the census would be wrong in a multi-process
            # ring anyway.
            self.transport.send(peer.id, peer.succ, msg)
            return
        self._install_node(peer, msg.payload)

    def _on_update_child(self, peer: ProtocolPeer, msg: m.UpdateChild) -> None:
        peer.nodes[msg.node].replace_child(msg.old, msg.new)

    def _install_node(self, peer: ProtocolPeer, payload: m.NodePayload) -> None:
        st = NodeState(
            label=payload.label,
            father=payload.father,
            children=set(payload.children),
            data=set(payload.data),
        )
        peer.nodes[payload.label] = st
        self.locator[payload.label] = peer.id
        if self.on_node_installed is not None:
            self.on_node_installed(payload.label, peer.id)
        # Flush messages that raced this node's creation/arrival.
        parked = self.pending_node_messages.pop(payload.label, None)
        if parked:
            for src, msg in parked:
                self.transport.send(src, peer.id, msg)

    # ------------------------------------------------------------------
    # discovery
    # ------------------------------------------------------------------

    def _on_discovery(self, peer: ProtocolPeer, msg: m.DiscoveryRequest) -> None:
        p = peer.nodes[msg.node]
        k = msg.key
        hops = msg.hops
        if p.label == k:
            self.transport.send(
                peer.id,
                msg.reply_to,
                m.DiscoveryReply(key=k, found=True, data=tuple(p.data), hops=hops),
            )
            return
        if _is_prefix(p.label, k):
            q = p.child_sharing_longer_prefix(k)
            if q is not None and _is_prefix(q, k):
                self.send_to_node(
                    peer.id, q, m.DiscoveryRequest(node=q, key=k, reply_to=msg.reply_to, hops=hops + 1)
                )
                return
            self.transport.send(
                peer.id, msg.reply_to, m.DiscoveryReply(key=k, found=False, hops=hops)
            )
            return
        if p.father is not None:
            self.send_to_node(
                peer.id,
                p.father,
                m.DiscoveryRequest(node=p.father, key=k, reply_to=msg.reply_to, hops=hops + 1),
            )
            return
        self.transport.send(peer.id, msg.reply_to, m.DiscoveryReply(key=k, found=False, hops=hops))

    # ------------------------------------------------------------------
    # set queries (prefix completion / lexicographic range)
    # ------------------------------------------------------------------

    def _on_set_query(self, peer: ProtocolPeer, msg: m.SetQueryRequest) -> None:
        """Route, then scan.  Phase 0 climbs from the entry node to the
        scan root — the *highest* node whose label extends the band's
        anchor — descending along the anchor's spine when the entry sits
        outside the band.  Phase 1 walks the scan subtree as a token in
        DFS order, carrying the matches and the still-to-visit labels.
        Every forward is one hop, so the reply's count equals the macro
        model's climb + descent + (visited − 1) accounting."""
        p = peer.nodes[msg.node]
        anchor = msg.lo if msg.kind == "prefix" else gcp(msg.lo, msg.hi)
        if msg.phase == 0:
            if _is_prefix(anchor, p.label):
                # Inside the band: climb while the father still extends the
                # anchor; the highest such node is the scan root.
                father = p.father
                if father is not None and _is_prefix(anchor, father):
                    self._forward_query(peer, father, msg)
                    return
                self._scan_step(peer, p, msg)
                return
            if _is_prefix(p.label, anchor):
                # Above the band: descend toward the anchor.
                q = p.child_sharing_longer_prefix(anchor)
                if q is not None and (_is_prefix(q, anchor) or _is_prefix(anchor, q)):
                    self._forward_query(peer, q, msg)
                    return
                self._reply_query(peer, msg, ())  # nothing under the anchor
                return
            if p.father is not None:
                self._forward_query(peer, p.father, msg)
                return
            self._reply_query(peer, msg, ())  # root diverges from the anchor
            return
        self._scan_step(peer, p, msg)

    def _scan_step(self, peer: ProtocolPeer, p: NodeState, msg: m.SetQueryRequest) -> None:
        """Process one scan visit at ``p``: collect its label if filled and
        matching, push its in-band children onto the pending stack, and
        forward the token to the next label — or reply when done."""
        kind, lo, hi = msg.kind, msg.lo, msg.hi
        keys = list(msg.keys)
        if p.data and (p.label.startswith(lo) if kind == "prefix" else lo <= p.label <= hi):
            keys.append(p.label)
        pending = list(msg.pending)
        kids = p._index()
        if kind == "range":
            kids = [c for c in kids if not (c > hi or (c < lo and not lo.startswith(c)))]
        pending.extend(sorted(kids, reverse=True))
        if pending:
            nxt = pending.pop()
            self.send_to_node(
                peer.id,
                nxt,
                m.SetQueryRequest(
                    node=nxt, kind=kind, lo=lo, hi=hi, reply_to=msg.reply_to,
                    phase=1, pending=tuple(pending), keys=tuple(keys),
                    hops=msg.hops + 1,
                ),
            )
            return
        self._reply_query(peer, msg, keys)

    def _forward_query(self, peer: ProtocolPeer, label: str, msg: m.SetQueryRequest) -> None:
        self.send_to_node(
            peer.id,
            label,
            m.SetQueryRequest(
                node=label, kind=msg.kind, lo=msg.lo, hi=msg.hi,
                reply_to=msg.reply_to, phase=msg.phase, pending=msg.pending,
                keys=msg.keys, hops=msg.hops + 1,
            ),
        )

    def _reply_query(self, peer: ProtocolPeer, msg: m.SetQueryRequest, keys) -> None:
        self.transport.send(
            peer.id,
            msg.reply_to,
            m.SetQueryReply(
                kind=msg.kind, lo=msg.lo, hi=msg.hi,
                keys=tuple(sorted(keys)), hops=msg.hops,
            ),
        )

    # ------------------------------------------------------------------
    # verification helpers
    # ------------------------------------------------------------------

    def run(self) -> None:
        """Run the simulator until the protocol quiesces (synchronous;
        only meaningful under a :class:`~repro.net.transport.SimTransport`
        — under an asyncio transport, ``await transport.drain()``)."""
        runner = getattr(self.transport, "run_until_idle", None)
        if runner is None:
            raise RuntimeError(
                "run() needs a SimTransport; under an asyncio transport "
                "use `await transport.drain()`"
            )
        runner()

    def tree_edges(self) -> set[tuple[str, str]]:
        """(father, child) pairs as recorded on the hosting peers."""
        edges = set()
        for peer in self.peers.values():
            for st in peer.nodes.values():
                for c in st.children:
                    edges.add((st.label, c))
        return edges

    def node_labels(self) -> set[str]:
        return set(self.locator)

    def check_ring(self) -> None:
        """Ring pointers form a single consistent cycle in id order."""
        ids = sorted(p.id for p in self.peers.values() if p.joined)
        n = len(ids)
        for i, pid in enumerate(ids):
            peer = self.peers[pid]
            assert peer.succ == ids[(i + 1) % n], (
                f"{pid!r}: succ {peer.succ!r} != {ids[(i + 1) % n]!r}"
            )
            assert peer.pred == ids[(i - 1) % n], (
                f"{pid!r}: pred {peer.pred!r} != {ids[(i - 1) % n]!r}"
            )

    def check_mapping(self) -> None:
        """Every node lives on the lowest peer id >= its label (wrapped)."""
        ids = sorted(p.id for p in self.peers.values() if p.joined)
        import bisect

        for label, host in self.locator.items():
            i = bisect.bisect_left(ids, label)
            expected = ids[i] if i < len(ids) else ids[0]
            assert host == expected, (
                f"node {label!r} on {host!r}, mapping rule wants {expected!r}"
            )
            assert label in self.peers[host].nodes

    def check_tree(self) -> None:
        """Father/child links are mutually consistent and acyclic, and the
        PGCP labelling discipline holds."""
        states: Dict[str, NodeState] = {}
        for peer in self.peers.values():
            for lbl, st in peer.nodes.items():
                assert lbl not in states, f"node {lbl!r} hosted twice"
                states[lbl] = st
        roots = [st for st in states.values() if st.father is None]
        assert len(roots) == (1 if states else 0), f"{len(roots)} roots"
        for st in states.values():
            for c in st.children:
                assert c in states, f"dangling child {c!r} of {st.label!r}"
                assert states[c].father == st.label, (
                    f"child {c!r} thinks father is {states[c].father!r}, "
                    f"not {st.label!r}"
                )
                assert c.startswith(st.label) and c != st.label
            kids = sorted(st.children)
            for i in range(len(kids)):
                for j in range(i + 1, len(kids)):
                    assert gcp(kids[i], kids[j]) == st.label, (
                        f"Definition 1 violated under {st.label!r}: "
                        f"{kids[i]!r} vs {kids[j]!r}"
                    )

    _HANDLERS = {}


def _is_prefix(u: str, v: str) -> bool:
    return v.startswith(u)


ProtocolEngine._HANDLERS = {
    m.PeerJoin: ProtocolEngine._on_peer_join,
    m.NewPredecessor: ProtocolEngine._on_new_predecessor,
    m.YourInformation: ProtocolEngine._on_your_information,
    m.UpdateSuccessor: ProtocolEngine._on_update_successor,
    m.LeaveTransfer: ProtocolEngine._on_leave_transfer,
    m.UpdatePredecessor: ProtocolEngine._on_update_predecessor,
    m.DataInsertion: ProtocolEngine._on_data_insertion,
    m.SearchingHost: ProtocolEngine._on_searching_host,
    m.Host: ProtocolEngine._on_host,
    m.UpdateChild: ProtocolEngine._on_update_child,
    m.DiscoveryRequest: ProtocolEngine._on_discovery,
    m.SetQueryRequest: ProtocolEngine._on_set_query,
}
