"""The live DLPT system: ring + PGCP tree + mapping + request execution.

This is the *macro* (time-unit level) model used by all experiments.  It
keeps the distributed system's global state — the peer ring, the logical
tree, and the node→peer mapping — and executes the operations the paper's
simulation performs each time unit: peer joins/leaves, service registration
(tree growth), discovery requests with per-peer capacity accounting, and
load-balancing hooks.

The message-level protocols (Algorithms 1–3) are implemented separately in
:mod:`repro.dlpt.protocol` and validated (property-based) to produce exactly
the state transitions this class performs atomically.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.alphabet import PRINTABLE, Alphabet
from ..core.ids import gcp
from ..core.pgcp import PGCPTree
from ..core.queries import (
    ExactQuery,
    MultiAttributeQuery,
    PrefixQuery,
    RangeQuery,
    parse_query,
)
from ..peers.capacity import CapacityModel, UniformCapacity
from ..peers.peer import Peer
from ..peers.ring import Ring
from ..util.sortedlist import SortedList
from .mapping import LexicographicMapping
from .routing import (
    BatchOutcome,
    DiscoveryRouter,
    QueryBatchOutcome,
    QueryOutcome,
    RequestOutcome,
    _covering_node,
    _pruned_dfs,
    route_path,
)

#: Default length of randomly drawn peer identifiers.  Long enough that
#: collisions among ~10^4 peers are negligible for any alphabet size >= 2.
DEFAULT_PEER_ID_LENGTH = 24


class DLPTSystem:
    """Global state of one DLPT deployment.

    Parameters
    ----------
    alphabet:
        Digit alphabet shared by peer identifiers and node labels.
    capacity_model:
        Distribution of per-peer capacities (requests per time unit).
    mapping_factory:
        Callable ``ring -> mapping``; defaults to the paper's lexicographic
        mapping.  The Figure 9 baseline passes the hashed mapping instead.
    peer_id_length:
        Length of randomly generated peer identifiers.
    peer_id_sampler:
        Optional callable ``rng -> str`` drawing peer identifiers.  Peers
        and nodes share one identifier space (Section 3), so deployments
        typically draw peer ids from the same namespace as the service
        keys; :func:`corpus_peer_id_sampler` builds such a sampler.  When
        ``None``, identifiers are uniform random digit strings.
    """

    def __init__(
        self,
        *,
        alphabet: Alphabet = PRINTABLE,
        capacity_model: CapacityModel | None = None,
        mapping_factory=None,
        peer_id_length: int = DEFAULT_PEER_ID_LENGTH,
        peer_id_sampler=None,
    ) -> None:
        self.alphabet = alphabet
        self.capacity_model = capacity_model or UniformCapacity()
        self.peer_id_length = peer_id_length
        self.peer_id_sampler = peer_id_sampler
        self.ring = Ring()
        self.tree = PGCPTree()
        self.mapping = (
            mapping_factory(self.ring) if mapping_factory else LexicographicMapping(self.ring)
        )
        self.tree.on_create = lambda node: self.mapping.on_node_created(node.label)
        self.tree.on_remove = lambda node: self.mapping.on_node_removed(node.label)
        #: All node labels, sorted — uniform random entry-node selection.
        self.node_index: SortedList[str] = SortedList()
        self.tree_on_create_chain()
        #: Indexed discovery fast path (version-guarded spine/hop caches).
        self.router = DiscoveryRouter(self.tree, self.mapping)
        #: Aggregated per-node request counts of the last closed time unit
        #: (the ``l_n`` that MLT and KC consume).
        self.last_unit_load: Dict[str, int] = {}
        self.time_unit = 0

    def tree_on_create_chain(self) -> None:
        """Chain node-index maintenance onto the tree hooks (kept separate
        so subclasses/baselines can re-wire mapping hooks cleanly).

        When the mapping maintains its own sorted label index (the
        lexicographic mapping's migration index), alias it instead of
        paying a second O(n) sorted insert per node creation.
        """
        shared = getattr(self.mapping, "label_index", None)
        if isinstance(shared, SortedList):
            self.node_index = shared
            return
        mapping_create = self.tree.on_create
        mapping_remove = self.tree.on_remove

        def _on_create(node) -> None:
            mapping_create(node)
            self.node_index.add(node.label)

        def _on_remove(node) -> None:
            mapping_remove(node)
            self.node_index.remove(node.label)

        self.tree.on_create = _on_create
        self.tree.on_remove = _on_remove

    # -- peer membership ---------------------------------------------------

    def random_peer_id(self, rng) -> str:
        """Draw a fresh (non-colliding) random peer identifier."""
        while True:
            if self.peer_id_sampler is not None:
                pid = self.peer_id_sampler(rng)
            else:
                pid = self.alphabet.random_identifier(rng, self.peer_id_length)
            if pid not in self.ring:
                return pid

    def add_peer(
        self,
        rng,
        peer_id: Optional[str] = None,
        capacity: Optional[int] = None,
    ) -> Peer:
        """Join a peer at ``peer_id`` (random when ``None``) and migrate the
        node interval it takes over from its successor."""
        random_id = peer_id is None
        if peer_id is None:
            peer_id = self.random_peer_id(rng)
        elif peer_id in self.ring:
            raise ValueError(f"peer id {peer_id!r} already on the ring")
        if capacity is None:
            capacity = self.capacity_model.sample(rng)
        while True:
            peer = Peer(id=peer_id, capacity=capacity)
            self.ring.join(peer)
            try:
                self.mapping.on_peer_joined(peer)
            except ValueError:
                # Hash-position collision under the DHT mapping: retry with a
                # fresh identifier when we chose it; surface caller choices.
                self.ring.leave(peer_id)
                if not random_id:
                    raise
                peer_id = self.random_peer_id(rng)
                continue
            return peer

    def remove_peer(self, peer_id: str) -> Peer:
        """Graceful leave: nodes migrate to the successor, then the peer
        departs the ring."""
        peer = self.ring.peer(peer_id)
        if len(self.ring) == 1 and peer.nodes:
            raise RuntimeError("cannot remove the last peer while the tree exists")
        self.mapping.on_peer_leaving(peer)
        self.ring.leave(peer_id)
        return peer

    def add_peers(
        self,
        rng,
        n_peers: Optional[int] = None,
        capacities=None,
        peer_ids=None,
    ) -> list[Peer]:
        """Join a batch of peers with one sorted ring merge — the bulk twin
        of repeated :meth:`add_peer` calls (the ``ChordRing.add_peers``
        idiom applied to the live ring).

        Identifiers (when ``peer_ids`` is ``None``) and capacities (when
        ``capacities`` is ``None``) are drawn from ``rng`` in the same
        per-peer order as the sequential loop, so both paths consume the
        RNG stream identically and build the same platform.  The bulk merge
        only applies while the mapping holds no labels (bootstrap: joins
        migrate nothing) under a mapping with deferred placement; otherwise
        — mid-life joins, the frozen seed mapping, the DHT baseline — it
        falls back to per-peer :meth:`add_peer`, which preserves
        interval-migration (and hash-collision-retry) semantics.
        """
        if peer_ids is not None:
            if n_peers is None:
                n_peers = len(peer_ids)
            elif n_peers != len(peer_ids):
                raise ValueError("n_peers disagrees with len(peer_ids)")
        elif n_peers is None:
            raise ValueError("need n_peers or peer_ids")
        if capacities is not None and len(capacities) != n_peers:
            raise ValueError("capacities must match the batch size")
        mapping = self.mapping
        bulk = getattr(mapping, "place_batch", None) is not None and not mapping.host
        if not bulk:
            return [
                self.add_peer(
                    rng,
                    peer_id=peer_ids[i] if peer_ids is not None else None,
                    capacity=capacities[i] if capacities is not None else None,
                )
                for i in range(n_peers)
            ]
        ring = self.ring
        batch_ids: set[str] = set()
        peers: list[Peer] = []
        sample = self.capacity_model.sample
        for i in range(n_peers):
            if peer_ids is not None:
                pid = peer_ids[i]
                if pid in ring or pid in batch_ids:
                    raise ValueError(f"peer id {pid!r} already on the ring")
            else:
                # Same rejection rule as the sequential loop: earlier batch
                # members count as "on the ring" for collision purposes.
                while True:
                    if self.peer_id_sampler is not None:
                        pid = self.peer_id_sampler(rng)
                    else:
                        pid = self.alphabet.random_identifier(rng, self.peer_id_length)
                    if pid not in ring and pid not in batch_ids:
                        break
            batch_ids.add(pid)
            capacity = capacities[i] if capacities is not None else sample(rng)
            peers.append(Peer(id=pid, capacity=capacity))
        ring.join_many(peers)
        # No labels are mapped, so no interval migrates; the joins still
        # count as one host-assignment epoch for the router's caches.
        mapping.version += 1
        return peers

    def build(self, rng, n_peers: int) -> None:
        """Bootstrap a platform of ``n_peers`` peers (before any services)."""
        self.add_peers(rng, n_peers)

    # -- service registration -----------------------------------------------

    def register(self, key: str, datum: object = None) -> None:
        """Register a service key (Algorithm 3's outcome): the tree grows
        and any created node is immediately mapped onto a peer."""
        if len(self.ring) == 0:
            raise RuntimeError("cannot register services on an empty ring")
        self.alphabet.validate(key)
        self.tree.insert(key, datum)

    def register_batch(self, keys) -> int:
        """Register many service keys in one batched pass (each key its own
        datum, exactly as per-key :meth:`register`)."""
        return self.register_pairs([(key, None) for key in keys])

    def register_pairs(self, pairs) -> int:
        """Register ``(key, datum)`` pairs through the bulk construction
        fast path: one sorted :meth:`~repro.core.pgcp.PGCPTree.insert_batch`
        cursor walk plus one deferred mapping placement pass over every
        node the batch created, instead of a hook-driven placement per
        node.  The final tree/mapping/index state is identical to per-key
        :meth:`register` calls (property-tested); mappings without a
        ``place_batch`` hook (the frozen seed reference, the DHT baseline)
        fall back to the sequential loop.  Returns the number of pairs.
        """
        if len(self.ring) == 0:
            raise RuntimeError("cannot register services on an empty ring")
        pairs = list(pairs)
        if not pairs:
            return 0
        self.alphabet.validate_many([key for key, _ in pairs])
        place = getattr(self.mapping, "place_batch", None)
        if place is None:
            insert = self.tree.insert
            for key, datum in pairs:
                insert(key, datum)
            return len(pairs)
        tree = self.tree
        created: list[str] = []
        hooked_on_create = tree.on_create
        tree.on_create = lambda node: created.append(node.label)
        try:
            tree.insert_batch(pairs)
        finally:
            tree.on_create = hooked_on_create
        place(created)
        if self.node_index is not getattr(self.mapping, "label_index", None):
            # Unaliased entry-node index (a mapping with deferred placement
            # but its own label bookkeeping): merge the batch once.
            self.node_index.update(created)
        return len(pairs)

    def unregister(self, key: str, datum: object = None) -> bool:
        """Remove a service registration (extension; contracts the tree)."""
        return self.tree.remove(key, datum)

    # -- discovery -------------------------------------------------------------

    def random_entry_label(self, rng) -> str:
        """Uniformly random tree node — where a client's request enters."""
        n = len(self.node_index)
        if n == 0:
            raise RuntimeError("tree is empty; no entry node")
        return self.node_index[rng.randrange(n)]

    def random_entry_labels(self, rng, count: int) -> list[str]:
        """``count`` uniformly random entry nodes — the bulk twin of
        :meth:`random_entry_label`, consuming the RNG stream identically
        (one ``randrange`` per draw) with the index bound once."""
        n = len(self.node_index)
        if n == 0:
            raise RuntimeError("tree is empty; no entry node")
        items = self.node_index.raw()
        randrange = rng.randrange
        return [items[randrange(n)] for _ in range(count)]

    def discover(
        self,
        key: str,
        entry_label: Optional[str] = None,
        rng=None,
        accounting: str = "destination",
    ) -> RequestOutcome:
        """Execute one discovery request with capacity accounting.

        A request is satisfied when it reaches the node owning ``key``
        ("A request is said to be satisfied if it reaches its final
        destination") and the responsible peer still has capacity ("All
        requests received on a peer after it reached this number are
        ignored").  Two accounting models are provided:

        ``"destination"`` (default)
            A request charges only the peer hosting its destination node —
            the model under which the paper's pair-throughput objective
            ``T = min(L_S, C_S) + min(L_P, C_P)`` is exact (every request
            is processed by exactly one node, so the satisfied count of a
            peer is precisely ``min(load, capacity)``).

        ``"transit"``
            Every node visited along the route charges its hosting peer;
            a request dropped mid-route is unsatisfied.  This ablation
            model makes the peers hosting upper tree nodes ("the upper a
            node is, the more times it will be visited") a hard bottleneck
            and is exercised by the ablation benches.
        """
        if accounting == "destination":
            if entry_label is None:
                if rng is None:
                    raise ValueError("need rng when entry_label is not given")
                entry_label = self.random_entry_label(rng)
            router = self.router
            router.sync()
            resolved = router.resolve(key, entry_label)
            if resolved is not None:
                dest, dest_peer, found, logical, physical = resolved
                if not dest_peer.try_process(dest):
                    return RequestOutcome(
                        key=key,
                        satisfied=False,
                        found=False,
                        logical_hops=logical,
                        physical_hops=physical,
                        dropped_at=dest_peer.id,
                    )
                return RequestOutcome(
                    key=key,
                    satisfied=found,
                    found=found,
                    logical_hops=logical,
                    physical_hops=physical,
                )
            # Entry outside the root's fragment (crash-damaged forest):
            # only the walking resolver knows the fragment-local route.
            return self._discover_walk(key, entry_label, charge_transit=False)
        if accounting != "transit":
            raise ValueError(f"unknown accounting model {accounting!r}")
        if entry_label is None:
            if rng is None:
                raise ValueError("need rng when entry_label is not given")
            entry_label = self.random_entry_label(rng)
        return self._discover_walk(key, entry_label, charge_transit=True)

    def _discover_walk(
        self, key: str, entry_label: str, charge_transit: bool
    ) -> RequestOutcome:
        """The walking resolver: visits every node on the route.  Serves
        ``transit`` accounting (which must charge each visited peer) and
        damaged-forest entries the indexed router cannot cover."""
        path = route_path(self.tree, entry_label, key)
        host_of = self.mapping.host_of

        physical_hops = 0
        prev_peer = None
        last = len(path.labels) - 1
        for i, label in enumerate(path.labels):
            peer = host_of(label)
            if prev_peer is not None and peer is not prev_peer:
                physical_hops += 1
            if charge_transit or i == last:
                if not peer.try_process(label):
                    return RequestOutcome(
                        key=key,
                        satisfied=False,
                        found=False,
                        logical_hops=i,
                        physical_hops=physical_hops,
                        dropped_at=peer.id,
                    )
            prev_peer = peer
        return RequestOutcome(
            key=key,
            satisfied=path.found,
            found=path.found,
            logical_hops=path.logical_hops,
            physical_hops=physical_hops,
        )

    def discover_batch(
        self,
        pairs,
        accounting: str = "destination",
        skip_missing_entries: bool = False,
    ) -> BatchOutcome:
        """Serve a batch of ``(key, entry_label)`` requests and return the
        aggregated counters — the per-unit hot loop of the experiment
        runner and the flood benchmarks.

        Requests are charged strictly in the given order (capacity
        exhaustion depends on it), but routing work is shared: the router
        syncs once for the whole batch and repeated keys hit the spine
        memo, so no per-request outcome objects or route walks remain.
        ``skip_missing_entries`` counts a pair whose entry node no longer
        exists as an unsatisfied lookup instead of raising — the replay
        semantics for traces recorded on a differently-repaired tree.
        """
        if accounting not in ("destination", "transit"):
            raise ValueError(f"unknown accounting model {accounting!r}")
        out = BatchOutcome()
        transit = accounting == "transit"
        router = self.router
        router.sync()
        n_nodes = len(self.tree._by_label)
        served = router.served_since_invalidate
        router.served_since_invalidate = served + len(pairs)
        stable = router.batches_since_invalidate
        router.batches_since_invalidate = stable + 1
        if (
            not transit
            and len(pairs) >= 32
            and (stable or 4 * (served + len(pairs)) >= n_nodes)
        ):
            # The cache's current epoch will serve a sizable share of the
            # tree — a big batch, or a stable platform (a full batch
            # boundary passed with no invalidation): one bulk DFS beats
            # thousands of lazy ancestor walks.
            router.warm()
        # Hot-loop hoists: local counters and direct cache probes (the
        # router's memo dicts), falling back to the building methods only
        # on a miss.  Nothing inside the loop mutates tree or mapping, so
        # the single sync above covers the whole batch.  The destination
        # charge inlines Peer.try_process (same semantics: the node's
        # popularity is recorded even when the peer is exhausted).
        hist = out.hop_histogram
        issued = len(pairs)
        satisfied = dropped = not_found = 0
        logical_total = physical_total = 0
        spines = router._spines
        info_get = router._info.get
        spine_get = spines.get
        node_info = router.node_info
        build_spine = router._build_spine
        node_of = self.tree.node
        root = self.tree.root
        root_label = root.label if root is not None else None
        for key, entry in pairs:
            if skip_missing_entries and node_of(entry) is None:
                not_found += 1
                continue
            if transit:
                e_info = None
            else:
                e_info = info_get(entry)
                if e_info is None:
                    e_info = node_info(entry)
            if e_info is None or e_info[3] != root_label:
                # Transit accounting, or an entry outside the root's
                # fragment (crash-damaged forest): walk the full route.
                outcome = self._discover_walk(key, entry, charge_transit=transit)
                if outcome.satisfied:
                    satisfied += 1
                    logical = outcome.logical_hops
                    logical_total += logical
                    physical_total += outcome.physical_hops
                    hist[logical] = hist.get(logical, 0) + 1
                elif outcome.dropped:
                    dropped += 1
                else:
                    not_found += 1
                continue
            s = spine_get(key)
            if s is None:
                s = build_spine(key)
                spines[key] = s
            labels, found = s
            if labels:
                dest = labels[-1]
                d_info = info_get(dest)
                if d_info is None:
                    d_info = node_info(dest)
                dest_peer = d_info[2]
            else:
                dest = root_label
                found = False
                d_info = info_get(dest)
                if d_info is None:
                    d_info = node_info(dest)
                dest_peer = d_info[2]
            # Destination charge (Peer.try_process, inlined).
            node_load = dest_peer.node_load
            node_load[dest] = node_load.get(dest, 0) + 1
            if dest_peer.used >= dest_peer.capacity:
                dest_peer.total_rejected += 1
                dropped += 1
                continue
            dest_peer.used += 1
            dest_peer.total_processed += 1
            if not found:
                not_found += 1
                continue
            satisfied += 1
            # Hop arithmetic only for satisfied requests — the runner
            # discards hop counts of dropped/unfound outcomes anyway.
            # Join = deepest spine node prefixing the entry (monotone
            # down the chain; see DiscoveryRouter.resolve).
            j = 0
            last = len(labels) - 1
            while j < last and entry.startswith(labels[j + 1]):
                j += 1
            logical = (e_info[0] - j) + (last - j)
            if j:
                j_info = info_get(labels[j])
                if j_info is None:
                    j_info = node_info(labels[j])
                physical = (e_info[1] - j_info[1]) + (d_info[1] - j_info[1])
            else:
                physical = e_info[1] + d_info[1]
            logical_total += logical
            physical_total += physical
            hist[logical] = hist.get(logical, 0) + 1
        out.issued = issued
        out.satisfied = satisfied
        out.dropped = dropped
        out.not_found = not_found
        out.logical_hops = logical_total
        out.physical_hops = physical_total
        return out

    # -- set queries (completion / range / multi-attribute) ---------------------

    def search(self, query, entry_label: Optional[str] = None, rng=None) -> QueryOutcome:
        """Execute one set query (prefix completion, lexicographic range,
        exact, or multi-attribute conjunction) through the routed path.

        ``query`` may be a query object or any spec :func:`parse_query`
        accepts; validation against the system alphabet happens here, so
        executors never see a malformed query.  The route mirrors
        :meth:`discover`: climb from the entry node to the deepest ancestor
        covering the query band's anchor (the prefix itself, or the GCP of
        the range bounds), descend to the scan root, then fan out over the
        scan subtree — charging every *scanned* node's host, one logical
        hop per scan forward.  On a crash-damaged forest the indexed scan
        gives way to the walking resolver, which additionally sweeps every
        orphan fragment (one extra jump each) so the answer stays complete.

        ``results`` is always the full sorted answer over the registered
        key set — capacity exhaustion affects ``satisfied``/``dropped_at``
        only.  With neither ``entry_label`` nor ``rng`` the query enters at
        the scan root (zero routing hops); a multi-attribute query draws a
        fresh entry per clause when given only ``rng``.
        """
        query = parse_query(query, self.alphabet)
        if isinstance(query, MultiAttributeQuery):
            return self._search_multi(query, entry_label, rng)
        outcome, _ = self._execute_single(query, entry_label, rng)
        return outcome

    def search_batch(self, items, rng=None) -> QueryBatchOutcome:
        """Serve a batch of ``(query, entry_label)`` set queries; returns
        the aggregated :class:`QueryBatchOutcome` counters (the count-dict
        twin of :meth:`discover_batch` — per-query outcomes are absorbed,
        never kept).  ``entry_label`` of ``None`` draws from ``rng``."""
        out = QueryBatchOutcome()
        for query, entry_label in items:
            out.absorb(self.search(query, entry_label=entry_label, rng=rng))
        return out

    @staticmethod
    def _query_band(query):
        """``(anchor, lo, hi)`` of a single query's label band; a ``None``
        band means prefix mode (everything under the anchor matches)."""
        if isinstance(query, PrefixQuery):
            return query.prefix, None, None
        if isinstance(query, RangeQuery):
            return gcp(query.lo, query.hi), query.lo, query.hi
        if isinstance(query, ExactQuery):
            return query.key, query.key, query.key
        raise TypeError(f"unsupported query type {type(query).__name__}")

    def _search_multi(self, query, entry_label, rng) -> QueryOutcome:
        """Conjunction: one routed scan per rebased ``attr=value`` clause,
        intersecting the primary names stored as data; hop and scan totals
        sum over the clauses (they are independent sub-requests)."""
        names: Optional[set] = None
        logical = physical = scanned = 0
        dropped_at = None
        for _attr, sub in sorted(query.attribute_queries().items()):
            outcome, data = self._execute_single(sub, entry_label, rng)
            logical += outcome.logical_hops
            physical += outcome.physical_hops
            scanned += outcome.nodes_scanned
            if dropped_at is None:
                dropped_at = outcome.dropped_at
            matched = {d for d in data if isinstance(d, str)}
            names = matched if names is None else (names & matched)
        return QueryOutcome(
            query=query.describe(),
            results=tuple(sorted(names or ())),
            satisfied=dropped_at is None,
            logical_hops=logical,
            physical_hops=physical,
            nodes_scanned=scanned,
            dropped_at=dropped_at,
        )

    def _execute_single(self, query, entry_label, rng):
        """Run one single-attribute query; returns ``(QueryOutcome,
        union-of-data of matched nodes)`` (the data feed multi-attribute
        intersection)."""
        anchor, lo, hi = self._query_band(query)
        tree = self.tree
        router = self.router
        router.sync()
        fragments = router.fragment_roots()
        if not fragments:
            return QueryOutcome(
                query=query.describe(), results=(), satisfied=True,
                logical_hops=0, physical_hops=0, nodes_scanned=0,
            ), set()
        if len(fragments) > 1 or tree.root is None:
            # Crash-damaged forest (orphan fragments, or a destroyed root
            # with survivors): the frozen walking resolver sweeps every
            # fragment so the answer stays oracle-complete.
            return self._search_walk(query, anchor, lo, hi, entry_label, rng)
        if entry_label is None and rng is not None:
            entry_label = self.random_entry_label(rng)
        scan_root, visited = router.subtree_scan(anchor, lo, hi)

        # -- routing leg: entry -> join -> scan root ------------------------
        logical = physical = 0
        dropped_at = None
        if entry_label is not None:
            e_depth, e_rpc, _, frag = router.node_info(entry_label)
            if frag != tree.root.label:  # pragma: no cover - defensive
                return self._search_walk(query, anchor, lo, hi, entry_label, rng)
            if scan_root is None:
                # No node covers the anchor: the request still climbs to
                # its join with the anchor's spine and descends the spine,
                # dying at its tip — the deepest node that could have had
                # a band-compatible child (a distributed scan token only
                # discovers the band is empty by walking there).  The
                # tip's host is charged.
                labels, _ = router.spine(anchor)
                j = 0
                last = len(labels) - 1
                while j < last and entry_label.startswith(labels[j + 1]):
                    j += 1
                if labels:
                    j_depth, j_rpc, _, _ = router.node_info(labels[j])
                    tip_depth, tip_rpc, tip_peer, _ = router.node_info(labels[-1])
                    tip_label = labels[-1]
                else:
                    # Root label diverges from the anchor: the climb dead-
                    # ends at the root itself.
                    j_depth = j_rpc = tip_depth = tip_rpc = 0
                    tip_label = tree.root.label
                    _, _, tip_peer, _ = router.node_info(tip_label)
                if not tip_peer.try_process(tip_label):
                    dropped_at = tip_peer.id
                return QueryOutcome(
                    query=query.describe(), results=(),
                    satisfied=dropped_at is None,
                    logical_hops=(e_depth - j_depth) + (tip_depth - j_depth),
                    physical_hops=(e_rpc - j_rpc) + (tip_rpc - j_rpc),
                    nodes_scanned=0, dropped_at=dropped_at,
                ), set()
            sr_depth, sr_rpc, _, _ = router.node_info(scan_root)
            if entry_label.startswith(scan_root):
                # Entry inside the scan subtree: the route is the straight
                # climb to the scan root (the first ancestor whose subtree
                # covers the whole band).
                logical = e_depth - sr_depth
                physical = e_rpc - sr_rpc
            else:
                labels, _ = router.spine(anchor)
                j = 0
                last = len(labels) - 1
                while j < last and entry_label.startswith(labels[j + 1]):
                    j += 1
                if labels:
                    j_depth, j_rpc, _, _ = router.node_info(labels[j])
                else:
                    # Root label extends the anchor: the scan root *is* the
                    # root, and the climb runs the entry's whole root path.
                    j_depth = j_rpc = 0
                logical = (e_depth - j_depth) + (sr_depth - j_depth)
                physical = (e_rpc - j_rpc) + (sr_rpc - j_rpc)
        elif scan_root is None:
            return QueryOutcome(
                query=query.describe(), results=(), satisfied=True,
                logical_hops=0, physical_hops=0, nodes_scanned=0,
            ), set()

        # -- scan leg: charge every visited node's host ----------------------
        results, data, scan_logical, scan_physical, drop = self._run_scan(
            query, visited
        )
        if dropped_at is None:
            dropped_at = drop
        return QueryOutcome(
            query=query.describe(),
            results=tuple(sorted(results)),
            satisfied=dropped_at is None,
            logical_hops=logical + scan_logical,
            physical_hops=physical + scan_physical,
            nodes_scanned=len(visited),
            dropped_at=dropped_at,
        ), data

    def _run_scan(self, query, visited):
        """Charge the hosts of ``visited`` (in DFS order) and collect the
        filled labels matching ``query``: ``(results, data, logical,
        physical, dropped_at)``.  One logical hop per scan forward; a
        physical hop whenever consecutive visits change peers."""
        host_of = self.mapping.host_of
        node_of = self.tree.node
        matches = query.matches
        results: list[str] = []
        data: set = set()
        physical = 0
        prev_peer = None
        dropped_at = None
        for lbl in visited:
            peer = host_of(lbl)
            if prev_peer is not None and peer is not prev_peer:
                physical += 1
            prev_peer = peer
            if not peer.try_process(lbl) and dropped_at is None:
                dropped_at = peer.id
            node = node_of(lbl)
            if node.data and matches(lbl):
                results.append(lbl)
                data.update(node.data)
        logical = max(0, len(visited) - 1)
        return results, data, logical, physical, dropped_at

    def _search_walk(self, query, anchor, lo, hi, entry_label, rng):
        """Walking set-query resolver for damaged forests: climb within the
        entry's fragment, then sweep *every* fragment whose band overlaps
        the query (one extra logical+physical jump per additional
        fragment), so orphaned keys still appear in the answer."""
        tree = self.tree
        router = self.router
        if entry_label is None and rng is not None:
            entry_label = self.random_entry_label(rng)
        logical = physical = 0
        climb_top = None
        if entry_label is not None:
            node = tree.node(entry_label)
            if node is None:
                raise KeyError(f"entry node {entry_label!r} not in the tree")
            host_of = self.mapping.host_of
            prev_peer = host_of(node.label)
            # Climb until this node's subtree covers the band (its label
            # prefixes the anchor, or extends it)...
            while (
                not (anchor.startswith(node.label) or node.label.startswith(anchor))
                and node.parent is not None
            ):
                node = node.parent
                peer = host_of(node.label)
                if peer is not prev_peer:
                    physical += 1
                prev_peer = peer
                logical += 1
            # ...then, if the entry started *inside* the scan subtree, keep
            # climbing to the highest covering node (the scan root) so the
            # scan sweeps the whole band, not just the entry's subtree.
            while node.parent is not None and node.parent.label.startswith(anchor):
                node = node.parent
                peer = host_of(node.label)
                if peer is not prev_peer:
                    physical += 1
                prev_peer = peer
                logical += 1
            climb_top = node

        results: list[str] = []
        data: set = set()
        scanned = 0
        dropped_at = None
        fragments = 0
        for frag_label in router.fragment_roots():
            frag_root = tree.node(frag_label)
            if climb_top is not None and router.node_info(entry_label)[3] == frag_label:
                covers = anchor.startswith(climb_top.label) or climb_top.label.startswith(
                    anchor
                )
                start = climb_top if covers else frag_root
            else:
                start = frag_root
            cover = _covering_node(start, anchor)
            if cover is None:
                continue
            # Descent edges from ``start`` down to the covering node.
            depth_start = router.node_info(start.label)[0]
            depth_cover = router.node_info(cover.label)[0]
            fragments += 1
            if fragments > 1:
                logical += 1  # cross-fragment jump (no tree edge)
                physical += 1
            logical += depth_cover - depth_start
            physical += (
                router.node_info(cover.label)[1] - router.node_info(start.label)[1]
            )
            visited = _pruned_dfs(cover, lo, hi)
            scanned += len(visited)
            frag_results, frag_data, s_log, s_phys, drop = self._run_scan(
                query, visited
            )
            results.extend(frag_results)
            data.update(frag_data)
            logical += s_log
            physical += s_phys
            if dropped_at is None:
                dropped_at = drop
        return QueryOutcome(
            query=query.describe(),
            results=tuple(sorted(results)),
            satisfied=dropped_at is None,
            logical_hops=logical,
            physical_hops=physical,
            nodes_scanned=scanned,
            dropped_at=dropped_at,
        ), data

    # -- time bookkeeping -------------------------------------------------------

    def end_time_unit(self) -> None:
        """Close the current time unit: aggregate per-node loads for the
        balancers and reset every peer's capacity budget.

        Inlines :meth:`repro.peers.peer.Peer.end_time_unit` (same state
        transitions) and skips peers idle across both the closing and the
        previous unit — their transition is a no-op — because on a
        10⁴-peer ring under destination accounting almost every peer is
        idle almost every unit.  The ``used`` guard matters: the fault
        injector exhausts a partitioned peer's budget directly, without
        recording node load, and that budget must still reset."""
        loads: Dict[str, int] = {}
        get = loads.get
        for peer in self.ring.peers_unordered():
            node_load = peer.node_load
            if node_load:
                for label, count in node_load.items():
                    loads[label] = get(label, 0) + count
            elif not peer.last_node_load and not peer.used:
                continue
            peer.last_node_load = node_load
            peer.node_load = {}
            peer.used = 0
        self.last_unit_load = loads
        self.time_unit += 1

    def node_last_load(self, label: str) -> int:
        return self.last_unit_load.get(label, 0)

    # -- introspection ----------------------------------------------------------

    @property
    def n_peers(self) -> int:
        return len(self.ring)

    @property
    def n_nodes(self) -> int:
        return len(self.tree)

    def registered_keys(self) -> set[str]:
        return self.tree.keys()

    @property
    def registered_key_count(self) -> int:
        """Number of currently registered keys, O(1) — the counter the
        runner reads every time unit instead of walking the whole tree
        (see :attr:`repro.core.pgcp.PGCPTree.filled_count`)."""
        return self.tree.filled_count

    def check_invariants(self) -> None:
        """Full-system consistency: tree Definition 1, ring order, mapping
        rule, and node-index completeness."""
        self.tree.check_invariants()
        self.ring.check_invariants()
        if hasattr(self.mapping, "check_invariants"):
            self.mapping.check_invariants()
        assert set(self.node_index) == self.tree.labels(), (
            "node index out of sync with the tree"
        )


def corpus_peer_id_sampler(
    corpus,
    alphabet: Alphabet = PRINTABLE,
    suffix_length: int = 8,
    alignment: float = 0.15,
    prefix_digits: int = 2,
):
    """Build a peer-identifier sampler partially aligned with a key corpus.

    Peers and tree nodes share one identifier space (paper Section 3).  With
    probability ``alignment`` a peer names itself near the service namespace
    (a random corpus key truncated to ``prefix_digits`` digits plus a random
    suffix — peers cluster around the broad service families, not on exact
    keys); otherwise its id is uniform.  This models the paper's premise
    that "some regions of the ring are more densely populated than others"
    (the KC motivation) while keeping the density imperfect — fully uniform
    ids would strand whole service-name clusters on one peer and make the
    no-LB baseline collapse, fully aligned ids would make placement trivial.
    """
    keys = list(corpus)
    if not keys:
        raise ValueError("corpus must not be empty")
    if not 0.0 <= alignment <= 1.0:
        raise ValueError("alignment must be in [0, 1]")

    def sample(rng) -> str:
        if rng.random() < alignment:
            base = keys[rng.randrange(len(keys))][:prefix_digits]
            return base + alphabet.random_identifier(rng, suffix_length)
        return alphabet.random_identifier(rng, suffix_length + prefix_digits)

    return sample
