"""Protocol message types (paper Algorithms 1–3).

Every message the pseudo-code exchanges is a frozen dataclass here.  Node-
addressed messages carry ``node`` — the label of the logical node they are
for; peer-addressed messages are delivered to a peer endpoint directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple


@dataclass(frozen=True)
class NodePayload:
    """The full state of a logical node in transit (SearchingHost / Host /
    YourInformation carry these): key, father, children, data."""

    label: str
    father: Optional[str]
    children: FrozenSet[str] = frozenset()
    data: Tuple[object, ...] = ()


# -- Algorithm 1/2: peer insertion -----------------------------------------


@dataclass(frozen=True)
class PeerJoin:
    """<PeerJoin, P, s> — routed through the tree (node-addressed).

    ``state`` 0 = upward phase, 1 = downward phase (paper lines 1.03/1.11).
    """

    node: str
    joiner: str
    state: int
    capacity: int = 10


@dataclass(frozen=True)
class NewPredecessor:
    """<NewPredecessor, P> — peer-addressed; forwarded along successors
    until it reaches the joiner's future successor (Algorithm 2)."""

    joiner: str
    capacity: int


@dataclass(frozen=True)
class YourInformation:
    """<YourInformation, (pred, succ, ν_P)> — everything the joiner needs
    to start operating (paper line 2.08 sends (Q_pred, Q, ν_P))."""

    pred: str
    succ: str
    nodes: Tuple[NodePayload, ...]


@dataclass(frozen=True)
class UpdateSuccessor:
    """<UpdateSuccessor, P> — tells the old predecessor its successor is
    now the joiner (paper line 2.09)."""

    new_successor: str


@dataclass(frozen=True)
class LeaveTransfer:
    """<LeaveTransfer, (pred, ν_L)> — a gracefully departing peer hands its
    hosted nodes and its predecessor pointer to its successor.  (The paper
    models leaves in the simulation but gives no pseudo-code; this is the
    symmetric inverse of Algorithm 2's join split.)"""

    pred: str
    nodes: Tuple[NodePayload, ...]


@dataclass(frozen=True)
class UpdatePredecessor:
    """<UpdatePredecessor, P> — successor-side pointer fix-up on leave."""

    new_predecessor: str


# -- Algorithm 3: data insertion --------------------------------------------


@dataclass(frozen=True)
class DataInsertion:
    """<DataInsertion, k> — node-addressed registration request."""

    node: str
    key: str
    datum: object = None


@dataclass(frozen=True)
class SearchingHost:
    """<SearchingHost, (l, f, C, δ)> — node-addressed; descends to the
    highest node lower than ``payload.label`` (paper lines 3.32–3.37)."""

    node: str
    payload: NodePayload


@dataclass(frozen=True)
class Host:
    """<Host, (l, f, C, δ)> — peer-addressed; instructs a peer to run the
    node.  Forwarded along ring successors until the mapping rule holds."""

    payload: NodePayload


@dataclass(frozen=True)
class UpdateChild:
    """<UpdateChild, (old, new)> — node-addressed child-set fix-up
    (paper lines 3.19/3.29)."""

    node: str
    old: str
    new: str


# -- discovery (Section 2 architecture; no pseudo-code in the paper) ---------


@dataclass(frozen=True)
class DiscoveryRequest:
    """A client lookup entering the tree at ``node``, seeking ``key``.
    ``reply_to`` is the client endpoint for the response."""

    node: str
    key: str
    reply_to: str
    hops: int = 0


@dataclass(frozen=True)
class DiscoveryReply:
    """Response to a :class:`DiscoveryRequest`."""

    key: str
    found: bool
    data: Tuple[object, ...] = ()
    hops: int = 0


@dataclass(frozen=True)
class SetQueryRequest:
    """A set query (prefix completion or lexicographic range) walking the
    tree as a *scan token*: it climbs from its entry node to the node
    covering the query band's anchor, then traverses the scan subtree in
    DFS order, carrying the accumulated matches and the labels still to
    visit.  One message forward = one hop, so the reply's hop count equals
    the macro model's climb + descent + scan-forward accounting.

    ``kind`` is ``"prefix"`` or ``"range"``; for a prefix query ``lo`` is
    the prefix and ``hi`` is unused (``""``).  ``phase`` 0 = routing
    (climb/descend), 1 = scanning.
    """

    node: str
    kind: str
    lo: str
    hi: str
    reply_to: str
    phase: int = 0
    pending: Tuple[str, ...] = ()
    keys: Tuple[str, ...] = ()
    hops: int = 0


@dataclass(frozen=True)
class SetQueryReply:
    """Response to a :class:`SetQueryRequest`: the sorted matched keys."""

    kind: str
    lo: str
    hi: str
    keys: Tuple[str, ...] = ()
    hops: int = 0
