"""Discovery-request routing through the PGCP tree.

Paper, Section 2 (*Architecture*): "When a discovery request sent by a client
enters the tree, on a random node, the request moves upward until reaching a
node whose subtree contains the requested node and then moves [downward] to
this node."

This module computes the *logical path* (sequence of node labels) of a
request; capacity accounting and physical-hop counting happen in
:class:`repro.dlpt.system.DLPTSystem`, which charges each visited node's
hosting peer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.ids import common_prefix_len
from ..core.pgcp import PGCPNode, PGCPTree


@dataclass(frozen=True)
class RoutePath:
    """The logical trajectory of one request.

    ``labels`` lists every node visited, entry first.  ``found`` is True when
    the final node's label equals the requested key (and, for discovery
    semantics, holds data — structural nodes are reported by the caller).
    """

    labels: list[str]
    found: bool

    @property
    def logical_hops(self) -> int:
        """Tree edges traversed (Figure 9's "Logical hops" series counts
        hops, so a request served by its entry node costs 0)."""
        return len(self.labels) - 1


def route_path(tree: PGCPTree, entry_label: str, key: str) -> RoutePath:
    """Compute the up-then-down path from ``entry_label`` towards ``key``.

    The upward phase climbs to the first ancestor whose label prefixes the
    key; the downward phase descends through children sharing ever longer
    prefixes.  If the key is absent, the path ends at the deepest node that
    would be its insertion neighbourhood and ``found`` is False.
    """
    node = tree.node(entry_label)
    if node is None:
        raise KeyError(f"entry node {entry_label!r} not in the tree")
    labels = [node.label]

    # -- upward phase -----------------------------------------------------
    while not key.startswith(node.label):
        parent = node.parent
        if parent is None:
            # Reached the root and it still does not prefix the key: the key
            # lies outside the tree's label band (only possible for keys
            # absent from the tree).
            return RoutePath(labels=labels, found=False)
        node = parent
        labels.append(node.label)

    # -- downward phase -----------------------------------------------------
    while node.label != key:
        child = node.child_towards(key)
        if child is None:
            return RoutePath(labels=labels, found=False)
        cpl = common_prefix_len(child.label, key)
        if cpl < len(child.label):
            # The child diverges from the key before its own label ends; the
            # key, if it existed, would sit between node and child.
            if cpl == len(key):
                # key is a proper prefix of child: its node does not exist.
                return RoutePath(labels=labels, found=False)
            return RoutePath(labels=labels, found=False)
        node = child
        labels.append(node.label)

    return RoutePath(labels=labels, found=True)


def route_up_only(tree: PGCPTree, entry_label: str, key: str) -> list[str]:
    """Just the upward phase (used by subtree queries: completion/range
    requests stop at the subtree root covering the prefix)."""
    node = tree.node(entry_label)
    if node is None:
        raise KeyError(f"entry node {entry_label!r} not in the tree")
    labels = [node.label]
    while not key.startswith(node.label) and node.parent is not None:
        node = node.parent
        labels.append(node.label)
    return labels


@dataclass(frozen=True)
class RequestOutcome:
    """Result of executing a discovery request against the live system."""

    key: str
    satisfied: bool
    found: bool
    logical_hops: int
    physical_hops: int
    dropped_at: Optional[str] = None

    @property
    def dropped(self) -> bool:
        return self.dropped_at is not None


def subtree_root_for_prefix(tree: PGCPTree, prefix: str) -> Optional[PGCPNode]:
    """The highest node whose subtree contains every key extending
    ``prefix`` (used by completion and hot-spot request generation)."""
    if tree.root is None:
        return None
    node = tree.root
    if common_prefix_len(node.label, prefix) < min(len(node.label), len(prefix)):
        return None
    while len(node.label) < len(prefix):
        child = node.child_towards(prefix)
        if child is None:
            return None
        if common_prefix_len(child.label, prefix) < min(len(child.label), len(prefix)):
            return None
        node = child
    return node
