"""Discovery-request routing through the PGCP tree.

Paper, Section 2 (*Architecture*): "When a discovery request sent by a client
enters the tree, on a random node, the request moves upward until reaching a
node whose subtree contains the requested node and then moves [downward] to
this node."

This module computes the *logical path* (sequence of node labels) of a
request; capacity accounting and physical-hop counting happen in
:class:`repro.dlpt.system.DLPTSystem`, which charges each visited node's
hosting peer.

Two resolution strategies coexist:

* :func:`route_path` — the straightforward walk (parent pointers upward,
  per-step child probes downward).  It remains the semantic definition,
  serves the ``transit`` accounting ablation (which must visit every node),
  and handles crash-damaged forests where a request may enter a detached
  fragment.
* :class:`DiscoveryRouter` — the indexed fast path behind
  :meth:`DLPTSystem.discover`.  It memoises, per key and guarded by the
  tree's structural version counter, the *spine* (the root-path chain of
  nodes whose labels prefix the key — where every downward phase ends), and
  per node, guarded additionally by the mapping's host-assignment version,
  the node's depth, its root-path peer-change count and its hosting peer.
  A request then resolves with one prefix scan over the spine instead of
  re-walking the tree: the up-hop and peer-change totals follow
  arithmetically from the cached per-node counts, because both route legs
  lie on root paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.ids import common_prefix_len
from ..core.pgcp import PGCPNode, PGCPTree


@dataclass(frozen=True)
class RoutePath:
    """The logical trajectory of one request.

    ``labels`` lists every node visited, entry first.  ``found`` is True when
    the final node's label equals the requested key (and, for discovery
    semantics, holds data — structural nodes are reported by the caller).
    """

    labels: list[str]
    found: bool

    @property
    def logical_hops(self) -> int:
        """Tree edges traversed (Figure 9's "Logical hops" series counts
        hops, so a request served by its entry node costs 0)."""
        return len(self.labels) - 1


def route_path(tree: PGCPTree, entry_label: str, key: str) -> RoutePath:
    """Compute the up-then-down path from ``entry_label`` towards ``key``.

    The upward phase climbs to the first ancestor whose label prefixes the
    key; the downward phase descends through children sharing ever longer
    prefixes.  If the key is absent, the path ends at the deepest node that
    would be its insertion neighbourhood and ``found`` is False.
    """
    node = tree.node(entry_label)
    if node is None:
        raise KeyError(f"entry node {entry_label!r} not in the tree")
    labels = [node.label]

    # -- upward phase -----------------------------------------------------
    while not key.startswith(node.label):
        parent = node.parent
        if parent is None:
            # Reached the root and it still does not prefix the key: the key
            # lies outside the tree's label band (only possible for keys
            # absent from the tree).
            return RoutePath(labels=labels, found=False)
        node = parent
        labels.append(node.label)

    # -- downward phase -----------------------------------------------------
    while node.label != key:
        child = node.child_towards(key)
        if child is None:
            return RoutePath(labels=labels, found=False)
        cpl = common_prefix_len(child.label, key)
        if cpl < len(child.label):
            # The child diverges from the key before its own label ends; the
            # key, if it existed, would sit between node and child.
            if cpl == len(key):
                # key is a proper prefix of child: its node does not exist.
                return RoutePath(labels=labels, found=False)
            return RoutePath(labels=labels, found=False)
        node = child
        labels.append(node.label)

    return RoutePath(labels=labels, found=True)


def route_up_only(tree: PGCPTree, entry_label: str, key: str) -> list[str]:
    """Just the upward phase (used by subtree queries: completion/range
    requests stop at the subtree root covering the prefix)."""
    node = tree.node(entry_label)
    if node is None:
        raise KeyError(f"entry node {entry_label!r} not in the tree")
    labels = [node.label]
    while not key.startswith(node.label) and node.parent is not None:
        node = node.parent
        labels.append(node.label)
    return labels


@dataclass(frozen=True)
class RequestOutcome:
    """Result of executing a discovery request against the live system."""

    key: str
    satisfied: bool
    found: bool
    logical_hops: int
    physical_hops: int
    dropped_at: Optional[str] = None

    @property
    def dropped(self) -> bool:
        return self.dropped_at is not None


@dataclass
class BatchOutcome:
    """Aggregated counters of one batch of discovery requests.

    The hop totals and the histogram cover *satisfied* requests only,
    mirroring how :class:`repro.experiments.metrics.UnitStats` accounts
    them; per-request outcome objects are never materialised."""

    issued: int = 0
    satisfied: int = 0
    dropped: int = 0
    not_found: int = 0
    logical_hops: int = 0
    physical_hops: int = 0
    #: hops → number of satisfied requests taking that many logical hops.
    hop_histogram: Dict[int, int] = field(default_factory=dict)


#: Cached per-node route constants: ``(depth, root-path peer changes,
#: hosting peer, fragment-root label)``.
_NodeInfo = Tuple[int, int, object, str]


class DiscoveryRouter:
    """Version-guarded route index over one tree + mapping pair.

    ``spine(key)`` is the chain of nodes whose labels prefix ``key``; in a
    PGCP tree they form a parent-child chain starting at the root (a label
    prefixing ``key`` forces every shallower prefix — in particular the
    root's — to prefix it too), and every discovery route is *up the entry's
    root path to the deepest spine node prefixing the entry, then down the
    spine to its end*.  With per-node ``(depth, root-path peer-change
    count)`` cached, hop counts reduce to three lookups and subtractions.

    Cache validity: spines depend only on tree structure and are guarded by
    :attr:`PGCPTree.version`; node info additionally depends on the host
    assignment and is guarded by the mapping's ``version`` counter.  A
    mapping without a counter (a custom strategy) degrades safely: node
    info is recomputed on every :meth:`sync`.
    """

    __slots__ = ("tree", "mapping", "_tree_version", "_map_version",
                 "_spines", "_info", "_scans", "_fragments",
                 "_warmed", "_spines_warmed",
                 "served_since_invalidate", "batches_since_invalidate")

    def __init__(self, tree: PGCPTree, mapping) -> None:
        self.tree = tree
        self.mapping = mapping
        self._tree_version = -1
        self._map_version: object = object()  # never equal until first sync
        #: key -> (spine labels, found)
        self._spines: Dict[str, Tuple[tuple, bool]] = {}
        self._info: Dict[str, _NodeInfo] = {}
        #: (anchor, lo, hi) -> (scan-root label or None, DFS-ordered visited
        #: labels).  Purely structural (labels, never data), so it shares
        #: the tree-version guard with the spine memo; matched *keys* are
        #: recomputed per query because data-only inserts do not bump the
        #: version.
        self._scans: Dict[Tuple[str, Optional[str], Optional[str]],
                          Tuple[Optional[str], Tuple[str, ...]]] = {}
        #: Labels of all fragment roots (parentless nodes) — length 1 on a
        #: healthy tree, more after crash damage; None until first use.
        self._fragments: Optional[Tuple[str, ...]] = None
        self._warmed = False
        self._spines_warmed = False
        #: Requests served since the node-info cache was last invalidated —
        #: the signal deciding when a bulk :meth:`warm` pays for itself.
        self.served_since_invalidate = 0
        #: Batches served since the last invalidation: once one full batch
        #: boundary passes without a version change, the platform is stable
        #: (a flood or scenario loop, not a churning run) and bulk warming
        #: amortises over every remaining batch.
        self.batches_since_invalidate = 0

    def sync(self) -> None:
        """Drop whatever the structural/mapping version counters invalidate.
        Call once before a request (or once per batch — nothing inside a
        batch mutates the tree or the mapping)."""
        tv = self.tree.version
        mv = getattr(self.mapping, "version", None)
        if tv != self._tree_version:
            self._spines.clear()
            self._info.clear()
            self._scans.clear()
            self._fragments = None
            self._tree_version = tv
            self._map_version = mv
            self._warmed = False
            self._spines_warmed = False
            self.served_since_invalidate = 0
            self.batches_since_invalidate = 0
        elif mv is None or mv != self._map_version:
            self._info.clear()
            self._map_version = mv
            self._warmed = False
            self.served_since_invalidate = 0
            self.batches_since_invalidate = 0

    # -- cached lookups ----------------------------------------------------

    def spine(self, key: str) -> Tuple[tuple, bool]:
        """``(labels, found)`` of the key's spine; an empty tuple when the
        root does not prefix the key (the upward phase then dead-ends at
        the root)."""
        s = self._spines.get(key)
        if s is None:
            s = self._build_spine(key)
            self._spines[key] = s
        return s

    def _build_spine(self, key: str) -> Tuple[tuple, bool]:
        root = self.tree.root
        if root is None or not key.startswith(root.label):
            return ((), False)
        node = root
        label = root.label
        labels = [label]
        # Single pass over the key: each child label is verified by one
        # ``startswith`` (no per-step GCP recomputation), and the branch
        # digit probe is a dict lookup, never a child scan.
        while label != key:
            child = node.children.get(key[len(label)])
            if child is None:
                break
            clabel = child.label
            if not key.startswith(clabel):
                break
            node = child
            label = clabel
            labels.append(label)
        return tuple(labels), label == key

    def warm(self) -> None:
        """Bulk-populate the caches for the root's fragment in one DFS —
        one cheap pass instead of thousands of lazy ancestor walks.  Worth
        it when a batch is about to touch a sizable share of the tree;
        orphan fragments (crash damage) stay lazy.

        The same pass pre-builds the spine of every tree label: for a key
        that *is* a label, the spine is exactly its root path (every
        ancestor's label prefixes it, and no other node can), so a flood
        of registered-key requests starts with a fully warm spine memo.
        Idempotent per invalidation epoch (lazily cached entries are
        overwritten with identical values); callers :meth:`sync` first."""
        root = self.tree.root
        if root is None or self._warmed:
            return
        self._warmed = True
        host_of = self.mapping.host_of
        info = self._info
        spines = None if self._spines_warmed else self._spines
        self._spines_warmed = True
        root_label = root.label
        root_peer = host_of(root_label)
        info[root_label] = (0, 0, root_peer, root_label)
        root_spine = (root_label,)
        if spines is not None:
            spines[root_label] = (root_spine, True)
        stack = [(root, 0, 0, root_peer, root_spine)]
        while stack:
            node, depth, changes, peer, path = stack.pop()
            depth += 1
            for child in node.children.values():
                lbl = child.label
                p = host_of(lbl)
                r = changes + (p is not peer)
                info[lbl] = (depth, r, p, root_label)
                child_path = path + (lbl,)
                if spines is not None:
                    spines[lbl] = (child_path, True)
                if child.children:
                    stack.append((child, depth, r, p, child_path))

    def node_info(self, label: str) -> _NodeInfo:
        """``(depth, root-path peer changes, hosting peer, fragment root)``
        of ``label``, memoised along the whole ancestor chain."""
        info = self._info.get(label)
        if info is not None:
            return info
        node = self.tree.node(label)
        if node is None:
            raise KeyError(f"entry node {label!r} not in the tree")
        chain = []
        depth, changes, peer, root_label = -1, 0, None, label
        while True:
            cached = self._info.get(node.label)
            if cached is not None:
                depth, changes, peer, root_label = cached
                break
            chain.append(node)
            if node.parent is None:
                root_label = node.label
                break
            node = node.parent
        host_of = self.mapping.host_of
        info_map = self._info
        for n in reversed(chain):
            p = host_of(n.label)
            depth += 1
            if peer is not None and p is not peer:
                changes += 1
            peer = p
            info_map[n.label] = (depth, changes, peer, root_label)
        return info_map[label]

    # -- set queries -------------------------------------------------------

    def fragment_roots(self) -> Tuple[str, ...]:
        """Sorted labels of all parentless nodes — exactly one on a healthy
        tree, several while crash damage leaves orphan fragments.  Memoised
        per tree version (crash surgery bumps it per lost node, so damage
        always invalidates)."""
        frags = self._fragments
        if frags is None:
            frags = tuple(sorted(
                n.label for n in self.tree.nodes() if n.parent is None
            ))
            self._fragments = frags
        return frags

    def subtree_scan(
        self, anchor: str, lo: Optional[str] = None, hi: Optional[str] = None
    ) -> Tuple[Optional[str], Tuple[str, ...]]:
        """Structural scan for the band anchored at ``anchor`` in the root's
        fragment: ``(scan-root label, DFS-ordered visited labels)``.

        ``lo``/``hi`` of ``None`` means prefix mode (every node under the
        scan root is visited); a range band prunes branches exactly like
        :meth:`PGCPTree.range_query`.  The result is label-only — which
        visited nodes are *filled* is the caller's per-query concern —
        so it is safe to memoise under the structural version guard:
        data-only inserts never change it, node creation/removal clears it
        via :meth:`sync`.  ``(None, ())`` when no node covers ``anchor``.
        """
        key = (anchor, lo, hi)
        cached = self._scans.get(key)
        if cached is None:
            root = self.tree.root
            node = None if root is None else _covering_node(root, anchor)
            if node is None:
                cached = (None, ())
            else:
                cached = (node.label, _pruned_dfs(node, lo, hi))
            self._scans[key] = cached
        return cached

    # -- resolution --------------------------------------------------------

    def resolve(self, key: str, entry_label: str):
        """Destination and hop counts of the ``entry → key`` route.

        Returns ``(dest_label, dest_peer, found, logical_hops,
        physical_hops)`` — everything destination-mode accounting needs —
        or ``None`` when the entry lies outside the root's fragment (a
        crash-damaged forest), in which case the caller must fall back to
        the walking resolver.  Raises :class:`KeyError` on an unknown
        entry, like :func:`route_path`.
        """
        d_e, rpc_e, _, frag = self.node_info(entry_label)
        root = self.tree.root
        if root is None or frag != root.label:
            return None
        labels, found = self.spine(key)
        if not labels:
            # Nothing prefixes the key: the request climbs to the root and
            # dies there (the root's host is still charged).
            dest = root.label
            _, _, dest_peer, _ = self.node_info(dest)
            return dest, dest_peer, False, d_e, rpc_e
        dest = labels[-1]
        # Join = deepest spine node whose label prefixes the entry (spine
        # prefixes are nested, so the predicate is monotone down the
        # chain); random entries rarely share more than the root, making
        # the forward scan with C-level ``startswith`` cheaper than a GCP
        # computation plus binary search.
        j = 0
        last = len(labels) - 1
        while j < last and entry_label.startswith(labels[j + 1]):
            j += 1
        _, rpc_end, dest_peer, _ = self.node_info(dest)
        logical = (d_e - j) + (last - j)
        if j:
            _, rpc_j, _, _ = self.node_info(labels[j])
            physical = (rpc_e - rpc_j) + (rpc_end - rpc_j)
        else:
            physical = rpc_e + rpc_end  # the join is the root: rpc 0
        return dest, dest_peer, found, logical, physical


def _covering_node(start: PGCPNode, prefix: str) -> Optional[PGCPNode]:
    """Descend from ``start`` to the highest node of its fragment whose
    subtree contains every key extending ``prefix`` (``None`` when the
    fragment has no such node).  Definition 1 makes the descent digit
    unique, so the covering node — and hence every scan root — is unique."""
    node = start
    if common_prefix_len(node.label, prefix) < min(len(node.label), len(prefix)):
        return None
    while len(node.label) < len(prefix):
        child = node.child_towards(prefix)
        if child is None:
            return None
        if common_prefix_len(child.label, prefix) < min(len(child.label), len(prefix)):
            return None
        node = child
    return node


def subtree_root_for_prefix(tree: PGCPTree, prefix: str) -> Optional[PGCPNode]:
    """The highest node whose subtree contains every key extending
    ``prefix`` (used by completion and hot-spot request generation)."""
    if tree.root is None:
        return None
    return _covering_node(tree.root, prefix)


def _pruned_dfs(node: PGCPNode, lo: Optional[str], hi: Optional[str]) -> Tuple[str, ...]:
    """Pre-order DFS labels under ``node`` (children in label order),
    pruned to the ``[lo, hi]`` band when given — the same subtree-band
    argument as :meth:`PGCPTree.range_query`: every key under a node
    extends its label, so a branch whose label is ``> hi``, or ``< lo``
    without prefixing ``lo``, cannot contain a match."""
    out = []
    stack = [node]
    while stack:
        n = stack.pop()
        lbl = n.label
        if lo is not None and (lbl > hi or (lbl < lo and not lo.startswith(lbl))):
            continue
        out.append(lbl)
        if n.children:
            stack.extend(sorted(
                n.children.values(), key=lambda c: c.label, reverse=True
            ))
    return tuple(out)


@dataclass(frozen=True)
class QueryOutcome:
    """Result of one set query (completion / range / multi-attribute)
    against the live system.

    ``results`` is the complete sorted answer — the macro model has global
    knowledge, so capacity exhaustion degrades *satisfaction*, never
    completeness (``dropped_at`` names the first exhausted host).  Hop
    accounting: ``logical_hops`` = climb edges + descent edges + scan
    forwards (visited nodes minus one per scanned fragment);
    ``physical_hops`` counts the hops whose endpoints live on different
    peers, plus one jump per extra fragment on a damaged forest.
    """

    query: str
    results: Tuple[str, ...]
    satisfied: bool
    logical_hops: int
    physical_hops: int
    nodes_scanned: int
    dropped_at: Optional[str] = None

    @property
    def dropped(self) -> bool:
        return self.dropped_at is not None


@dataclass
class QueryBatchOutcome:
    """Aggregated counters of one batch of set queries — the count-dict
    mirror of :class:`BatchOutcome` for :meth:`DLPTSystem.search_batch`.

    ``empty`` counts queries whose (complete) answer had no keys; the hop
    totals and histogram cover satisfied queries only, matching how
    request hops feed :class:`repro.experiments.metrics.UnitStats`."""

    issued: int = 0
    satisfied: int = 0
    dropped: int = 0
    empty: int = 0
    results_total: int = 0
    logical_hops: int = 0
    physical_hops: int = 0
    nodes_scanned: int = 0
    #: hops → number of satisfied queries taking that many logical hops.
    hop_histogram: Dict[int, int] = field(default_factory=dict)

    def absorb(self, outcome: QueryOutcome) -> None:
        self.issued += 1
        self.results_total += len(outcome.results)
        self.nodes_scanned += outcome.nodes_scanned
        if not outcome.results:
            self.empty += 1
        if outcome.dropped_at is not None:
            self.dropped += 1
            return
        self.satisfied += 1
        self.logical_hops += outcome.logical_hops
        self.physical_hops += outcome.physical_hops
        h = outcome.logical_hops
        self.hop_histogram[h] = self.hop_histogram.get(h, 0) + 1
