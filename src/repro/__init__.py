"""repro - reproduction of *Efficiency of Tree-Structured Peer-to-Peer
Service Discovery Systems* (Caron, Desprez, Tedeschi; INRIA RR-6557, 2008).

The package implements the paper's DLPT overlay end-to-end:

* :mod:`repro.core` - identifier algebra and the reference PGCP tree
  (Definition 1) with completion/range/multi-attribute queries;
* :mod:`repro.sim` - a discrete-event engine and message network;
* :mod:`repro.peers` - the peer ring, capacities and churn models;
* :mod:`repro.dlpt` - the self-contained overlay: lexicographic mapping,
  request routing, the macro system, and the asynchronous Algorithms 1-3;
* :mod:`repro.lb` - load balancing: No-LB, MLT and KC (k-choices);
* :mod:`repro.dht` / :mod:`repro.baselines` - Chord, the DHT (random)
  mapping, PHT and P-Grid comparators;
* :mod:`repro.workloads` - grid service-name corpora and request models;
* :mod:`repro.experiments` - harnesses regenerating every figure and table.

Quickstart::

    import random
    from repro import DLPTSystem, DiscoveryService

    rng = random.Random(1)
    system = DLPTSystem()
    system.build(rng, n_peers=16)
    svc = DiscoveryService(system)
    svc.register("dgemm")
    svc.register("dgemv")
    print(svc.complete("dgem"))          # ['dgemm', 'dgemv']
    print(svc.discover("dgemm", rng=rng).satisfied)
"""

from .core.alphabet import BINARY, PRINTABLE, Alphabet
from .core.pgcp import PGCPTree
from .core.queries import ExactQuery, MultiAttributeQuery, PrefixQuery, RangeQuery
from .dlpt.service import DiscoveryService, ServiceRecord
from .dlpt.system import DLPTSystem
from .lb.kchoices import KChoices
from .lb.mlt import MLT
from .lb.nolb import NoLB

__version__ = "1.0.0"

__all__ = [
    "Alphabet",
    "BINARY",
    "PRINTABLE",
    "PGCPTree",
    "ExactQuery",
    "PrefixQuery",
    "RangeQuery",
    "MultiAttributeQuery",
    "DLPTSystem",
    "DiscoveryService",
    "ServiceRecord",
    "MLT",
    "KChoices",
    "NoLB",
    "__version__",
]
