"""The original DLPT-over-DHT mapping — Figure 9's "random mapping" baseline.

In the original design [5] the PGCP tree is an upper layer mapped onto the
peers *through a DHT*: a tree node's label is hashed and assigned to the peer
responsible for that hash (Chord rule in hash space).  "A random mapping
results in breaking the locality.  Connected nodes in the tree are randomly
dispatched in random locations of the physical network" (Section 4) — so
nearly every logical hop becomes a physical message.

:class:`HashedMapping` implements the same strategy interface as
:class:`repro.dlpt.mapping.LexicographicMapping`, so the experiment runner
swaps mappings with one constructor argument and everything else (tree
growth, routing, capacity accounting) stays identical — which is exactly the
controlled comparison Figure 9 needs.
"""

from __future__ import annotations

from typing import Dict, Iterable, KeysView

from ..dht.hashing import DEFAULT_BITS, hash_to_int
from ..peers.peer import Peer, migrate_labels
from ..peers.ring import Ring
from ..util.sortedlist import SortedList


class HashedMapping:
    """Node→peer assignment by consistent hashing (locality-destroying).

    Mirrors the interval-batched migration of
    :class:`repro.dlpt.mapping.LexicographicMapping`, but in *hash* space: a
    sorted index of ``(hash, label)`` pairs turns a join's takeover interval
    ``(pred_pos, pos]`` into two bisects and a slice instead of a scan over
    the successor's whole node set.
    """

    #: Identifier-space moves do not translate to hash-space moves, so MLT
    #: silently skips balancing instead of corrupting the mapping.
    supports_reposition = False

    def __init__(self, ring: Ring, bits: int = DEFAULT_BITS) -> None:
        self.ring = ring
        self.bits = bits
        self.modulus = 1 << bits
        self.host: Dict[str, Peer] = {}
        self._label_hash: Dict[str, int] = {}
        self._peer_positions: SortedList[int] = SortedList()
        self._peer_by_position: Dict[int, Peer] = {}
        #: All mapped labels keyed by hash position — the migration index.
        self._hash_index: SortedList[tuple[int, str]] = SortedList()
        self.migrations = 0
        #: Host-assignment version counter (see
        #: :class:`repro.dlpt.mapping.LexicographicMapping`): the discovery
        #: router's per-node cache is valid while this number holds still.
        self.version = 0

    # -- hashing ------------------------------------------------------------

    def _hash(self, label: str) -> int:
        h = self._label_hash.get(label)
        if h is None:
            h = hash_to_int(label, self.bits)
            self._label_hash[label] = h
        return h

    def _peer_position(self, peer: Peer) -> int:
        return hash_to_int(peer.id, self.bits)

    def _owner_of_hash(self, h: int) -> Peer:
        pos = self._peer_positions.successor(h)
        return self._peer_by_position[pos]

    def _labels_in_hash_interval(self, pred_pos: int, pos: int) -> list[str]:
        """Labels whose hash lies in the circular interval ``(pred_pos, pos]``
        — two bisects on the ``(hash, label)`` index.  Hash positions are
        ints, so ``(h + 1, "")`` is the exact open/closed boundary tuple."""
        idx = self._hash_index
        lo = idx.index_left((pred_pos + 1, ""))
        hi = idx.index_left((pos + 1, ""))
        if pred_pos < pos:
            pairs = idx.slice(lo, hi)
        else:  # wrapped (or degenerate full-ring) interval
            pairs = idx.slice(lo, len(idx)) + idx.slice(0, hi)
        return [lbl for _, lbl in pairs]

    # -- queries ------------------------------------------------------------

    def host_of(self, label: str) -> Peer:
        return self.host[label]

    def labels(self) -> KeysView[str]:
        """Read-only view of every mapped label (no copy; do not mutate)."""
        return self.host.keys()

    # -- tree change hooks -------------------------------------------------

    def on_node_created(self, label: str) -> None:
        h = self._hash(label)
        peer = self._owner_of_hash(h)
        self.host[label] = peer
        peer.host_node(label)
        self._hash_index.add((h, label))
        self.version += 1

    def on_node_removed(self, label: str) -> None:
        peer = self.host.pop(label)
        peer.drop_node(label)
        self._hash_index.remove((self._hash(label), label))
        self._label_hash.pop(label, None)
        self.version += 1

    # -- membership change hooks ---------------------------------------------

    def on_peer_joined(self, peer: Peer) -> int:
        pos = self._peer_position(peer)
        if pos in self._peer_by_position:
            # Hash-position collision: co-locate deterministically by evicting
            # the join (caller retries with a different id).
            raise ValueError(f"hash position collision for peer {peer.id!r}")
        first = len(self._peer_positions) == 0
        self._peer_positions.add(pos)
        self._peer_by_position[pos] = peer
        if first:
            return 0
        succ_pos = self._peer_positions.strict_successor(pos)
        succ = self._peer_by_position[succ_pos]
        pred_pos = self._peer_positions.predecessor(pos)
        # Every label hashed into (pred_pos, pos] was hosted by succ
        # (consistent-hashing invariant), so the index range IS the set.
        moving = self._labels_in_hash_interval(pred_pos, pos)
        return self._move_batch(moving, succ, peer)

    def on_peer_leaving(self, peer: Peer) -> int:
        pos = self._peer_position(peer)
        if len(self._peer_positions) <= 1:
            if peer.nodes:
                raise RuntimeError("cannot drain the last peer while nodes exist")
            self._peer_positions.discard(pos)
            self._peer_by_position.pop(pos, None)
            return 0
        succ_pos = self._peer_positions.strict_successor(pos)
        succ = self._peer_by_position[succ_pos]
        moved = self._move_batch(list(peer.nodes), peer, succ)
        self._peer_positions.remove(pos)
        del self._peer_by_position[pos]
        return moved

    def reposition(self, peer: Peer, new_id: str) -> int:
        raise NotImplementedError(
            "MLT repositioning is undefined under a hashed mapping: moving a "
            "peer in identifier space does not move it in hash space"
        )

    # -- internals ----------------------------------------------------------

    def _move_batch(self, labels: Iterable[str], src: Peer, dst: Peer) -> int:
        """Migrate ``labels`` from ``src`` to ``dst`` with bulk set/dict
        operations; returns (and counts) the number of migrations."""
        n = migrate_labels(labels, src, dst, self.host)
        self.migrations += n
        self.version += 1
        return n

    # -- invariants -----------------------------------------------------------

    def check_invariants(self) -> None:
        for label, peer in self.host.items():
            expected = self._owner_of_hash(self._hash(label))
            assert peer is expected, (
                f"node {label!r} hashed to {peer.id!r}, rule wants {expected.id!r}"
            )
            assert label in peer.nodes
        counted = sum(len(p.nodes) for p in self.ring)
        assert counted == len(self.host)
        assert self._hash_index.as_list() == sorted(
            (self._hash(lbl), lbl) for lbl in self.host
        ), "hash index out of sync with the host map"
