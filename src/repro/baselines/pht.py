"""Prefix Hash Tree (Ramabhadran et al., PODC 2004) — reference [14].

PHT builds a binary trie over the *data set* on top of any DHT: the trie
node for binary prefix ``p`` lives on the DHT peer responsible for
``hash(p)``.  Keys (fixed-width binary strings of length ``D``) are stored
in leaves holding at most ``B`` keys; an overflowing leaf splits.

Routing cost model (Table 2): the classic "linear" PHT lookup walks the
prefix from the root, one DHT get per trie level — O(D log P) DHT hops.
(The binary-search variant achieves O(log D · log P); both are implemented,
the table uses the linear one that the paper's complexity row cites.)

The load-balancing behaviour the paper criticises is faithfully reproduced:
splitting relies on the *global threshold* ``B`` on keys per node and
ignores both peer capacity heterogeneity and key popularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dht.chord import ChordRing


@dataclass
class PHTNode:
    """A trie node addressed by its binary prefix."""

    prefix: str
    is_leaf: bool = True
    keys: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class PHTLookupResult:
    leaf_prefix: str
    found: bool
    trie_steps: int
    dht_hops: int


class PrefixHashTree:
    """A PHT over a :class:`ChordRing`.

    Parameters
    ----------
    chord:
        The underlying DHT (peers must already be joined).
    key_bits:
        ``D`` — the fixed width of binary keys.
    leaf_capacity:
        ``B`` — the split threshold (PHT's global load-balancing knob).
    """

    def __init__(self, chord: ChordRing, key_bits: int = 16, leaf_capacity: int = 4) -> None:
        if leaf_capacity < 1:
            raise ValueError("leaf_capacity must be >= 1")
        self.chord = chord
        self.key_bits = key_bits
        self.leaf_capacity = leaf_capacity
        self.nodes: Dict[str, PHTNode] = {"": PHTNode(prefix="", is_leaf=True)}
        self.total_dht_hops = 0

    # -- helpers ------------------------------------------------------------

    def _validate(self, key: str) -> None:
        if len(key) != self.key_bits or any(c not in "01" for c in key):
            raise ValueError(
                f"key must be a {self.key_bits}-bit binary string, got {key!r}"
            )

    def _dht_get(self, prefix: str) -> int:
        """One DHT lookup for the peer owning a trie-node address; returns
        the Chord hop count (the O(log P) factor of Table 2)."""
        _, hops = self.chord.lookup("pht:" + prefix)
        self.total_dht_hops += hops
        return hops

    def peer_of(self, prefix: str) -> str:
        return self.chord.successor_peer("pht:" + prefix)

    # -- lookup --------------------------------------------------------------

    def find_leaf_linear(self, key: str) -> PHTLookupResult:
        """Walk the prefix from the root: one DHT get per trie level."""
        self._validate(key)
        hops = 0
        steps = 0
        prefix = ""
        while True:
            hops += self._dht_get(prefix)
            steps += 1
            node = self.nodes[prefix]
            if node.is_leaf:
                return PHTLookupResult(
                    leaf_prefix=prefix,
                    found=key in node.keys,
                    trie_steps=steps,
                    dht_hops=hops,
                )
            prefix = key[: len(prefix) + 1]

    def find_leaf_binary(self, key: str) -> PHTLookupResult:
        """Binary-search on prefix length: O(log D) DHT gets.

        A probed prefix can be missing entirely (shorter than the leaf) or
        internal (longer prefixes exist); standard PHT bisection.
        """
        self._validate(key)
        hops = 0
        steps = 0
        lo, hi = 0, self.key_bits
        best: Optional[str] = None
        while lo <= hi:
            mid = (lo + hi) // 2
            prefix = key[:mid]
            steps += 1
            node = self.nodes.get(prefix)
            if node is not None:
                hops += self._dht_get(prefix)
            if node is None:
                hi = mid - 1
            elif node.is_leaf:
                best = prefix
                break
            else:
                lo = mid + 1
        assert best is not None, "trie must contain a leaf on every key path"
        node = self.nodes[best]
        return PHTLookupResult(
            leaf_prefix=best, found=key in node.keys, trie_steps=steps, dht_hops=hops
        )

    def lookup(self, key: str, mode: str = "linear") -> PHTLookupResult:
        if mode == "linear":
            return self.find_leaf_linear(key)
        if mode == "binary":
            return self.find_leaf_binary(key)
        raise ValueError(f"unknown mode {mode!r}")

    # -- insertion ------------------------------------------------------------

    def insert(self, key: str) -> PHTLookupResult:
        res = self.find_leaf_linear(key)
        leaf = self.nodes[res.leaf_prefix]
        leaf.keys.add(key)
        while len(leaf.keys) > self.leaf_capacity and len(leaf.prefix) < self.key_bits:
            leaf = self._split(leaf)
            # _split returns the child that is still over capacity, or a
            # balanced child; loop continues while a leaf overflows.
            if leaf is None:
                break
        return res

    def _split(self, leaf: PHTNode) -> Optional[PHTNode]:
        """Split ``leaf`` into two children; return an overflowing child
        (to keep splitting skewed key sets) or None when balanced."""
        leaf.is_leaf = False
        left = PHTNode(prefix=leaf.prefix + "0")
        right = PHTNode(prefix=leaf.prefix + "1")
        for k in leaf.keys:
            (left if k[len(leaf.prefix)] == "0" else right).keys.add(k)
        leaf.keys.clear()
        self.nodes[left.prefix] = left
        self.nodes[right.prefix] = right
        for child in (left, right):
            if len(child.keys) > self.leaf_capacity and len(child.prefix) < self.key_bits:
                return child
        return None

    # -- range query ------------------------------------------------------------

    def range_query(self, lo: str, hi: str) -> Tuple[List[str], int]:
        """Keys in ``[lo, hi]`` plus total DHT hops spent.

        Resolves the leaf of ``lo``, then walks sibling leaves in key order
        (each step addressed through the DHT) until passing ``hi``.
        """
        self._validate(lo)
        self._validate(hi)
        if lo > hi:
            raise ValueError("lo must be <= hi")
        res = self.find_leaf_linear(lo)
        hops = res.dht_hops
        out: List[str] = []
        leaf_prefixes = sorted(p for p, n in self.nodes.items() if n.is_leaf)
        idx = leaf_prefixes.index(res.leaf_prefix)
        for prefix in leaf_prefixes[idx:]:
            # Leaf covers [prefix·00…, prefix·11…]; stop past hi.
            band_lo = prefix + "0" * (self.key_bits - len(prefix))
            if band_lo > hi:
                break
            if prefix != res.leaf_prefix:
                hops += self._dht_get(prefix)
            out.extend(k for k in self.nodes[prefix].keys if lo <= k <= hi)
        return sorted(out), hops

    # -- metrics ------------------------------------------------------------------

    def leaf_count(self) -> int:
        return sum(1 for n in self.nodes.values() if n.is_leaf)

    def local_state(self) -> Dict[str, int]:
        """Trie-node count per peer — PHT's per-peer state is the set of
        trie nodes (≈ |N|/|P| each holding up to |A| child pointers plus
        B keys), the Table 2 "Local State" row."""
        counts: Dict[str, int] = {}
        for prefix in self.nodes:
            peer = self.peer_of(prefix)
            counts[peer] = counts.get(peer, 0) + 1
        return counts

    def check_invariants(self) -> None:
        for prefix, node in self.nodes.items():
            if node.is_leaf:
                assert len(node.keys) <= self.leaf_capacity or len(prefix) == self.key_bits
                for k in node.keys:
                    assert k.startswith(prefix)
            else:
                assert not node.keys
                assert prefix + "0" in self.nodes and prefix + "1" in self.nodes
