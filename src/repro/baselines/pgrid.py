"""P-Grid (Aberer et al.; Datta et al., P2P 2005) — reference [7].

P-Grid builds a binary trie over the *whole key space*; each peer is
assigned a *path* (a leaf of the trie, i.e. one partition Π of the key
space) and keeps, for every level ``i`` of its path, references to peers
whose path agrees on the first ``i`` bits and differs at bit ``i+1``.
Greedy bit-fixing routing therefore resolves any key in O(log |Π|) hops,
and a peer's routing state is O(log |Π|) references — the two P-Grid
entries of Table 2.

Construction here is the static "balanced-tree exchange" outcome: partitions
are computed by recursively splitting the key sample until each partition is
small enough or the peer budget is used, and peers are assigned to
partitions round-robin (several peers can replicate one partition, as in
P-Grid proper).  The dynamic bilateral-exchange protocol that *converges* to
this state is out of scope — the paper compares steady-state complexities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class PGridPeer:
    """A P-Grid participant: its path and per-level routing references."""

    peer_id: str
    path: str
    #: routing[i] = peer ids whose path shares path[:i] and flips bit i.
    routing: List[List[str]] = field(default_factory=list)
    keys: set[str] = field(default_factory=set)

    def state_size(self) -> int:
        """Routing-table entries held (Table 2 "Local State")."""
        return sum(len(level) for level in self.routing)


class PGrid:
    """A static, balanced P-Grid overlay over binary keys."""

    def __init__(
        self,
        peer_ids: Sequence[str],
        keys: Sequence[str],
        key_bits: int,
        rng,
        max_partition_keys: Optional[int] = None,
        refs_per_level: int = 1,
    ) -> None:
        if not peer_ids:
            raise ValueError("P-Grid needs at least one peer")
        self.key_bits = key_bits
        self.refs_per_level = refs_per_level
        for k in keys:
            if len(k) != key_bits or any(c not in "01" for c in k):
                raise ValueError(f"key {k!r} is not a {key_bits}-bit binary string")
        # -- compute partitions ------------------------------------------------
        if max_partition_keys is None:
            # Aim for about one partition per peer.
            max_partition_keys = max(1, len(keys) // max(1, len(peer_ids)))
        self.partitions: List[str] = self._build_partitions(
            sorted(set(keys)), "", max_partition_keys, len(peer_ids)
        )
        self.partitions.sort()
        # -- assign peers round-robin (replication when peers > partitions) ----
        self.peers: Dict[str, PGridPeer] = {}
        self.by_path: Dict[str, List[str]] = {p: [] for p in self.partitions}
        for i, pid in enumerate(peer_ids):
            path = self.partitions[i % len(self.partitions)]
            peer = PGridPeer(peer_id=pid, path=path)
            self.peers[pid] = peer
            self.by_path[path].append(pid)
        # -- store keys --------------------------------------------------------
        for k in keys:
            path = self._partition_of(k)
            for pid in self.by_path[path]:
                self.peers[pid].keys.add(k)
        # -- build routing tables ----------------------------------------------
        self._build_routing(rng)
        self.rng = rng

    # -- construction helpers ----------------------------------------------

    def _build_partitions(
        self, keys: List[str], prefix: str, max_keys: int, peer_budget: int
    ) -> List[str]:
        """Recursively split until partitions are small or budget exhausted."""
        if len(keys) <= max_keys or len(prefix) >= self.key_bits or peer_budget <= 1:
            return [prefix]
        zeros = [k for k in keys if k[len(prefix)] == "0"]
        ones = [k for k in keys if k[len(prefix)] == "1"]
        if not zeros or not ones:
            # All keys agree on this bit; still split the *key space* so the
            # trie stays binary (P-Grid partitions the space, not the data).
            side = "0" if zeros else "1"
            return [prefix + ("1" if side == "0" else "0")] + self._build_partitions(
                keys, prefix + side, max_keys, peer_budget - 1
            )
        left_budget = max(1, peer_budget * len(zeros) // len(keys))
        right_budget = max(1, peer_budget - left_budget)
        return self._build_partitions(
            zeros, prefix + "0", max_keys, left_budget
        ) + self._build_partitions(ones, prefix + "1", max_keys, right_budget)

    def _partition_of(self, key: str) -> str:
        """The unique partition whose path prefixes ``key`` (partitions form
        a prefix-free cover, so greedy longest-match works)."""
        for ln in range(len(key) + 1):
            if key[:ln] in self.by_path:
                return key[:ln]
        # Key space regions with no partition (possible when data was skewed):
        # route to the lexicographically closest partition.
        best = min(self.partitions, key=lambda p: _divergence(p, key))
        return best

    def _build_routing(self, rng) -> None:
        for peer in self.peers.values():
            peer.routing = []
            for i in range(len(peer.path)):
                complement = peer.path[:i] + ("1" if peer.path[i] == "0" else "0")
                candidates = [
                    pid
                    for pid, other in self.peers.items()
                    if other.path.startswith(complement)
                ]
                if not candidates:
                    # No peer on the complementary side (skewed space): fall
                    # back to any peer whose path diverges at level i.
                    candidates = [
                        pid
                        for pid, other in self.peers.items()
                        if len(other.path) > i and other.path[:i] == peer.path[:i]
                        and other.path[i] != peer.path[i]
                    ]
                refs = (
                    rng.sample(candidates, min(self.refs_per_level, len(candidates)))
                    if candidates
                    else []
                )
                peer.routing.append(refs)

    # -- routing -------------------------------------------------------------

    def lookup(self, key: str, start_peer: Optional[str] = None) -> Tuple[bool, int]:
        """Greedy bit-fixing routing; returns ``(found, hops)``."""
        if start_peer is None:
            start_peer = next(iter(self.peers))
        current = self.peers[start_peer]
        hops = 0
        for _ in range(self.key_bits + len(self.peers) + 1):
            if key.startswith(current.path):
                return key in current.keys, hops
            # First level where the key leaves this peer's path.
            i = _divergence_index(current.path, key)
            refs = current.routing[i] if i < len(current.routing) else []
            if not refs:
                return False, hops
            current = self.peers[self.rng.choice(refs)]
            hops += 1
        raise RuntimeError("P-Grid routing failed to converge")

    def range_query(self, lo: str, hi: str, start_peer: Optional[str] = None) -> Tuple[List[str], int]:
        """Shower-style range resolution: route to ``lo``'s partition, then
        sweep partitions in key order until past ``hi``."""
        if lo > hi:
            raise ValueError("lo must be <= hi")
        found, hops = self.lookup(lo, start_peer)
        out: List[str] = []
        for path in self.partitions:
            band_lo = path + "0" * (self.key_bits - len(path))
            band_hi = path + "1" * (self.key_bits - len(path))
            if band_lo > hi:
                break
            if band_hi < lo:
                continue
            pids = self.by_path[path]
            if pids:
                hops += 1
                out.extend(k for k in self.peers[pids[0]].keys if lo <= k <= hi)
        return sorted(set(out)), hops

    # -- metrics ------------------------------------------------------------------

    @property
    def n_partitions(self) -> int:
        """|Π| — the quantity inside P-Grid's O(log |Π|) bounds."""
        return len(self.partitions)

    def mean_state_size(self) -> float:
        return sum(p.state_size() for p in self.peers.values()) / len(self.peers)

    def check_invariants(self) -> None:
        # Partitions are prefix-free and every peer's path is a partition.
        for i, a in enumerate(self.partitions):
            for b in self.partitions[i + 1 :]:
                assert not b.startswith(a) and not a.startswith(b), (
                    f"partitions {a!r} and {b!r} overlap"
                )
        for peer in self.peers.values():
            assert peer.path in self.by_path
            for k in peer.keys:
                assert k.startswith(peer.path) or self._partition_of(k) == peer.path


def _divergence_index(path: str, key: str) -> int:
    for i, (a, b) in enumerate(zip(path, key)):
        if a != b:
            return i
    return min(len(path), len(key))


def _divergence(path: str, key: str) -> tuple[int, str]:
    """Sort key: later divergence = closer partition."""
    return (-_divergence_index(path, key), path)
