"""Set-query cost: DLPT vs P-Grid vs PHT on identical workloads.

Table 2 compares the overlays on *single-key* routing; this artifact
extends the comparison to the set queries a service-discovery tree exists
for — prefix completion and lexicographic ranges.  All three systems are
built over one fixed-width binary corpus and serve the *same* query
stream:

* **DLPT** answers through the routed scan path
  (:meth:`repro.dlpt.system.DLPTSystem.search`): climb from a random
  entry node to the band's scan root, then fan out over the scan
  subtree.
* **P-Grid** showers the range: greedy bit-fixing to ``lo``'s partition,
  then one hop per partition overlapping the band
  (:meth:`repro.baselines.pgrid.PGrid.range_query`).
* **PHT** resolves ``lo``'s leaf linearly (one DHT get per trie level,
  the O(D log P) factor) and walks sibling leaves through the DHT
  (:meth:`repro.baselines.pht.PrefixHashTree.range_query`).

Prefix queries are expressed to the range-only baselines as the
equivalent closed band ``[p·00…0, p·11…1]`` — the two phrasings denote
the same key set over a fixed-width corpus.

``hops`` means *inter-peer messages* for every system: P-Grid's routing
steps plus one message per swept partition, PHT's DHT gets, and DLPT's
physical hops (route edges whose endpoints live on different peers).
That is the comparison the paper's mapping argument is about — the
lexicographic mapping co-locates subtrees, so a subtree scan that
touches dozens of trie nodes crosses only a handful of peers.

The comparison is *differential by construction*: every query's result
set from every system is checked against a brute-force oracle over the
corpus (and therefore against the other systems); a mismatch raises
:class:`QueryCostMismatch` instead of producing a table.  The hop
numbers are only reported once all three systems provably returned
identical answers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from ..core.alphabet import BINARY
from ..core.queries import PrefixQuery, RangeQuery
from ..dht.chord import ChordRing
from ..dlpt.system import DLPTSystem
from ..peers.capacity import FixedCapacity
from ..workloads.keys import random_binary_keys
from .pgrid import PGrid
from .pht import PrefixHashTree


class QueryCostMismatch(AssertionError):
    """A system returned a result set different from the oracle's."""


@dataclass(frozen=True)
class QueryCostRow:
    """Mean cost of one (system, query family) pair on the shared stream."""

    system: str
    family: str  # "prefix" | "range"
    n_queries: int
    mean_hops: float
    mean_results: float


@dataclass
class QueryCostResult:
    """The measured grid plus the workload parameters that produced it."""

    n_keys: int
    n_peers: int
    key_bits: int
    rows: List[QueryCostRow] = field(default_factory=list)
    #: Total result-set comparisons that passed (queries × systems).
    checks_passed: int = 0

    def rows_for(self, system: str) -> List[QueryCostRow]:
        return [r for r in self.rows if r.system == system]

    def as_text(self) -> str:
        header = (
            f"{'System':>7} {'family':>7} {'queries':>8} | "
            f"{'hops':>7} {'results':>8}"
        )
        lines = [
            f"corpus: {self.n_keys} keys x {self.key_bits} bits, "
            f"{self.n_peers} peers; hops = inter-peer messages; "
            f"result sets oracle-checked ({self.checks_passed} comparisons)",
            "",
            header,
            "-" * len(header),
        ]
        for r in self.rows:
            lines.append(
                f"{r.system:>7} {r.family:>7} {r.n_queries:>8} | "
                f"{r.mean_hops:>7.2f} {r.mean_results:>8.2f}"
            )
        return "\n".join(lines)


def _query_stream(
    rng: random.Random, keys: List[str], key_bits: int, n_per_family: int
) -> List[Tuple[str, str, str]]:
    """``(family, lo, hi)`` triples over the registered corpus.

    Prefixes are taken from registered keys (so completions are non-empty
    more often than not); ranges span a contiguous run of the sorted
    corpus, which is how a range lands on a query that straddles several
    partitions/leaves/fragments.
    """
    out: List[Tuple[str, str, str]] = []
    n = len(keys)
    for _ in range(n_per_family):
        source = keys[rng.randrange(n)]
        length = rng.randint(2, max(2, key_bits // 3))
        prefix = source[:length]
        out.append(("prefix", prefix, ""))
    span = max(2, n // 16)
    for _ in range(n_per_family):
        lo_i = rng.randrange(n)
        hi_i = min(lo_i + span - 1, n - 1)
        out.append(("range", keys[lo_i], keys[hi_i]))
    return out


def _band(family: str, lo: str, hi: str, key_bits: int) -> Tuple[str, str]:
    """The closed fixed-width band a query denotes."""
    if family == "prefix":
        pad = key_bits - len(lo)
        return lo + "0" * pad, lo + "1" * pad
    return lo, hi


def _check(system: str, family: str, lo: str, hi: str, got, oracle) -> None:
    if list(got) != list(oracle):
        raise QueryCostMismatch(
            f"{system} {family} query [{lo!r}, {hi!r}]: "
            f"{len(got)} results != oracle's {len(oracle)}"
        )


def measure_query_cost(
    n_keys: int = 400,
    n_peers: int = 48,
    key_bits: int = 12,
    n_per_family: int = 40,
    seed: int = 20080617,
) -> QueryCostResult:
    """Build all three overlays on one corpus, serve one query stream,
    oracle-check every answer, and report mean hops per family.

    Deterministic in ``seed`` and sub-second at the defaults, so the
    artifact bypasses the sweep store (the Table 2 pattern).
    """
    rng = random.Random(seed)
    keys = random_binary_keys(rng, n_keys, length=key_bits)

    dlpt = DLPTSystem(alphabet=BINARY, capacity_model=FixedCapacity(10**9))
    dlpt.build(random.Random(seed), n_peers)
    for k in keys:
        dlpt.register(k)

    peer_ids = [f"peer-{i:05d}" for i in range(n_peers)]
    pgrid = PGrid(peer_ids, keys, key_bits=key_bits, rng=random.Random(seed))

    chord = ChordRing()
    chord.add_peers(peer_ids)
    pht = PrefixHashTree(chord, key_bits=key_bits, leaf_capacity=4)
    for k in keys:
        pht.insert(k)

    stream = _query_stream(rng, keys, key_bits, n_per_family)
    hops = {("DLPT", f): [] for f in ("prefix", "range")}
    hops.update({("P-Grid", f): [] for f in ("prefix", "range")})
    hops.update({("PHT", f): [] for f in ("prefix", "range")})
    results_per_family = {"prefix": [], "range": []}
    checks = 0

    for family, lo, hi in stream:
        band_lo, band_hi = _band(family, lo, hi, key_bits)
        oracle = [k for k in keys if band_lo <= k <= band_hi]

        query = PrefixQuery(lo) if family == "prefix" else RangeQuery(lo, hi)
        out = dlpt.search(query, rng=rng)
        _check("DLPT", family, lo, hi, out.results, oracle)
        hops[("DLPT", family)].append(out.physical_hops)

        start = peer_ids[rng.randrange(n_peers)]
        got, h = pgrid.range_query(band_lo, band_hi, start_peer=start)
        _check("P-Grid", family, lo, hi, got, oracle)
        hops[("P-Grid", family)].append(h)

        got, h = pht.range_query(band_lo, band_hi)
        _check("PHT", family, lo, hi, got, oracle)
        hops[("PHT", family)].append(h)

        checks += 3
        results_per_family[family].append(len(oracle))

    result = QueryCostResult(
        n_keys=n_keys, n_peers=n_peers, key_bits=key_bits, checks_passed=checks
    )
    for system in ("P-Grid", "PHT", "DLPT"):
        for family in ("prefix", "range"):
            hs = hops[(system, family)]
            sizes = results_per_family[family]
            result.rows.append(
                QueryCostRow(
                    system=system,
                    family=family,
                    n_queries=len(hs),
                    mean_hops=sum(hs) / len(hs),
                    mean_results=sum(sizes) / len(sizes),
                )
            )
    return result
