"""Comparators: the DHT (random) mapping, PHT and P-Grid."""

from .dlpt_dht import HashedMapping
from .pgrid import PGrid, PGridPeer
from .pht import PHTLookupResult, PrefixHashTree
from .query_cost import QueryCostMismatch, QueryCostResult, QueryCostRow, measure_query_cost

__all__ = [
    "HashedMapping",
    "PrefixHashTree",
    "PHTLookupResult",
    "PGrid",
    "PGridPeer",
    "QueryCostMismatch",
    "QueryCostResult",
    "QueryCostRow",
    "measure_query_cost",
]
