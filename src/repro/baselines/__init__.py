"""Comparators: the DHT (random) mapping, PHT and P-Grid."""

from .dlpt_dht import HashedMapping
from .pgrid import PGrid, PGridPeer
from .pht import PHTLookupResult, PrefixHashTree

__all__ = ["HashedMapping", "PrefixHashTree", "PHTLookupResult", "PGrid", "PGridPeer"]
