"""Service-key corpora.

"The prefix trees are built with identifiers commonly encountered in a grid
computing context such as names of linear algebra routines" (Section 4), and
the hot-spot experiment of Figure 8 targets the Sun S3L library (routines
prefixed ``S3L_``) and ScaLAPACK (routines prefixed ``P``).

The corpora below are assembled from the real naming schemes of those
libraries: BLAS/LAPACK routines are ``<type-prefix><operation>`` with type
prefixes ``s, d, c, z``; ScaLAPACK prepends ``P``; S3L names are
``S3L_<operation>``.  The exact routine inventory of the authors' simulator
is unpublished; any corpus with these prefix structures reproduces the
experiments' behaviour because only the *prefix distribution* matters to the
tree shape and to the hot spots.
"""

from __future__ import annotations

from typing import Sequence

_TYPES = ("s", "d", "c", "z")

_BLAS_OPS = (
    # Level 1
    "axpy", "copy", "dot", "dotc", "dotu", "nrm2", "rot", "rotg", "rotm",
    "rotmg", "scal", "swap", "asum", "amax",
    # Level 2
    "gemv", "gbmv", "hemv", "hbmv", "hpmv", "symv", "sbmv", "spmv", "trmv",
    "tbmv", "tpmv", "trsv", "tbsv", "tpsv", "ger", "geru", "gerc", "her",
    "her2", "hpr", "hpr2", "syr", "syr2", "spr", "spr2",
    # Level 3
    "gemm", "symm", "hemm", "syrk", "herk", "syr2k", "her2k", "trmm", "trsm",
)

_LAPACK_OPS = (
    "gesv", "gbsv", "gtsv", "posv", "ppsv", "pbsv", "ptsv", "sysv", "spsv",
    "hesv", "hpsv", "getrf", "getrs", "getri", "gbtrf", "gbtrs", "gttrf",
    "gttrs", "potrf", "potrs", "potri", "pptrf", "pptrs", "pbtrf", "pbtrs",
    "pttrf", "pttrs", "sytrf", "sytrs", "sptrf", "sptrs", "hetrf", "hetrs",
    "geqrf", "geqlf", "gerqf", "gelqf", "orgqr", "ormqr", "ungqr", "unmqr",
    "gels", "gelss", "gelsd", "gelsy", "gesvd", "gesdd", "geev", "geevx",
    "gees", "geesx", "syev", "syevd", "syevr", "syevx", "heev", "heevd",
    "heevr", "heevx", "gehrd", "hseqr", "trevc", "trexc", "trsen", "trsyl",
    "gebal", "gebak", "langb", "lange", "lansy", "lantr",
)

# ScaLAPACK implements a (large) subset of LAPACK's drivers plus PBLAS.
_SCALAPACK_OPS = (
    "gesv", "gbsv", "posv", "pbsv", "ptsv", "dbsv", "dtsv", "getrf", "getrs",
    "getri", "gbtrf", "gbtrs", "potrf", "potrs", "potri", "pbtrf", "pbtrs",
    "pttrf", "pttrs", "geqrf", "geqlf", "gerqf", "gelqf", "orgqr", "ormqr",
    "gels", "gesvd", "syev", "syevd", "syevx", "heev", "heevd", "heevx",
    "gehrd", "hseqr", "gebal", "gemm", "symm", "syrk", "syr2k", "trmm",
    "trsm", "gemv", "symv", "trmv", "trsv", "ger", "geadd", "tradd", "lange",
)

# Sun S3L (Scalable Scientific Subroutine Library) public operations.
_S3L_OPS = (
    "mat_mult", "matvec_mult", "mat_trans", "mat_inv", "mat_norm",
    "lu_factor", "lu_solve", "lu_invert", "lu_deallocate",
    "qr_factor", "qr_solve", "cholesky_factor", "cholesky_solve",
    "eigen", "eigen_vec", "sym_eigen", "gen_band_factor", "gen_band_solve",
    "fft", "fft_detailed", "ifft", "rc_fft", "cr_fft", "fft_setup", "fft_free",
    "sort", "sort_up", "sort_down", "sort_detailed_up", "sort_detailed_down",
    "grade_up", "grade_down", "rank",
    "gather", "scatter", "copy_array", "transpose", "reduce", "scan",
    "random_fibonacci", "random_lcg", "rand_fib", "rand_lcg",
    "declare_sparse", "sparse_matvec", "sparse_solve",
    "walsh", "trans", "zero_elements", "set_array_element", "get_array_element",
    "to_ScaLAPACK_desc", "from_ScaLAPACK_desc",
)


def blas_routines() -> list[str]:
    """Typed BLAS routine names, e.g. ``dgemm``, ``saxpy`` (Figure 1(b))."""
    return sorted(t + op for t in _TYPES for op in _BLAS_OPS)


def lapack_routines() -> list[str]:
    """Typed LAPACK driver/computational routine names, e.g. ``dgetrf``."""
    return sorted(t + op for t in _TYPES for op in _LAPACK_OPS)


def scalapack_routines() -> list[str]:
    """ScaLAPACK names: ``p`` + type + operation, e.g. ``pdgesv``.

    Upper-cased first letter ``P`` as the paper uses ("the ScaLapack
    library whose functions begin with 'P'")."""
    return sorted("P" + t + op for t in _TYPES for op in _SCALAPACK_OPS)


def s3l_routines() -> list[str]:
    """Sun S3L names: ``S3L_`` + operation (the Figure 8 hot spot)."""
    return sorted("S3L_" + op for op in _S3L_OPS)


def grid_service_corpus() -> list[str]:
    """The full corpus the experiments register: BLAS + LAPACK + ScaLAPACK
    + S3L — about a thousand keys with deep shared-prefix structure."""
    return sorted(
        set(blas_routines()) | set(lapack_routines())
        | set(scalapack_routines()) | set(s3l_routines())
    )


def paper_figure1_binary_keys() -> list[str]:
    """The exact binary keys of the paper's Figure 1(a)."""
    return ["01", "10101", "10111", "101111"]


def random_binary_keys(rng, count: int, length: int = 12) -> list[str]:
    """Uniform random distinct binary keys (synthetic workloads)."""
    keys: set[str] = set()
    limit = 2**length
    if count > limit:
        raise ValueError(f"cannot draw {count} distinct {length}-bit keys")
    while len(keys) < count:
        keys.add(format(rng.randrange(limit), f"0{length}b"))
    return sorted(keys)


def keys_with_prefix(keys: Sequence[str], prefix: str) -> list[str]:
    """Subset of ``keys`` extending ``prefix`` (hot-spot targeting)."""
    return [k for k in keys if k.startswith(prefix)]
