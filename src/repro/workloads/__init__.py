"""Workloads: grid service-name corpora and request generators."""

from .keys import (
    blas_routines,
    grid_service_corpus,
    lapack_routines,
    paper_figure1_binary_keys,
    random_binary_keys,
    s3l_routines,
    scalapack_routines,
)
from .requests import (
    HotSpotRequests,
    Phase,
    PhasedSchedule,
    UniformRequests,
    ZipfRequests,
    figure8_schedule,
)

__all__ = [
    "grid_service_corpus", "blas_routines", "lapack_routines",
    "scalapack_routines", "s3l_routines", "paper_figure1_binary_keys",
    "random_binary_keys",
    "UniformRequests", "HotSpotRequests", "ZipfRequests",
    "Phase", "PhasedSchedule", "figure8_schedule",
]
