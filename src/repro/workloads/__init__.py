"""Workloads: service-key corpora, request generators, time-varying
dynamics, spec parsing, and trace record/replay."""

from .dynamics import (
    AdversarialPrefixStacking,
    DiurnalSchedule,
    FlashCrowd,
    MixedSchedule,
    SchedulePhase,
    SteadySchedule,
    as_schedule,
)
from .keys import (
    blas_routines,
    grid_service_corpus,
    lapack_routines,
    paper_figure1_binary_keys,
    random_binary_keys,
    s3l_routines,
    scalapack_routines,
)
from .requests import (
    HotSpotRequests,
    Phase,
    PhasedSchedule,
    RequestGenerator,
    UniformRequests,
    WorkloadSchedule,
    ZipfRequests,
    figure8_schedule,
    generator_name,
)
from .queries import (
    QUERY_KINDS,
    QueryWorkload,
    parse_queries,
    parse_query_event,
    queries_signature,
    query_from_event,
)
from .spec import (
    WORKLOAD_KINDS,
    WorkloadSpecError,
    parse_workload,
    workload_signature,
)
from .traces import (
    TRACE_SCHEMA,
    TraceError,
    TraceRecorder,
    TraceUnit,
    WorkloadTrace,
)

__all__ = [
    "grid_service_corpus", "blas_routines", "lapack_routines",
    "scalapack_routines", "s3l_routines", "paper_figure1_binary_keys",
    "random_binary_keys",
    "RequestGenerator", "WorkloadSchedule", "generator_name",
    "UniformRequests", "HotSpotRequests", "ZipfRequests",
    "Phase", "PhasedSchedule", "figure8_schedule",
    "FlashCrowd", "DiurnalSchedule", "AdversarialPrefixStacking",
    "MixedSchedule", "SchedulePhase", "SteadySchedule", "as_schedule",
    "WORKLOAD_KINDS", "WorkloadSpecError", "parse_workload",
    "workload_signature",
    "QUERY_KINDS", "QueryWorkload", "parse_queries", "parse_query_event",
    "queries_signature", "query_from_event",
    "TRACE_SCHEMA", "TraceError", "TraceRecorder", "TraceUnit",
    "WorkloadTrace",
]
