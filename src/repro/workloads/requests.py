"""Discovery-request generators.

Section 4 uses two request regimes:

* "services requested were randomly picked among the set of available
  services" — :class:`UniformRequests`;
* the Figure 8 hot spots — "temporarily launching many discovery requests on
  some keys stored in the same region of the tree i.e., lexicographically
  close, in bursts" — :class:`HotSpotRequests` concentrated on a prefix,
  scheduled over time by :class:`PhasedSchedule`.

:class:`ZipfRequests` is an extension (skewed popularity without locality)
used by ablation benches.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import weakref
from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple, runtime_checkable


from .keys import keys_with_prefix


@runtime_checkable
class RequestGenerator(Protocol):
    """Draws the key of the next discovery request.

    A structural protocol: any object with a ``sample(rng, available_keys)``
    method qualifies.  ``@runtime_checkable`` lets the config layer validate
    user-supplied generators with ``isinstance`` at parse time instead of
    failing deep inside the simulation loop.
    """

    def sample(self, rng, available_keys: Sequence[str]) -> str:
        """Return the key of the next request drawn from ``available_keys``."""
        raise NotImplementedError


@runtime_checkable
class WorkloadSchedule(Protocol):
    """A time-varying workload: what the experiment runner consumes.

    Distinguished from a plain :class:`RequestGenerator` by the extra
    ``unit`` argument and by ``generator_at`` — the per-unit slice used by
    schedule composition (:class:`repro.workloads.dynamics.MixedSchedule`)
    and by tests.  ``rate_multiplier`` scales the number of requests issued
    in a unit (1.0 = the config's nominal load).
    """

    def sample(self, unit: int, rng, available_keys: Sequence[str]) -> str:
        """Return the key requested at time ``unit``."""
        raise NotImplementedError

    def generator_at(self, unit: int) -> RequestGenerator:
        """The generator in force at time ``unit``."""
        raise NotImplementedError

    def rate_multiplier(self, unit: int) -> float:
        """Scale factor on the nominal request rate at time ``unit``."""
        raise NotImplementedError

    def phase_windows(self, total_units: int) -> "List[Tuple[str, int, int]]":
        """Named ``(name, start, end)`` windows covering ``[0, total_units)``
        — the axis of per-phase metric breakdowns."""
        raise NotImplementedError


class UniformRequests:
    """Uniform over the currently available keys."""

    name = "uniform"

    def sample(self, rng, available_keys: Sequence[str]) -> str:
        return available_keys[rng.randrange(len(available_keys))]


class HotSpotRequests:
    """With probability ``intensity``, request a key under ``prefix``;
    otherwise fall back to uniform.  Models a library suddenly becoming
    popular (S3L between units 40–80, ScaLAPACK's ``P`` after 80)."""

    def __init__(self, prefix: str, intensity: float = 0.8) -> None:
        if not 0.0 < intensity <= 1.0:
            raise ValueError("intensity must be in (0, 1]")
        self.prefix = prefix
        self.intensity = intensity
        self.name = f"hotspot:{prefix}"
        self._cached_for: Optional[tuple[int, str]] = None
        self._hot: list[str] = []

    def _hot_keys(self, available_keys: Sequence[str]) -> list[str]:
        # The key population changes only when the tree grows; cache per
        # (size, first key) fingerprint to avoid rescanning every draw.
        fingerprint = (len(available_keys), available_keys[0] if available_keys else "")
        if self._cached_for != fingerprint:
            self._hot = keys_with_prefix(available_keys, self.prefix)
            self._cached_for = fingerprint
        return self._hot

    def sample(self, rng, available_keys: Sequence[str]) -> str:
        hot = self._hot_keys(available_keys)
        if hot and rng.random() < self.intensity:
            return hot[rng.randrange(len(hot))]
        return available_keys[rng.randrange(len(available_keys))]


#: How many generators have already captured each live seed RNG.  Two
#: generators *sharing* one ``Random`` object behave differently at run
#: time (the first's permutation draw advances the second's stream), so
#: the share index enters the seed fingerprint; two *independent*
#: equal-seed RNGs (share index 0 each) still fingerprint identically.
_SEED_RNG_SHARES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


class ZipfRequests:
    """Zipf(s) popularity over a fixed key ranking (rank 1 = hottest).

    The ranking permutation is drawn once per generator from ``seed_rng`` so
    repeated units target the same hot keys.

    The rank weights ``1/(i+1)^s`` depend only on the rank, never on the
    corpus, so they are cached and merely *extended* when the corpus grows
    mid-run (every growth unit changes the corpus size; re-raising
    thousands of ranks to a float power per unit was pure waste).  The CDF
    normalisation is recomputed from the cached weights — same floats,
    identical draws — and the ranking permutation is redrawn exactly as
    before (its RNG consumption is part of the recorded stream).
    """

    def __init__(self, s: float = 1.0, seed_rng=None) -> None:
        if s <= 0:
            raise ValueError("Zipf exponent must be positive")
        self.s = s
        self.name = f"zipf:{s}"
        self._perm: Optional[list[int]] = None
        self._cdf: list[float] = []
        self._n = 0
        self._weights: list[float] = []  # extended, never rebuilt
        #: Rank-weight power evaluations performed (regression-tested: must
        #: stay linear in the largest corpus seen, not in corpus × units).
        self.weight_evals = 0
        self._seed_rng = seed_rng
        # Pristine-state fingerprint, captured before any draw mutates the
        # RNG: the semantic identity of the ranking permutation this
        # generator will produce (consumed by workload_signature — a live
        # getstate() there would change across the generator's lifetime).
        # The share index distinguishes generators aliasing one RNG object,
        # whose pristine states are equal but whose runtime streams differ.
        if seed_rng is None:
            self._seed_fingerprint: Optional[str] = None
        else:
            try:
                share_index = _SEED_RNG_SHARES.get(seed_rng, 0)
                _SEED_RNG_SHARES[seed_rng] = share_index + 1
            except TypeError:  # non-weakrefable RNG stand-in
                share_index = 0
            self._seed_fingerprint = hashlib.sha256(
                repr((share_index, seed_rng.getstate())).encode()
            ).hexdigest()

    def _prepare(self, n: int, rng) -> None:
        if self._n == n:
            return
        weights = self._weights
        if len(weights) < n:
            s = self.s
            self.weight_evals += n - len(weights)
            weights.extend(1.0 / (i + 1) ** s for i in range(len(weights), n))
        active = weights if len(weights) == n else weights[:n]
        total = sum(active)
        self._cdf = list(itertools.accumulate(w / total for w in active))
        order_rng = self._seed_rng or rng
        perm = list(range(n))
        order_rng.shuffle(perm)
        self._perm = perm
        self._n = n

    def sample(self, rng, available_keys: Sequence[str]) -> str:
        n = len(available_keys)
        self._prepare(n, rng)
        rank = bisect.bisect_left(self._cdf, rng.random())
        rank = min(rank, n - 1)
        return available_keys[self._perm[rank]]


@dataclass(frozen=True)
class Phase:
    """A half-open time window ``[start, end)`` driven by one generator."""

    start: int
    end: int
    generator: RequestGenerator

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"bad phase window [{self.start}, {self.end})")


def sort_and_check_phases(phases):
    """Order phase-like objects (``.start``/``.end``) by start and reject
    overlaps — shared by :class:`PhasedSchedule` and
    :class:`repro.workloads.dynamics.MixedSchedule`."""
    ordered = sorted(phases, key=lambda p: p.start)
    for a, b in zip(ordered, ordered[1:]):
        if a.end > b.start:
            raise ValueError(f"overlapping phases at unit {b.start}")
    return ordered


def splice_windows(
    spans: Sequence[Tuple[str, int, int]], fallback_name: str, total_units: int
) -> List[Tuple[str, int, int]]:
    """Clip ordered ``(name, start, end)`` spans to ``[0, total_units)`` and
    fill the gaps between them with ``fallback_name`` windows."""
    windows: List[Tuple[str, int, int]] = []
    cursor = 0
    for name, start, end in spans:
        if start >= total_units:
            break
        if start > cursor:
            windows.append((fallback_name, cursor, start))
        windows.append((name, start, min(end, total_units)))
        cursor = min(end, total_units)
    if cursor < total_units:
        windows.append((fallback_name, cursor, total_units))
    return windows


class PhasedSchedule:
    """Time-varying workload: the generator in force depends on the unit.

    Unit indices outside every phase fall back to uniform requests.
    """

    def __init__(self, phases: Sequence[Phase]) -> None:
        self.phases = sort_and_check_phases(phases)
        self._fallback = UniformRequests()
        self.name = "phased[" + ",".join(
            generator_name(p.generator) for p in self.phases
        ) + "]"

    def generator_at(self, unit: int) -> RequestGenerator:
        for phase in self.phases:
            if phase.start <= unit < phase.end:
                return phase.generator
        return self._fallback

    def rate_multiplier(self, unit: int) -> float:
        """Phased schedules modulate *what* is requested, not how much."""
        return 1.0

    def sample(self, unit: int, rng, available_keys: Sequence[str]) -> str:
        return self.generator_at(unit).sample(rng, available_keys)

    def phase_windows(self, total_units: int) -> List[Tuple[str, int, int]]:
        """Named ``(name, start, end)`` windows covering ``[0, total_units)``
        — the breakdown axis of :func:`repro.experiments.metrics.phase_breakdown`.
        Gaps between declared phases surface as ``uniform`` windows."""
        return splice_windows(
            [(generator_name(p.generator), p.start, p.end) for p in self.phases],
            generator_name(self._fallback),
            total_units,
        )


def generator_name(generator: object) -> str:
    """Display name of a generator or schedule (legends, phase tables)."""
    return getattr(generator, "name", type(generator).__name__)


def figure8_schedule(intensity: float = 0.8) -> PhasedSchedule:
    """The exact Figure 8 timeline: uniform for units 0–40, an S3L hot spot
    for 40–80, a ScaLAPACK ("P") hot spot for 80–120, uniform afterwards."""
    return PhasedSchedule(
        [
            Phase(0, 40, UniformRequests()),
            Phase(40, 80, HotSpotRequests("S3L", intensity=intensity)),
            Phase(80, 120, HotSpotRequests("P", intensity=intensity)),
            Phase(120, 10_000, UniformRequests()),
        ]
    )
