"""Set-query workloads: the ``queries:`` axis of an experiment.

Discovery traffic (:mod:`repro.workloads.requests`) asks for exact keys;
this module generates the *set queries* the trie overlay additionally
serves — prefix completions, lexicographic ranges and exact probes — as a
per-unit stream riding alongside the request stream.  A
:class:`QueryWorkload` is parsed from a compact spec
(``ExperimentConfig(queries=...)``):

* ``"mixed"`` / ``"mixed:n=6"`` — cycle prefix → range → exact;
* ``"prefix:n=4:len=2"`` — completions of length-``len`` prefixes of
  registered keys;
* ``"range:n=4:span=16"`` — ranges covering about ``span`` consecutive
  registered keys;
* ``"exact:n=2"`` — exact probes through the scan path.

Sampled events serialise into ``repro-trace/1`` units as JSON-able lists —
``["prefix", prefix, entry]``, ``["range", lo, hi, entry]``,
``["exact", key, entry]`` — so a recorded query stream replays verbatim.
Every parse failure raises :class:`~repro.core.queries.QuerySpecError` at
config time, never mid-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.queries import (
    ExactQuery,
    PrefixQuery,
    Query,
    QuerySpecError,
    RangeQuery,
)
from ..util.specs import parse_options, register_spec_kind, split_spec

#: Spec kinds accepted by :func:`parse_queries`.
QUERY_KINDS = ("mixed", "prefix", "range", "exact")

#: The cycle order of ``kind="mixed"``.
_MIXED_CYCLE = ("prefix", "range", "exact")


@dataclass(frozen=True)
class QueryWorkload:
    """The per-unit set-query plan of one experiment.

    ``n_per_unit`` queries are drawn each time unit from the registered
    keys: ``prefix_len`` bounds the completion prefixes, ``range_span`` is
    the target number of consecutive registered keys a range covers.
    """

    kind: str = "mixed"
    n_per_unit: int = 4
    prefix_len: int = 2
    range_span: int = 16

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise QuerySpecError(
                f"unknown query kind {self.kind!r} "
                f"(known kinds: {', '.join(QUERY_KINDS)})"
            )
        if self.n_per_unit < 1:
            raise QuerySpecError("query workload needs n >= 1")
        if self.prefix_len < 0:
            raise QuerySpecError("query workload needs len >= 0")
        if self.range_span < 1:
            raise QuerySpecError("query workload needs span >= 1")

    def _kind_at(self, i: int) -> str:
        if self.kind == "mixed":
            return _MIXED_CYCLE[i % len(_MIXED_CYCLE)]
        return self.kind

    def sample_unit(self, rng, available_keys: Sequence[str]) -> List[list]:
        """Draw this unit's query events (without entry labels): JSON-able
        ``["prefix", p]`` / ``["range", lo, hi]`` / ``["exact", k]`` lists
        over the currently registered keys."""
        if not available_keys:
            return []
        ordered = sorted(available_keys)
        events: List[list] = []
        for i in range(self.n_per_unit):
            kind = self._kind_at(i)
            if kind == "prefix":
                key = ordered[rng.randrange(len(ordered))]
                events.append(["prefix", key[: self.prefix_len]])
            elif kind == "range":
                lo_i = rng.randrange(len(ordered))
                hi_i = min(lo_i + self.range_span - 1, len(ordered) - 1)
                events.append(["range", ordered[lo_i], ordered[hi_i]])
            else:
                events.append(["exact", ordered[rng.randrange(len(ordered))]])
        return events


#: Query-event kinds and their string-payload arity in a trace record
#: (payload strings after the kind, including the entry label).
QUERY_EVENT_ARITY = {"prefix": 2, "range": 3, "exact": 2}


def parse_query_event(event: Any) -> list:
    """Coerce and validate one trace query event; raises
    :class:`QuerySpecError` on anything malformed."""
    event = list(event)
    if not event or event[0] not in QUERY_EVENT_ARITY:
        raise QuerySpecError(f"bad query event {event!r}")
    kind, payload = event[0], event[1:]
    if len(payload) != QUERY_EVENT_ARITY[kind]:
        raise QuerySpecError(f"query event {event!r}: wrong payload length")
    values = [str(v) for v in payload]
    if kind == "range" and values[0] > values[1]:
        raise QuerySpecError(f"query event {event!r}: empty range")
    return [kind] + values


def query_from_event(event: Sequence) -> Tuple[Query, str]:
    """``(query object, entry label)`` of one validated trace event."""
    kind = event[0]
    if kind == "prefix":
        return PrefixQuery(event[1]), event[2]
    if kind == "range":
        return RangeQuery(event[1], event[2]), event[3]
    if kind == "exact":
        return ExactQuery(event[1]), event[2]
    raise QuerySpecError(f"bad query event {list(event)!r}")


def _int_option(value: str, spec: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise QuerySpecError(
            f"query spec {spec!r}: {value!r} is not an integer"
        ) from None


#: Spec option names → QueryWorkload field names.
_OPTION_FIELDS = {"n": "n_per_unit", "len": "prefix_len", "span": "range_span"}


def _parse_queries(spec: object) -> Optional[QueryWorkload]:
    if spec is None:
        return None
    if isinstance(spec, QueryWorkload):
        return spec
    if isinstance(spec, str):
        kind, rest = split_spec(spec)
        try:
            raw = parse_options(rest, spec, label="query spec")
        except ValueError as exc:
            raise QuerySpecError(str(exc)) from exc
        kwargs: Dict[str, Any] = {"kind": kind}
        for key, value in raw.items():
            if key not in _OPTION_FIELDS:
                raise QuerySpecError(
                    f"query spec {spec!r}: unknown option {key!r} "
                    f"(known options: {', '.join(_OPTION_FIELDS)})"
                )
            kwargs[_OPTION_FIELDS[key]] = _int_option(value, spec)
        return QueryWorkload(**kwargs)
    if isinstance(spec, dict):
        kwargs = dict(spec)
        for short, full in _OPTION_FIELDS.items():
            if short in kwargs:
                kwargs[full] = kwargs.pop(short)
        try:
            return QueryWorkload(**kwargs)
        except TypeError as exc:
            raise QuerySpecError(f"bad query spec {spec!r}: {exc}") from exc
    raise QuerySpecError(
        f"query spec must be None, a string, a dict or a QueryWorkload, "
        f"got {type(spec).__name__}"
    )


def parse_queries(spec: object) -> Optional[QueryWorkload]:
    """Build and validate a :class:`QueryWorkload` from any spec form.

    Accepts ``None`` (no query axis), a spec string, a dict (string-spec
    keys or QueryWorkload field names), or a ready :class:`QueryWorkload`.
    Raises :class:`QuerySpecError` naming the offending spec on any
    problem.

    .. deprecated::
        Thin shim over the unified registry; new code should call
        ``repro.util.specs.parse_spec("queries", spec)``.
    """
    from ..util.specs import parse_spec

    return parse_spec("queries", spec)


def queries_signature(plan: QueryWorkload) -> dict:
    """Canonical, JSON-serialisable identity of a query plan (the
    ``queries`` component of ``ExperimentConfig.signature()``)."""
    return {
        "kind": plan.kind,
        "n_per_unit": plan.n_per_unit,
        "prefix_len": plan.prefix_len,
        "range_span": plan.range_span,
    }


register_spec_kind("queries", _parse_queries, queries_signature)
