"""Workload specs: build any schedule from a string or dict.

``ExperimentConfig(workload=...)`` and the ``python -m repro run --workload``
CLI flag accept a compact spec instead of constructed objects, so every
scenario is reachable from a shell or a config file:

* ``"uniform"`` — uniform over the available keys;
* ``"zipf"`` / ``"zipf:1.2"`` — Zipf popularity, optional exponent;
* ``"hotspot:S3L"`` / ``"hotspot:S3L:0.8"`` — prefix hot spot, optional
  intensity;
* ``"figure8"`` / ``"figure8:0.8"`` — the paper's Figure 8 timeline;
* ``"flash_crowd:S3L:onset=40:peak=0.95:half_life=8:rate_surge=2"`` —
  a relaxing burst (:class:`repro.workloads.dynamics.FlashCrowd`);
* ``"diurnal:period=24:amplitude=0.5"`` — sinusoidal rate modulation;
* ``"adversarial:S3L"`` / ``"adversarial:S3L:s=1.5"`` — prefix stacking;
* a dict composes: ``{"kind": "mixed", "phases": [{"start": 0, "end": 40,
  "workload": "uniform"}, {"start": 40, "end": 80, "workload":
  "flash_crowd:S3L", "rate": 1.5}]}`` — and ``{"kind": "diurnal",
  "inner": <spec>, ...}`` nests any inner spec;
* an already-built generator or schedule object passes through (validated
  against the runtime-checkable protocols).

Every failure raises :class:`WorkloadSpecError` naming the offending spec —
validation happens when the config is parsed, not mid-simulation.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..util.specs import parse_options, split_spec
from .dynamics import (
    AdversarialPrefixStacking,
    DiurnalSchedule,
    FlashCrowd,
    MixedSchedule,
    SchedulePhase,
    as_schedule,
)
from .requests import (
    HotSpotRequests,
    UniformRequests,
    WorkloadSchedule,
    ZipfRequests,
    figure8_schedule,
)

#: Spec kinds accepted by :func:`parse_workload` (string and dict forms).
WORKLOAD_KINDS = (
    "uniform", "zipf", "hotspot", "figure8",
    "flash_crowd", "diurnal", "adversarial", "mixed",
)


class WorkloadSpecError(ValueError):
    """A workload spec that cannot be parsed or validated."""


def _number(token: str, spec: str) -> float:
    try:
        return int(token) if token.lstrip("+-").isdigit() else float(token)
    except ValueError:
        raise WorkloadSpecError(
            f"workload spec {spec!r}: {token!r} is not a number"
        ) from None


def _options(tokens: List[str], spec: str) -> Dict[str, float]:
    try:
        raw = parse_options(tokens, spec, label="workload spec")
    except ValueError as exc:
        raise WorkloadSpecError(str(exc)) from exc
    return {key: _number(value, spec) for key, value in raw.items()}


def _apply(factory, kwargs: Dict[str, Any], spec: str):
    try:
        return factory(**kwargs)
    except TypeError as exc:
        raise WorkloadSpecError(f"workload spec {spec!r}: {exc}") from exc
    except ValueError as exc:
        raise WorkloadSpecError(f"workload spec {spec!r}: {exc}") from exc


def _parse_string(spec: str) -> object:
    kind, rest = split_spec(spec)
    if kind == "uniform":
        return UniformRequests()
    if kind == "zipf":
        s = _number(rest[0], spec) if rest else 1.0
        return _apply(ZipfRequests, {"s": s}, spec)
    if kind == "hotspot":
        if not rest:
            raise WorkloadSpecError(f"workload spec {spec!r}: hotspot needs a prefix")
        kwargs: Dict[str, Any] = {"prefix": rest[0]}
        if len(rest) > 1:
            kwargs["intensity"] = _number(rest[1], spec)
        return _apply(HotSpotRequests, kwargs, spec)
    if kind == "figure8":
        intensity = _number(rest[0], spec) if rest else 0.8
        return _apply(figure8_schedule, {"intensity": intensity}, spec)
    if kind == "flash_crowd":
        if not rest:
            raise WorkloadSpecError(f"workload spec {spec!r}: flash_crowd needs a prefix")
        kwargs = {"prefix": rest[0], **_options(rest[1:], spec)}
        return _apply(FlashCrowd, kwargs, spec)
    if kind == "diurnal":
        return _apply(DiurnalSchedule, dict(_options(rest, spec)), spec)
    if kind == "adversarial":
        if not rest:
            raise WorkloadSpecError(f"workload spec {spec!r}: adversarial needs a prefix")
        kwargs = {"prefix": rest[0], **_options(rest[1:], spec)}
        return _apply(AdversarialPrefixStacking, kwargs, spec)
    raise WorkloadSpecError(
        f"unknown workload kind {kind!r} in spec {spec!r} "
        f"(known kinds: {', '.join(WORKLOAD_KINDS)})"
    )


def _parse_dict(spec: Dict[str, Any]) -> object:
    kind = spec.get("kind")
    if kind == "mixed":
        raw_phases = spec.get("phases")
        if not raw_phases:
            raise WorkloadSpecError(f"mixed workload spec needs non-empty 'phases': {spec!r}")
        phases: List[SchedulePhase] = []
        for raw in raw_phases:
            try:
                phases.append(
                    SchedulePhase(
                        start=int(raw["start"]),
                        end=int(raw["end"]),
                        source=parse_workload(raw["workload"]),
                        rate=float(raw.get("rate", 1.0)),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise WorkloadSpecError(f"bad mixed phase {raw!r}: {exc}") from exc
        fallback = (
            parse_workload(spec["fallback"]) if "fallback" in spec else None
        )
        return _apply(MixedSchedule, {"phases": phases, "fallback": fallback}, str(spec))
    if kind == "diurnal":
        kwargs = {k: v for k, v in spec.items() if k not in ("kind", "inner")}
        if "inner" in spec:
            kwargs["inner"] = parse_workload(spec["inner"])
        return _apply(DiurnalSchedule, kwargs, str(spec))
    if kind in WORKLOAD_KINDS:
        # Generic form: {"kind": "flash_crowd", "prefix": "S3L", "onset": 40}
        factories = {
            "uniform": UniformRequests,
            "zipf": ZipfRequests,
            "hotspot": HotSpotRequests,
            "figure8": figure8_schedule,
            "flash_crowd": FlashCrowd,
            "adversarial": AdversarialPrefixStacking,
        }
        kwargs = {k: v for k, v in spec.items() if k != "kind"}
        return _apply(factories[kind], kwargs, str(spec))
    raise WorkloadSpecError(
        f"unknown workload kind {kind!r} in spec {spec!r} "
        f"(known kinds: {', '.join(WORKLOAD_KINDS)})"
    )


def parse_workload(spec: object) -> WorkloadSchedule:
    """Build and validate a :class:`WorkloadSchedule` from any spec form.

    Accepts a spec string, a composing dict, a ready schedule, or a bare
    generator (wrapped into a steady schedule).  Raises
    :class:`WorkloadSpecError` with the offending spec on any problem.
    """
    if spec is None:
        built: object = UniformRequests()
    elif isinstance(spec, str):
        built = _parse_string(spec)
    elif isinstance(spec, dict):
        built = _parse_dict(spec)
    else:
        built = spec
    try:
        return as_schedule(built)
    except TypeError as exc:
        raise WorkloadSpecError(str(exc)) from exc
