"""Workload specs: build any schedule from a string or dict.

``ExperimentConfig(workload=...)`` and the ``python -m repro run --workload``
CLI flag accept a compact spec instead of constructed objects, so every
scenario is reachable from a shell or a config file:

* ``"uniform"`` — uniform over the available keys;
* ``"zipf"`` / ``"zipf:1.2"`` — Zipf popularity, optional exponent;
* ``"hotspot:S3L"`` / ``"hotspot:S3L:0.8"`` — prefix hot spot, optional
  intensity;
* ``"figure8"`` / ``"figure8:0.8"`` — the paper's Figure 8 timeline;
* ``"flash_crowd:S3L:onset=40:peak=0.95:half_life=8:rate_surge=2"`` —
  a relaxing burst (:class:`repro.workloads.dynamics.FlashCrowd`);
* ``"diurnal:period=24:amplitude=0.5"`` — sinusoidal rate modulation;
* ``"adversarial:S3L"`` / ``"adversarial:S3L:s=1.5"`` — prefix stacking;
* a dict composes: ``{"kind": "mixed", "phases": [{"start": 0, "end": 40,
  "workload": "uniform"}, {"start": 40, "end": 80, "workload":
  "flash_crowd:S3L", "rate": 1.5}]}`` — and ``{"kind": "diurnal",
  "inner": <spec>, ...}`` nests any inner spec;
* an already-built generator or schedule object passes through (validated
  against the runtime-checkable protocols).

Every failure raises :class:`WorkloadSpecError` naming the offending spec —
validation happens when the config is parsed, not mid-simulation.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..util.specs import SpecError, parse_options, register_spec_kind, split_spec
from .dynamics import (
    AdversarialPrefixStacking,
    DiurnalSchedule,
    FlashCrowd,
    MixedSchedule,
    SchedulePhase,
    SteadySchedule,
    as_schedule,
)
from .requests import (
    HotSpotRequests,
    PhasedSchedule,
    UniformRequests,
    WorkloadSchedule,
    ZipfRequests,
    figure8_schedule,
    generator_name,
)

#: Spec kinds accepted by :func:`parse_workload` (string and dict forms).
WORKLOAD_KINDS = (
    "uniform", "zipf", "hotspot", "figure8",
    "flash_crowd", "diurnal", "adversarial", "mixed",
)


class WorkloadSpecError(SpecError):
    """A workload spec that cannot be parsed or validated."""


def _number(token: str, spec: str) -> float:
    try:
        return int(token) if token.lstrip("+-").isdigit() else float(token)
    except ValueError:
        raise WorkloadSpecError(
            f"workload spec {spec!r}: {token!r} is not a number"
        ) from None


def _options(tokens: List[str], spec: str) -> Dict[str, float]:
    try:
        raw = parse_options(tokens, spec, label="workload spec")
    except ValueError as exc:
        raise WorkloadSpecError(str(exc)) from exc
    return {key: _number(value, spec) for key, value in raw.items()}


def _apply(factory, kwargs: Dict[str, Any], spec: str):
    try:
        return factory(**kwargs)
    except TypeError as exc:
        raise WorkloadSpecError(f"workload spec {spec!r}: {exc}") from exc
    except ValueError as exc:
        raise WorkloadSpecError(f"workload spec {spec!r}: {exc}") from exc


def _parse_string(spec: str) -> object:
    kind, rest = split_spec(spec)
    if kind == "uniform":
        return UniformRequests()
    if kind == "zipf":
        s = _number(rest[0], spec) if rest else 1.0
        return _apply(ZipfRequests, {"s": s}, spec)
    if kind == "hotspot":
        if not rest:
            raise WorkloadSpecError(f"workload spec {spec!r}: hotspot needs a prefix")
        kwargs: Dict[str, Any] = {"prefix": rest[0]}
        if len(rest) > 1:
            kwargs["intensity"] = _number(rest[1], spec)
        return _apply(HotSpotRequests, kwargs, spec)
    if kind == "figure8":
        intensity = _number(rest[0], spec) if rest else 0.8
        return _apply(figure8_schedule, {"intensity": intensity}, spec)
    if kind == "flash_crowd":
        if not rest:
            raise WorkloadSpecError(f"workload spec {spec!r}: flash_crowd needs a prefix")
        kwargs = {"prefix": rest[0], **_options(rest[1:], spec)}
        return _apply(FlashCrowd, kwargs, spec)
    if kind == "diurnal":
        return _apply(DiurnalSchedule, dict(_options(rest, spec)), spec)
    if kind == "adversarial":
        if not rest:
            raise WorkloadSpecError(f"workload spec {spec!r}: adversarial needs a prefix")
        kwargs = {"prefix": rest[0], **_options(rest[1:], spec)}
        return _apply(AdversarialPrefixStacking, kwargs, spec)
    raise WorkloadSpecError(
        f"unknown workload kind {kind!r} in spec {spec!r} "
        f"(known kinds: {', '.join(WORKLOAD_KINDS)})"
    )


def _parse_dict(spec: Dict[str, Any]) -> object:
    kind = spec.get("kind")
    if kind == "mixed":
        raw_phases = spec.get("phases")
        if not raw_phases:
            raise WorkloadSpecError(f"mixed workload spec needs non-empty 'phases': {spec!r}")
        phases: List[SchedulePhase] = []
        for raw in raw_phases:
            try:
                phases.append(
                    SchedulePhase(
                        start=int(raw["start"]),
                        end=int(raw["end"]),
                        source=parse_workload(raw["workload"]),
                        rate=float(raw.get("rate", 1.0)),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise WorkloadSpecError(f"bad mixed phase {raw!r}: {exc}") from exc
        fallback = (
            parse_workload(spec["fallback"]) if "fallback" in spec else None
        )
        return _apply(MixedSchedule, {"phases": phases, "fallback": fallback}, str(spec))
    if kind == "diurnal":
        kwargs = {k: v for k, v in spec.items() if k not in ("kind", "inner")}
        if "inner" in spec:
            kwargs["inner"] = parse_workload(spec["inner"])
        return _apply(DiurnalSchedule, kwargs, str(spec))
    if kind in WORKLOAD_KINDS:
        # Generic form: {"kind": "flash_crowd", "prefix": "S3L", "onset": 40}
        factories = {
            "uniform": UniformRequests,
            "zipf": ZipfRequests,
            "hotspot": HotSpotRequests,
            "figure8": figure8_schedule,
            "flash_crowd": FlashCrowd,
            "adversarial": AdversarialPrefixStacking,
        }
        kwargs = {k: v for k, v in spec.items() if k != "kind"}
        return _apply(factories[kind], kwargs, str(spec))
    raise WorkloadSpecError(
        f"unknown workload kind {kind!r} in spec {spec!r} "
        f"(known kinds: {', '.join(WORKLOAD_KINDS)})"
    )


def _parse_workload(spec: object) -> WorkloadSchedule:
    if spec is None:
        built: object = UniformRequests()
    elif isinstance(spec, str):
        built = _parse_string(spec)
    elif isinstance(spec, dict):
        built = _parse_dict(spec)
    else:
        built = spec
    try:
        return as_schedule(built)
    except TypeError as exc:
        raise WorkloadSpecError(str(exc)) from exc


def parse_workload(spec: object) -> WorkloadSchedule:
    """Build and validate a :class:`WorkloadSchedule` from any spec form.

    Accepts a spec string, a composing dict, a ready schedule, or a bare
    generator (wrapped into a steady schedule).  Raises
    :class:`WorkloadSpecError` with the offending spec on any problem.

    .. deprecated::
        Thin shim over the unified registry; new code should call
        ``repro.util.specs.parse_spec("workload", spec)``.
    """
    from ..util.specs import parse_spec

    return parse_spec("workload", spec)


def workload_signature(obj: object) -> object:
    """Canonical, JSON-serialisable structure of a workload or schedule.

    Two workloads that draw the same request sequences produce equal
    signatures regardless of how they were built (spec string, dict, or
    constructed objects); any semantic parameter change — a prefix, an
    exponent, a phase boundary — changes the signature.  This is the
    workload component of the sweep result store's cell hash
    (:mod:`repro.sweeps`), so the structure must stay stable: extend it for
    new workload classes, never reorder or rename existing fields.

    Unknown generator types degrade to ``{"kind": "opaque", ...}`` keyed on
    their display name — correct only as far as the name encodes the
    parameters, which is why custom generators used in cached sweeps should
    carry a distinctive ``name``.
    """
    if isinstance(obj, UniformRequests):
        return {"kind": "uniform"}
    if isinstance(obj, ZipfRequests):
        # A custom seed_rng pins the hot-key ranking permutation, so it is
        # semantic: use the pristine-state fingerprint captured at
        # construction (live getstate() mutates with every draw, which
        # would shift a cell's hash mid-run) rather than collapsing
        # differently-seeded generators into one identity.
        return {"kind": "zipf", "s": obj.s, "seed_state": obj._seed_fingerprint}
    if isinstance(obj, HotSpotRequests):
        return {"kind": "hotspot", "prefix": obj.prefix, "intensity": obj.intensity}
    if isinstance(obj, AdversarialPrefixStacking):
        return {"kind": "adversarial", "prefix": obj.prefix, "s": obj.s}
    if isinstance(obj, SteadySchedule):
        return {"kind": "steady", "generator": workload_signature(obj.generator)}
    if isinstance(obj, PhasedSchedule):
        return {
            "kind": "phased",
            "phases": [
                {
                    "start": p.start,
                    "end": p.end,
                    "generator": workload_signature(p.generator),
                }
                for p in obj.phases
            ],
        }
    if isinstance(obj, FlashCrowd):
        return {
            "kind": "flash_crowd",
            "prefix": obj.prefix,
            "onset": obj.onset,
            "peak": obj.peak,
            "half_life": obj.half_life,
            "rate_surge": obj.rate_surge,
            "zipf_s": obj._zipf.s,
            "base": workload_signature(obj.base),
        }
    if isinstance(obj, DiurnalSchedule):
        return {
            "kind": "diurnal",
            "period": obj.period,
            "amplitude": obj.amplitude,
            "peak_unit": obj.peak_unit,
            "inner": workload_signature(obj.inner),
        }
    if isinstance(obj, MixedSchedule):
        # Sign the as_schedule-normalised sources (what the runtime draws
        # from), not the raw ones: a phase built from a bare generator and
        # one built from its SteadySchedule wrapping behave identically
        # and must share a signature.
        return {
            "kind": "mixed",
            "phases": [
                {
                    "start": p.start,
                    "end": p.end,
                    "rate": p.rate,
                    "source": workload_signature(schedule),
                }
                for p, schedule in zip(obj.phases, obj._schedules)
            ],
            "fallback": workload_signature(obj._fallback),
        }
    return {
        "kind": "opaque",
        "type": type(obj).__name__,
        "name": generator_name(obj),
    }


register_spec_kind("workload", _parse_workload, workload_signature)
