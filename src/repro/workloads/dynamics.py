"""Time-varying workload dynamics beyond the paper's two regimes.

Section 4 exercises uniform traffic and prefix-local hot spots.  Production
discovery traffic is richer, and each class here opens one axis:

* :class:`FlashCrowd` — a sudden Zipf-concentrated burst on one service
  family that *relaxes back* (half-life decay), with an accompanying surge
  in raw request volume.  The transient MLT must chase.
* :class:`DiurnalSchedule` — sinusoidal modulation of the request *rate*
  around any inner workload: the day/night cycle every deployed registry
  sees.
* :class:`AdversarialPrefixStacking` — every request funnels into a single
  subtree and, within it, Zipf-stacks onto the lexicographically deepest
  run of keys.  Under the lexicographic mapping one short arc of the ring
  absorbs all traffic — the worst case for MLT's pairwise splits and for
  k-choices placement.
* :class:`MixedSchedule` — splices any generators or schedules over phases
  (with per-phase rate multipliers), so arbitrary scenario timelines
  compose from the primitives above.

All schedules implement :class:`repro.workloads.requests.WorkloadSchedule`:
``sample(unit, rng, keys)``, ``generator_at(unit)``, ``rate_multiplier(unit)``
and ``phase_windows(total_units)`` (the per-phase metrics breakdown axis).
Nested schedules always receive the *absolute* unit index.
"""

from __future__ import annotations

import bisect
import itertools
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .keys import keys_with_prefix
from .requests import (
    RequestGenerator,
    UniformRequests,
    WorkloadSchedule,
    generator_name,
    sort_and_check_phases,
    splice_windows,
)


# ---------------------------------------------------------------------------
# adapters
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _AtUnit:
    """A schedule frozen at one time unit — a plain :class:`RequestGenerator`."""

    schedule: WorkloadSchedule
    unit: int

    @property
    def name(self) -> str:
        return f"{generator_name(self.schedule)}@{self.unit}"

    def sample(self, rng, available_keys: Sequence[str]) -> str:
        return self.schedule.sample(self.unit, rng, available_keys)


class SteadySchedule:
    """One generator, constant rate, forever — the schedule view of a plain
    generator (what ``as_schedule`` wraps non-time-varying sources in)."""

    def __init__(self, generator: RequestGenerator) -> None:
        if not isinstance(generator, RequestGenerator):
            raise TypeError(
                f"{generator!r} does not implement RequestGenerator "
                "(needs a sample(rng, available_keys) method)"
            )
        self.generator = generator
        self.name = generator_name(generator)

    def sample(self, unit: int, rng, available_keys: Sequence[str]) -> str:
        return self.generator.sample(rng, available_keys)

    def generator_at(self, unit: int) -> RequestGenerator:
        return self.generator

    def rate_multiplier(self, unit: int) -> float:
        return 1.0

    def phase_windows(self, total_units: int) -> List[Tuple[str, int, int]]:
        return [(self.name, 0, total_units)]


def as_schedule(source: object) -> WorkloadSchedule:
    """Normalise a generator or schedule into a :class:`WorkloadSchedule`.

    Raises :class:`TypeError` with the offending object when ``source``
    implements neither protocol — the config layer surfaces this at parse
    time rather than mid-simulation.
    """
    if isinstance(source, WorkloadSchedule):
        return source
    if isinstance(source, RequestGenerator):
        return SteadySchedule(source)
    raise TypeError(
        f"{source!r} is neither a WorkloadSchedule (sample(unit, rng, keys)) "
        "nor a RequestGenerator (sample(rng, keys))"
    )


# ---------------------------------------------------------------------------
# Zipf over a key subset (shared by FlashCrowd and AdversarialPrefixStacking)
# ---------------------------------------------------------------------------


class _PrefixZipf:
    """Zipf(s) over the keys under ``prefix``, ranked lexicographically.

    No ranking shuffle, unlike :class:`ZipfRequests`: rank 1 is the
    lexicographically first hot key, so mass piles onto one contiguous run
    of the namespace — contiguous on the ring under the lexicographic
    mapping, which is the point of both workloads built on this.
    """

    def __init__(self, prefix: str, s: float) -> None:
        if s <= 0:
            raise ValueError("Zipf exponent must be positive")
        self.prefix = prefix
        self.s = s
        self._fingerprint: Optional[tuple[int, str]] = None
        self._hot: list[str] = []
        self._cdf: list[float] = []

    def hot_keys(self, available_keys: Sequence[str]) -> list[str]:
        fingerprint = (len(available_keys), available_keys[0] if available_keys else "")
        if self._fingerprint != fingerprint:
            # The runner's available list is in registration (shuffled)
            # order; sort so rank 1 really is the lexicographically first
            # hot key and the mass lands on one contiguous namespace run.
            self._hot = sorted(keys_with_prefix(available_keys, self.prefix))
            weights = [1.0 / (i + 1) ** self.s for i in range(len(self._hot))]
            total = sum(weights)
            self._cdf = list(itertools.accumulate(w / total for w in weights))
            self._fingerprint = fingerprint
        return self._hot

    def sample(self, rng, available_keys: Sequence[str]) -> Optional[str]:
        """A hot draw, or ``None`` when no key matches the prefix yet."""
        hot = self.hot_keys(available_keys)
        if not hot:
            return None
        rank = min(bisect.bisect_left(self._cdf, rng.random()), len(hot) - 1)
        return hot[rank]


# ---------------------------------------------------------------------------
# flash crowd
# ---------------------------------------------------------------------------


class FlashCrowd:
    """A sudden burst on one service family that relaxes back.

    At ``onset`` the probability that a request targets the ``prefix``
    subtree jumps to ``peak`` and then halves every ``half_life`` units;
    hot draws are Zipf(``zipf_s``)-concentrated so a handful of keys carry
    most of the crowd.  The raw request volume surges by ``rate_surge``×
    at the peak and relaxes on the same half-life (flash crowds bring new
    traffic, not just redirected traffic).  Before ``onset`` — and for the
    non-crowd share afterwards — requests come from ``base``.
    """

    def __init__(
        self,
        prefix: str,
        onset: int = 40,
        peak: float = 0.95,
        half_life: float = 8.0,
        rate_surge: float = 2.0,
        zipf_s: float = 1.1,
        base: Optional[RequestGenerator] = None,
    ) -> None:
        if not 0.0 < peak <= 1.0:
            raise ValueError("peak must be in (0, 1]")
        if onset < 0:
            raise ValueError("onset must be >= 0")
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        if rate_surge < 1.0:
            raise ValueError("rate_surge must be >= 1 (a crowd adds traffic)")
        self.prefix = prefix
        self.onset = onset
        self.peak = peak
        self.half_life = half_life
        self.rate_surge = rate_surge
        self.base = base if base is not None else UniformRequests()
        self._zipf = _PrefixZipf(prefix, zipf_s)
        self.name = f"flash:{prefix}@{onset}"
        self._intensity_at: Tuple[int, float] = (-1, 0.0)

    def intensity(self, unit: int) -> float:
        """P(request joins the crowd) at ``unit``: 0 before onset, then
        ``peak`` halving every ``half_life`` units.  Memoised per unit —
        every request of a unit shares one decay exponentiation."""
        cached_unit, value = self._intensity_at
        if unit == cached_unit:
            return value
        if unit < self.onset:
            value = 0.0
        else:
            value = self.peak * 0.5 ** ((unit - self.onset) / self.half_life)
        self._intensity_at = (unit, value)
        return value

    def rate_multiplier(self, unit: int) -> float:
        return 1.0 + (self.rate_surge - 1.0) * (self.intensity(unit) / self.peak)

    def sample(self, unit: int, rng, available_keys: Sequence[str]) -> str:
        if rng.random() < self.intensity(unit):
            hot = self._zipf.sample(rng, available_keys)
            if hot is not None:
                return hot
        return self.base.sample(rng, available_keys)

    def generator_at(self, unit: int) -> RequestGenerator:
        return _AtUnit(self, unit)

    def phase_windows(self, total_units: int) -> List[Tuple[str, int, int]]:
        # The burst window ends when intensity decays below ~3% of peak
        # (5 half-lives) — after that the workload is base traffic again.
        # Window bounds must be ints (they slice the per-unit series) even
        # when a spec parsed onset as a float.
        onset = math.ceil(self.onset)
        relax_end = onset + math.ceil(5 * self.half_life)
        windows: List[Tuple[str, int, int]] = []
        if onset > 0:
            windows.append(("pre-crowd", 0, min(onset, total_units)))
        if onset < total_units:
            windows.append((self.name, onset, min(relax_end, total_units)))
        if relax_end < total_units:
            windows.append(("relaxed", relax_end, total_units))
        return windows


# ---------------------------------------------------------------------------
# diurnal modulation
# ---------------------------------------------------------------------------


class DiurnalSchedule:
    """Sinusoidal request-rate modulation around any inner workload.

    ``rate_multiplier`` swings between ``1 - amplitude`` and
    ``1 + amplitude`` with the given ``period`` (units per full cycle);
    ``peak_unit`` places the first daily maximum.  What is requested is
    delegated to ``inner`` (a generator or another schedule) — only how
    *much* changes.
    """

    def __init__(
        self,
        inner: Optional[object] = None,
        period: float = 24.0,
        amplitude: float = 0.5,
        peak_unit: float = 0.0,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        self.inner = as_schedule(inner if inner is not None else UniformRequests())
        self.period = period
        self.amplitude = amplitude
        self.peak_unit = peak_unit
        self.name = f"diurnal:{period:g}x{amplitude:g}({generator_name(self.inner)})"

    def rate_multiplier(self, unit: int) -> float:
        angle = 2.0 * math.pi * (unit - self.peak_unit) / self.period
        return (1.0 + self.amplitude * math.cos(angle)) * self.inner.rate_multiplier(unit)

    def sample(self, unit: int, rng, available_keys: Sequence[str]) -> str:
        return self.inner.sample(unit, rng, available_keys)

    def generator_at(self, unit: int) -> RequestGenerator:
        return self.inner.generator_at(unit)

    def phase_windows(self, total_units: int) -> List[Tuple[str, int, int]]:
        """Alternating half-period windows: above-average rate ("day") and
        below-average ("night"), anchored at ``peak_unit``."""
        half = self.period / 2.0
        windows: List[Tuple[str, int, int]] = []
        start = self.peak_unit - half / 2.0
        k = 0  # parity: even = the half-period containing a rate peak
        while start > 0:
            start -= half
            k += 1
        while start < total_units:
            end = start + half
            lo = max(0, math.ceil(start))
            hi = min(total_units, math.ceil(end))
            if lo < hi:
                windows.append(("diurnal:day" if k % 2 == 0 else "diurnal:night", lo, hi))
            start = end
            k += 1
        return windows


# ---------------------------------------------------------------------------
# adversarial prefix stacking
# ---------------------------------------------------------------------------


class AdversarialPrefixStacking:
    """Worst-case traffic: every request funnels into one subtree.

    All draws land under ``prefix`` and are Zipf(``s``)-ranked in
    lexicographic order, so the hottest keys are *adjacent* in the
    identifier space — under the lexicographic mapping they live on one
    short arc of the ring, and MLT can only shuffle load between the
    two peers of each adjacent pair while k-choices has no cold candidate
    to offer.  Until the tree holds a matching key, draws fall back to
    the lexicographically closest available key (still maximally skewed).
    """

    def __init__(self, prefix: str, s: float = 1.2) -> None:
        if s <= 0:
            raise ValueError("Zipf exponent must be positive")
        self.prefix = prefix
        self.s = s
        self._zipf = _PrefixZipf(prefix, s)
        self._sorted_fingerprint: Optional[tuple[int, str]] = None
        self._sorted_keys: list[str] = []
        self.name = f"adversarial:{prefix}"

    def sample(self, rng, available_keys: Sequence[str]) -> str:
        hot = self._zipf.sample(rng, available_keys)
        if hot is not None:
            return hot
        # No key under the prefix yet: stack on the insertion point instead
        # of diluting the attack with uniform traffic.  The runner hands us
        # keys in registration order; bisect needs them sorted, so cache a
        # sorted copy per key-population fingerprint.
        fingerprint = (len(available_keys), available_keys[0] if available_keys else "")
        if self._sorted_fingerprint != fingerprint:
            self._sorted_keys = sorted(available_keys)
            self._sorted_fingerprint = fingerprint
        ordered = self._sorted_keys
        idx = min(bisect.bisect_left(ordered, self.prefix), len(ordered) - 1)
        return ordered[idx]


# ---------------------------------------------------------------------------
# phase-spliced composition
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SchedulePhase:
    """A half-open window ``[start, end)`` driven by ``source`` (a generator
    or schedule) with an extra per-phase ``rate`` multiplier."""

    start: int
    end: int
    source: object
    rate: float = 1.0

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"bad phase window [{self.start}, {self.end})")
        if self.rate <= 0:
            raise ValueError("phase rate must be positive")


class MixedSchedule:
    """Splice arbitrary workloads over phases — the scenario composer.

    Each phase holds a generator *or* a schedule (normalised through
    :func:`as_schedule`); nested schedules see the absolute unit index.
    Units outside every phase fall back to ``fallback`` (uniform by
    default).  The effective rate multiplier is the phase's ``rate``
    times the nested schedule's own multiplier.
    """

    def __init__(
        self,
        phases: Sequence[SchedulePhase],
        fallback: Optional[object] = None,
    ) -> None:
        self.phases = sort_and_check_phases(phases)
        self._schedules = [as_schedule(p.source) for p in self.phases]
        self._fallback = as_schedule(fallback if fallback is not None else UniformRequests())
        self.name = "mixed[" + ",".join(generator_name(s) for s in self._schedules) + "]"

    def _segment_at(self, unit: int) -> Tuple[WorkloadSchedule, float]:
        for phase, schedule in zip(self.phases, self._schedules):
            if phase.start <= unit < phase.end:
                return schedule, phase.rate
        return self._fallback, 1.0

    def sample(self, unit: int, rng, available_keys: Sequence[str]) -> str:
        schedule, _ = self._segment_at(unit)
        return schedule.sample(unit, rng, available_keys)

    def generator_at(self, unit: int) -> RequestGenerator:
        schedule, _ = self._segment_at(unit)
        return schedule.generator_at(unit)

    def rate_multiplier(self, unit: int) -> float:
        schedule, rate = self._segment_at(unit)
        return rate * schedule.rate_multiplier(unit)

    def phase_windows(self, total_units: int) -> List[Tuple[str, int, int]]:
        return splice_windows(
            [
                (generator_name(schedule), phase.start, phase.end)
                for phase, schedule in zip(self.phases, self._schedules)
            ],
            generator_name(self._fallback),
            total_units,
        )
