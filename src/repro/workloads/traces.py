"""Trace-driven workload replay — the ``repro-trace/1`` JSONL schema.

A trace captures the *workload side* of one simulation run so it can be
replayed deterministically — against the same configuration (byte-identical
metrics; the regression harness), or against a different balancer or mapping
(a controlled comparison on literally identical traffic).  Per time unit it
records:

* ``joins`` — the capacity of each joining peer.  *Placement* is not
  recorded: choosing the identifier is the load balancer's job, so a trace
  replayed under KC and under NoLB sees the same arrivals but different
  placements — exactly the paper's comparison, on frozen traffic.
* ``leaves`` — the ring-position draw of each departure (an index into the
  sorted ring; replay reduces it modulo the current ring size, so the same
  trace drives churn even when the ring sizes diverge between systems).
* ``registrations`` — service keys entering the tree this unit.
* ``requests`` — ``(key, entry_label)`` pairs: what was asked for and the
  tree node where the request entered.  Entry labels are tree-structural
  (the PGCP tree depends only on the registered keys, never on peers), so
  they remain valid under any balancer or mapping.
* ``queries`` — the set queries issued this unit (see
  :mod:`repro.workloads.queries`): ``["prefix", prefix, entry]``,
  ``["range", lo, hi, entry]`` or ``["exact", key, entry]``.  Like entry
  labels, query bands are tree-structural, so a recorded query stream is
  valid under any balancer or mapping.  Traces recorded before the query
  axis existed load with no query events.
* ``faults`` — the fault events the injector applied this unit (see
  :mod:`repro.faults.injector`): ``["crash", index]`` records a fail-stop
  crash as a ring-position draw (applied modulo the live ring size on
  replay, like ``leaves``), ``["partition", start, count, duration]`` an
  arc of ``count`` peers starting at ring position ``start`` becoming
  unreachable for ``duration`` units.  Traces recorded before the fault
  axis existed load with no fault events.

The on-disk format is JSON Lines: a header object followed by one object
per unit, all serialised with sorted keys and no whitespace so a trace is
byte-stable across writes.  See ``docs/benchmarks.md`` for the schema
reference.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Tuple

TRACE_SCHEMA = "repro-trace/1"

_DUMP_KWARGS = dict(sort_keys=True, separators=(",", ":"))


class TraceError(ValueError):
    """A malformed or incompatible trace document."""


@dataclass
class TraceUnit:
    """The workload events of one time unit."""

    joins: List[int] = field(default_factory=list)
    leaves: List[int] = field(default_factory=list)
    registrations: List[str] = field(default_factory=list)
    requests: List[Tuple[str, str]] = field(default_factory=list)
    faults: List[list] = field(default_factory=list)
    queries: List[list] = field(default_factory=list)

    def as_record(self, unit: int) -> Dict[str, Any]:
        record = {
            "u": unit,
            "joins": self.joins,
            "leaves": self.leaves,
            "reg": self.registrations,
            "req": [list(r) for r in self.requests],
        }
        if self.faults:
            # Emitted only when present: fault-free traces keep the exact
            # byte layout of recordings made before the fault axis existed.
            record["faults"] = [list(e) for e in self.faults]
        if self.queries:
            # Same back-compat rule as ``faults``.
            record["queries"] = [list(e) for e in self.queries]
        return record

    #: Known fault-event kinds and their payload arity (ints after the kind).
    _FAULT_ARITY = {"crash": 1, "partition": 3}

    @classmethod
    def _parse_fault(cls, event: Any) -> list:
        """Coerce and validate one fault-event record, like every other
        trace field: malformed input must surface as :class:`TraceError`
        at load time, never as an arbitrary error mid-replay."""
        event = list(event)
        if not event or event[0] not in cls._FAULT_ARITY:
            raise ValueError(f"bad fault event {event!r}")
        kind, payload = event[0], event[1:]
        if len(payload) != cls._FAULT_ARITY[kind]:
            raise ValueError(f"fault event {event!r}: wrong payload length")
        values = [int(value) for value in payload]
        # Range checks: a negative index would wrap to an arbitrary peer
        # and a non-positive duration would silently no-op — corrupted
        # input must fail loudly here, not diverge quietly mid-replay.
        if any(value < 0 for value in values):
            raise ValueError(f"fault event {event!r}: negative payload")
        if kind == "partition" and (values[1] < 1 or values[2] < 1):
            raise ValueError(f"fault event {event!r}: count/duration must be >= 1")
        return [kind] + values

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "TraceUnit":
        # Local import: repro.workloads.queries imports repro.core only,
        # but keeping it out of module scope mirrors the lazy fault parse.
        from .queries import parse_query_event

        try:
            faults = [cls._parse_fault(e) for e in record.get("faults", [])]
            queries = [parse_query_event(e) for e in record.get("queries", [])]
            return cls(
                joins=[int(c) for c in record["joins"]],
                leaves=[int(i) for i in record["leaves"]],
                registrations=[str(k) for k in record["reg"]],
                requests=[(str(k), str(e)) for k, e in record["req"]],
                faults=faults,
                queries=queries,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceError(f"malformed trace unit record: {exc}") from exc


@dataclass
class WorkloadTrace:
    """A recorded workload: header metadata plus the per-unit event lists."""

    seed: int
    run_index: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)
    units: List[TraceUnit] = field(default_factory=list)

    @property
    def n_units(self) -> int:
        return len(self.units)

    @property
    def total_requests(self) -> int:
        return sum(len(u.requests) for u in self.units)

    # -- serialisation ------------------------------------------------------

    def dumps(self) -> str:
        """The JSONL document (header line + one line per unit)."""
        header = {
            "schema": TRACE_SCHEMA,
            "seed": self.seed,
            "run_index": self.run_index,
            "meta": self.meta,
        }
        lines = [json.dumps(header, **_DUMP_KWARGS)]
        lines.extend(
            json.dumps(u.as_record(i), **_DUMP_KWARGS) for i, u in enumerate(self.units)
        )
        return "\n".join(lines) + "\n"

    def dump(self, path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(self.dumps())
        return path

    @classmethod
    def loads(cls, text: str) -> "WorkloadTrace":
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines:
            raise TraceError("empty trace document")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise TraceError(f"trace header is not JSON: {exc}") from exc
        schema = header.get("schema")
        if schema != TRACE_SCHEMA:
            raise TraceError(
                f"trace schema {schema!r} is not {TRACE_SCHEMA!r}; "
                "re-record the trace with this version"
            )
        units: List[TraceUnit] = []
        for n, line in enumerate(lines[1:]):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"trace line {n + 2} is not JSON: {exc}") from exc
            if record.get("u") != n:
                raise TraceError(
                    f"trace line {n + 2}: expected unit {n}, got {record.get('u')!r}"
                )
            units.append(TraceUnit.from_record(record))
        return cls(
            seed=int(header.get("seed", 0)),
            run_index=int(header.get("run_index", 0)),
            meta=dict(header.get("meta", {})),
            units=units,
        )

    @classmethod
    def load(cls, path) -> "WorkloadTrace":
        return cls.loads(pathlib.Path(path).read_text())


class TraceRecorder:
    """Collects workload events as the experiment runner emits them.

    The runner calls :meth:`begin_unit` once per time unit and the event
    methods as the corresponding decisions are made; :meth:`trace` freezes
    the result.  Recording is append-only and adds O(1) work per event, so
    a recording run's simulation results are identical to an unrecorded
    run with the same configuration.
    """

    def __init__(self, seed: int, run_index: int = 0, meta: Dict[str, Any] | None = None) -> None:
        self.seed = seed
        self.run_index = run_index
        self.meta = dict(meta or {})
        self._units: List[TraceUnit] = []

    def begin_unit(self) -> None:
        self._units.append(TraceUnit())

    @property
    def _current(self) -> TraceUnit:
        if not self._units:
            raise TraceError("begin_unit() must be called before recording events")
        return self._units[-1]

    def join(self, capacity: int) -> None:
        self._current.joins.append(capacity)

    def leave(self, ring_index: int) -> None:
        self._current.leaves.append(ring_index)

    def registration(self, key: str) -> None:
        self._current.registrations.append(key)

    def request(self, key: str, entry_label: str) -> None:
        self._current.requests.append((key, entry_label))

    def fault(self, event: list) -> None:
        """Record one applied fault event (a JSON-able list whose first
        element names the event kind — see the module docstring)."""
        self._current.faults.append(list(event))

    def query(self, event: list) -> None:
        """Record one issued set-query event (a JSON-able list whose first
        element names the query kind — see the module docstring)."""
        self._current.queries.append(list(event))

    def trace(self) -> WorkloadTrace:
        return WorkloadTrace(
            seed=self.seed,
            run_index=self.run_index,
            meta=self.meta,
            units=list(self._units),
        )


def merge_request_streams(traces: Iterable[WorkloadTrace]) -> List[List[Tuple[str, str]]]:
    """Unit-aligned union of several traces' request streams (analysis
    helper: compare what distinct recordings asked for, unit by unit)."""
    merged: List[List[Tuple[str, str]]] = []
    for trace in traces:
        for i, unit in enumerate(trace.units):
            while len(merged) <= i:
                merged.append([])
            merged[i].extend(unit.requests)
    return merged
