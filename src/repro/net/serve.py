"""``python -m repro serve`` — launch a local DLPT cluster over sockets.

Brings up one :class:`~repro.net.asyncio_transport.AsyncioTransport`
(Unix-domain socket by default, ``--tcp`` for TCP), a
:class:`~repro.dlpt.protocol.ProtocolEngine` hosting ``--peers`` peers
bootstrapped through the registry (each join is one seeded
``NewPredecessor``), and the :class:`~repro.net.bootstrap.Broker` RPC
endpoint; then serves until interrupted.  ``--demo`` instead connects a
:class:`~repro.net.client.DLPTClient` to the listener, registers a few
service keys, discovers them (plus one deliberate miss) over the real
socket, prints the results and exits — the self-check of the acceptance
criteria.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
from typing import List, Optional

from ..dlpt.protocol import ProtocolEngine
from .asyncio_transport import AsyncioTransport
from .bootstrap import Broker
from .client import DLPTClient

#: Keys the demo registers and then discovers over the socket.
DEMO_KEYS = (
    "dgemm",
    "dgemv",
    "dtrsm",
    "pdgemm",
    "sgemm",
)


def peer_ids(n: int) -> List[str]:
    """Deterministic, evenly spread lowercase peer ids (``pa``, ``pb``…)."""
    digits = "abcdefghijklmnopqrstuvwxyz"
    ids = []
    for i in range(n):
        label, x = "", i
        for _ in range(max(1, (n - 1).bit_length() // 4 + 2)):
            label += digits[x % 26]
            x //= 26
        ids.append("p" + label)
    return sorted(set(ids))


async def start_cluster(
    n_peers: int,
    *,
    tcp: bool = False,
    host: str = "127.0.0.1",
    port: int = 0,
    path: Optional[str] = None,
    capacity: int = 10,
):
    """Bring up transport + engine + broker + ``n_peers`` peers; returns
    ``(transport, engine, broker)`` ready to serve."""
    transport = AsyncioTransport(
        host=host if tcp else None, port=port, path=None if tcp else path
    )
    await transport.start()
    engine = ProtocolEngine(transport=transport)
    broker = Broker(engine, transport)
    await broker.start()
    ids = peer_ids(n_peers)
    engine.bootstrap_peer(ids[0], capacity)
    for pid in ids[1:]:
        engine.join_peer(pid, capacity, seed=broker.registry.successor_of(pid))
        await transport.drain()
    engine.check_ring()
    return transport, engine, broker


async def run_demo(address, out=print) -> dict:
    """Register and discover :data:`DEMO_KEYS` through a real socket."""
    client = await DLPTClient.connect(address)
    try:
        registered = await asyncio.gather(*[client.register(k) for k in DEMO_KEYS])
        for record in registered:
            out(f"  registered {record['key']!r} on peer {record['host']!r}")
        results = await client.discover_batch(list(DEMO_KEYS))
        for row in results:
            out(
                f"  discover {row['key']!r}: found={row['found']} "
                f"host={row['host']!r} hops={row['hops']}"
            )
        miss = await client.discover("no-such-service")
        out(f"  discover 'no-such-service': found={miss['found']}")
        info = await client.info()
        out(f"  cluster: {info['peers']} peers, {info['nodes']} nodes")
        return {
            "registered": len(registered),
            "found": sum(1 for r in results if r["found"]),
            "missed": 0 if miss["found"] else 1,
            "info": info,
        }
    finally:
        await client.close()


async def serve(args, out=print) -> int:
    transport, engine, broker = await start_cluster(
        args.peers,
        tcp=args.tcp,
        host=args.host,
        port=args.port,
        path=args.path,
        capacity=args.capacity,
    )
    try:
        out(f"cluster up: {args.peers} peers, listening on {transport.address}")
        if args.demo:
            summary = await run_demo(transport.address, out=out)
            ok = (
                summary["registered"] == len(DEMO_KEYS)
                and summary["found"] == len(DEMO_KEYS)
                and summary["missed"] == 1
            )
            out("demo " + ("passed" if ok else "FAILED"))
            return 0 if ok else 1
        out("serving until interrupted (Ctrl-C to stop)")
        with contextlib.suppress(asyncio.CancelledError, KeyboardInterrupt):
            await asyncio.Event().wait()
        return 0
    finally:
        await broker.close()
        await transport.close()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Launch a local N-peer DLPT cluster behind a socket.",
    )
    parser.add_argument("--peers", type=int, default=8,
                        help="cluster size (default 8)")
    parser.add_argument("--capacity", type=int, default=10,
                        help="per-peer capacity (default 10)")
    parser.add_argument("--tcp", action="store_true",
                        help="listen on TCP instead of a Unix-domain socket")
    parser.add_argument("--host", default="127.0.0.1",
                        help="TCP bind host (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP bind port (default: ephemeral)")
    parser.add_argument("--path", default=None,
                        help="Unix-domain socket path (default: a temp dir)")
    parser.add_argument("--demo", action="store_true",
                        help="register+discover demo keys via a socket "
                        "client, then exit")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.peers < 1:
        print("error: --peers must be >= 1")
        return 2
    try:
        return asyncio.run(serve(args))
    except KeyboardInterrupt:
        return 0
