"""``python -m repro serve`` — launch a local DLPT cluster over sockets.

Single-process mode (the default) brings up one
:class:`~repro.net.asyncio_transport.AsyncioTransport` (Unix-domain
socket by default, ``--tcp`` for TCP), a
:class:`~repro.dlpt.protocol.ProtocolEngine` hosting ``--peers`` peers
bootstrapped through the registry (each join is one seeded
``NewPredecessor``), and the :class:`~repro.net.bootstrap.Broker` RPC
endpoint; then serves until SIGTERM/SIGINT, draining in-flight protocol
traffic before shutdown.

``--processes N`` (N >= 2) instead spreads the ring over N engine-group
worker processes (:class:`~repro.net.procgroup.MultiProcessCluster`,
peer-to-peer sockets between groups) and serves clients through
:class:`ClusterBroker` — the same ``"@broker"`` wire contract, so
:class:`~repro.net.client.DLPTClient` cannot tell the topologies apart.

``--journal PATH`` persists membership as ``repro-registry/1`` JSONL;
on startup a non-empty journal is replayed and the recovered peers are
re-admitted in place of the default topology — the restart-recovery half
of the bootstrap registry.

``--demo`` connects a client to the listener, registers a few service
keys, discovers them (plus one deliberate miss) over the real socket,
prints the results and exits — the self-check of the acceptance
criteria.  Bind failures (port in use, stale socket path) exit non-zero
with a one-line error instead of a traceback; the listening socket file
is unlinked on clean shutdown.
"""

from __future__ import annotations

import argparse
import asyncio
import bisect
import contextlib
import os
import signal
from typing import List, Optional

from ..dlpt.protocol import ProtocolEngine
from ..util.specs import SpecError, parse_spec
from .asyncio_transport import AsyncioTransport
from .bootstrap import Broker, RegistryJournal
from .chaos import ChaosTransport
from .client import DLPTClient
from .procgroup import ClusterRecovering, MultiProcessCluster, group_of

#: Keys the demo registers and then discovers over the socket.
DEMO_KEYS = (
    "dgemm",
    "dgemv",
    "dtrsm",
    "pdgemm",
    "sgemm",
)


def peer_ids(n: int) -> List[str]:
    """Deterministic, evenly spread lowercase peer ids (``pa``, ``pb``…)."""
    digits = "abcdefghijklmnopqrstuvwxyz"
    ids = []
    for i in range(n):
        label, x = "", i
        for _ in range(max(1, (n - 1).bit_length() // 4 + 2)):
            label += digits[x % 26]
            x //= 26
        ids.append("p" + label)
    return sorted(set(ids))


def _initial_members(n_peers: int, capacity: int, journal):
    """The topology to admit at startup: the journal's recovered
    membership when non-empty, else the default ``peer_ids`` spread.
    Returns ``(members, recovered)`` — fresh topologies get journaled,
    recovered ones are already on disk."""
    replayed = journal.replay() if journal is not None else {}
    if replayed:
        return replayed, True
    return {pid: capacity for pid in peer_ids(n_peers)}, False


async def start_cluster(
    n_peers: int,
    *,
    tcp: bool = False,
    host: str = "127.0.0.1",
    port: int = 0,
    path: Optional[str] = None,
    capacity: int = 10,
    inbox_limit: Optional[int] = None,
    retry_after: float = 0.05,
    journal: Optional[RegistryJournal] = None,
    chaos=None,
):
    """Bring up transport + engine + broker + ``n_peers`` peers; returns
    ``(transport, engine, broker)`` ready to serve.  ``inbox_limit`` /
    ``retry_after`` / ``journal`` configure the broker's backpressure and
    persistence (:mod:`repro.net.bootstrap`); a non-empty journal is
    replayed and its membership re-admitted instead of the default.
    ``chaos`` (a plan/spec per :mod:`repro.net.chaos`) wraps the transport
    in a :class:`~repro.net.chaos.ChaosTransport`, enabled only once the
    initial topology is up — chaos perturbs serving, not bring-up."""
    transport = AsyncioTransport(
        host=host if tcp else None, port=port, path=None if tcp else path
    )
    await transport.start()
    if chaos is not None:
        transport = ChaosTransport(transport, chaos)
        transport.enabled = False
    engine = ProtocolEngine(transport=transport)
    broker = Broker(
        engine,
        transport,
        inbox_limit=inbox_limit,
        retry_after=retry_after,
        journal=journal,
    )
    await broker.start()
    members, recovered = _initial_members(n_peers, capacity, journal)
    ids = sorted(members)
    engine.bootstrap_peer(ids[0], members[ids[0]])
    for pid in ids[1:]:
        engine.join_peer(pid, members[pid], seed=broker.registry.successor_of(pid))
        await transport.drain()
    if journal is not None and not recovered:
        for pid in ids:
            journal.record("join", pid, members[pid])
    engine.check_ring()
    if chaos is not None:
        transport.enabled = True
    return transport, engine, broker


class ClusterBroker(Broker):
    """The ``"@broker"`` RPC surface served by a multi-process ring.

    Inherits :class:`~repro.net.bootstrap.Broker`'s admission control
    (bounded inbox with ``busy`` replies, per-client round-robin,
    idempotent retries by correlation id) and serving loop unchanged;
    every operation delegates to the coordinator's control plane instead
    of a local engine, so clients get identical reply shapes from both
    topologies.

    A supervisor-driven recovery surfaces as :class:`~repro.net.procgroup
    .ClusterRecovering` (and a worker silently dying, as a control-RPC
    timeout); both are *transient*, so they map to backpressure replies —
    a resilient client retries through the outage instead of failing.
    """

    RETRYABLE_ERRORS = (ClusterRecovering, asyncio.TimeoutError)

    def __init__(
        self,
        cluster: MultiProcessCluster,
        transport,
        *,
        inbox_limit: Optional[int] = None,
        retry_after: float = 0.05,
        journal: Optional[RegistryJournal] = None,
    ) -> None:
        super().__init__(
            None,
            transport,
            inbox_limit=inbox_limit,
            retry_after=retry_after,
            journal=journal,
        )
        self.cluster = cluster

    async def _op_register(self, request: dict) -> dict:
        return await self.cluster.register(str(request["key"]), request.get("datum"))

    async def _op_discover(self, request: dict) -> dict:
        key = str(request["key"])
        reply = await self.cluster.discover(key)
        if reply is None:
            raise RuntimeError(f"no entry node for {key!r} (empty tree)")
        return reply

    async def _op_discover_batch(self, request: dict) -> dict:
        results = []
        for key in [str(k) for k in request["keys"]]:
            reply = await self.cluster.discover(key)
            if reply is None:
                raise RuntimeError(f"no entry node for {key!r} (empty tree)")
            results.append(reply)
        return {"results": results}

    async def _op_search(self, request: dict) -> dict:
        reply = await self.cluster.search(
            str(request["kind"]), str(request["lo"]), str(request.get("hi", ""))
        )
        if reply is None:
            raise RuntimeError("no entry node (empty tree)")
        return reply

    async def _op_peer_join(self, request: dict) -> dict:
        peer_id = str(request["peer"])
        capacity = int(request.get("capacity", 10))
        ids = self.cluster.live_ids()
        successor = self.cluster.successor_of(peer_id)
        i = bisect.bisect_left(ids, peer_id)
        seeds = [ids[(i + k) % len(ids)] for k in range(min(3, len(ids)))]
        ring = await self.cluster.join(peer_id, capacity)
        if self.journal is not None:
            self.journal.record("join", peer_id, capacity)
        return {
            "peer": peer_id,
            "successor": successor,
            "seeds": seeds,
            "group": group_of(peer_id, self.cluster.n_groups),
            **ring,
        }

    async def _op_peer_leave(self, request: dict) -> dict:
        peer_id = str(request["peer"])
        await self.cluster.leave(peer_id)
        if self.journal is not None:
            self.journal.record("leave", peer_id)
        return {"peer": peer_id, "peers": len(self.cluster.members)}

    async def _op_info(self, request: dict) -> dict:
        snap = await self.cluster.snapshot()
        keys = sorted(label for label, filled in snap["hosted"].items() if filled)
        return {
            "peers": len(snap["live"]),
            "nodes": len(snap["hosted"]),
            "keys": keys,
            "served": self.requests_served,
            "rejected": self.requests_rejected,
            "pending": self.pending,
            "max_pending": self.max_pending,
        }

    _OPS = {
        "register": _op_register,
        "discover": _op_discover,
        "discover_batch": _op_discover_batch,
        "search": _op_search,
        "peer_join": _op_peer_join,
        "peer_leave": _op_peer_leave,
        "info": _op_info,
    }


async def start_multiprocess_cluster(
    n_peers: int,
    *,
    processes: int,
    tcp: bool = False,
    host: str = "127.0.0.1",
    port: int = 0,
    path: Optional[str] = None,
    capacity: int = 10,
    inbox_limit: Optional[int] = None,
    retry_after: float = 0.05,
    journal: Optional[RegistryJournal] = None,
    chaos=None,
    supervise: bool = False,
    heartbeat_interval: float = 0.25,
    heartbeat_timeout: float = 2.0,
):
    """Bring up ``processes`` engine-group workers, a client-facing
    listener and the :class:`ClusterBroker`; returns ``(transport,
    cluster, broker)`` ready to serve.  ``chaos`` injects the given fault
    plan into every worker transport (enabled once the topology is up);
    ``supervise`` starts the coordinator's heartbeat/restart supervisor
    (:meth:`MultiProcessCluster._supervise`)."""
    cluster = MultiProcessCluster(
        processes=processes,
        chaos=chaos,
        supervise=supervise,
        heartbeat_interval=heartbeat_interval,
        heartbeat_timeout=heartbeat_timeout,
        journal=journal,
    )
    await cluster.start()
    transport = AsyncioTransport(
        host=host if tcp else None, port=port, path=None if tcp else path
    )
    try:
        await transport.start()
    except BaseException:
        await cluster.close()
        raise
    broker = ClusterBroker(
        cluster,
        transport,
        inbox_limit=inbox_limit,
        retry_after=retry_after,
        journal=journal,
    )
    await broker.start()
    if cluster.chaos is not None:
        await cluster.set_chaos(False)  # bring-up runs fault-free
    members, recovered = _initial_members(n_peers, capacity, journal)
    for pid in sorted(members):
        await cluster.join(pid, members[pid])
        if journal is not None and not recovered:
            journal.record("join", pid, members[pid])
    if cluster.chaos is not None:
        await cluster.set_chaos(True)
    return transport, cluster, broker


async def run_demo(address, out=print) -> dict:
    """Register and discover :data:`DEMO_KEYS` through a real socket."""
    client = await DLPTClient.connect(address)
    try:
        registered = await asyncio.gather(*[client.register(k) for k in DEMO_KEYS])
        for record in registered:
            out(f"  registered {record['key']!r} on peer {record['host']!r}")
        results = await client.discover_batch(list(DEMO_KEYS))
        for row in results:
            out(
                f"  discover {row['key']!r}: found={row['found']} "
                f"host={row['host']!r} hops={row['hops']}"
            )
        miss = await client.discover("no-such-service")
        out(f"  discover 'no-such-service': found={miss['found']}")
        info = await client.info()
        out(f"  cluster: {info['peers']} peers, {info['nodes']} nodes")
        return {
            "registered": len(registered),
            "found": sum(1 for r in results if r["found"]),
            "missed": 0 if miss["found"] else 1,
            "info": info,
        }
    finally:
        await client.close()


async def wait_for_shutdown() -> None:
    """Block until SIGTERM or SIGINT (KeyboardInterrupt where the loop
    cannot install signal handlers)."""
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
    try:
        with contextlib.suppress(asyncio.CancelledError, KeyboardInterrupt):
            await stop.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)


def _bind_target(args) -> str:
    if args.tcp:
        return f"{args.host}:{args.port}"
    return args.path if args.path else "a temp-dir unix socket"


async def serve(args, out=print) -> int:
    multiprocess = args.processes > 1
    journal = RegistryJournal(args.journal) if args.journal else None
    chaos = parse_spec("chaos", args.chaos) if getattr(args, "chaos", None) else None
    supervise = bool(getattr(args, "supervise", False))
    if supervise and not multiprocess:
        out("warning: --supervise needs --processes >= 2; ignoring")
        supervise = False
    closers = []
    try:
        if multiprocess:
            transport, cluster, broker = await start_multiprocess_cluster(
                args.peers,
                processes=args.processes,
                tcp=args.tcp,
                host=args.host,
                port=args.port,
                path=args.path,
                capacity=args.capacity,
                journal=journal,
                chaos=chaos,
                supervise=supervise,
            )
            drain = cluster.drain
            closers = [broker.close, transport.close, cluster.close]
        else:
            transport, engine, broker = await start_cluster(
                args.peers,
                tcp=args.tcp,
                host=args.host,
                port=args.port,
                path=args.path,
                capacity=args.capacity,
                journal=journal,
                chaos=chaos,
            )
            drain = transport.drain
            closers = [broker.close, transport.close]
    except OSError as exc:
        message = f"error: cannot bind {_bind_target(args)}: {exc}"
        if not args.tcp and args.path and os.path.exists(args.path):
            message += " (stale socket from an unclean shutdown? remove it and retry)"
        out(message)
        if journal is not None:
            journal.close()
        return 1
    try:
        n_live = (
            len(cluster.members) if multiprocess else len(broker.registry.live_ids())
        )
        topology = f"{n_live} peers" + (
            f" across {args.processes} processes" if multiprocess else ""
        )
        out(f"cluster up: {topology}, listening on {transport.address}")
        if args.demo:
            summary = await run_demo(transport.address, out=out)
            ok = (
                summary["registered"] == len(DEMO_KEYS)
                and summary["found"] == len(DEMO_KEYS)
                and summary["missed"] == 1
            )
            out("demo " + ("passed" if ok else "FAILED"))
            return 0 if ok else 1
        out("serving until SIGTERM (drains in-flight traffic on shutdown)")
        await wait_for_shutdown()
        out("shutdown: draining")
        await drain()
        return 0
    finally:
        for closer in closers:
            await closer()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Launch a local N-peer DLPT cluster behind a socket.",
    )
    parser.add_argument("--peers", type=int, default=8,
                        help="cluster size (default 8)")
    parser.add_argument("--capacity", type=int, default=10,
                        help="per-peer capacity (default 10)")
    parser.add_argument("--processes", type=int, default=1,
                        help="spread the ring over N engine-group worker "
                        "processes (default 1: single in-process engine)")
    parser.add_argument("--tcp", action="store_true",
                        help="listen on TCP instead of a Unix-domain socket")
    parser.add_argument("--host", default="127.0.0.1",
                        help="TCP bind host (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP bind port (default: ephemeral)")
    parser.add_argument("--path", default=None,
                        help="Unix-domain socket path (default: a temp dir)")
    parser.add_argument("--journal", default=None,
                        help="registry journal path (repro-registry/1 JSONL); "
                        "a non-empty journal is replayed on startup and its "
                        "membership re-admitted")
    parser.add_argument("--chaos", default=None, metavar="SPEC",
                        help="inject seeded faults into the serving "
                        "transport(s); SPEC per the chaos grammar, e.g. "
                        "'drop:0.05+delay:0.3:max=0.01:seed=7'")
    parser.add_argument("--supervise", action="store_true",
                        help="run the worker supervisor (heartbeats, "
                        "crash detection, restart + successor adoption); "
                        "needs --processes >= 2")
    parser.add_argument("--demo", action="store_true",
                        help="register+discover demo keys via a socket "
                        "client, then exit")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.peers < 1:
        print("error: --peers must be >= 1")
        return 2
    if args.processes < 1:
        print("error: --processes must be >= 1")
        return 2
    if args.chaos:
        try:
            parse_spec("chaos", args.chaos)
        except SpecError as exc:
            print(f"error: {exc}")
            return 2
    try:
        return asyncio.run(serve(args))
    except KeyboardInterrupt:
        return 0
