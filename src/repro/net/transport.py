"""The transport interface: endpoints, ``send``, timers, and a clock.

This is the seam that lets the *same* protocol objects
(:class:`repro.dlpt.protocol.ProtocolEngine`) run under the discrete-event
simulator and under a real asyncio event loop.  The surface is extracted
from :class:`repro.sim.network.Network` (endpoint registry + payload-
agnostic ``send``) plus the two engine services the protocols consume —
timers (:meth:`Transport.call_later`) and a clock (:meth:`Transport.now`).

Contract (shared by every implementation):

* **Endpoints** are hashable names (peer ids, ``"@client"``, ``"@broker"``).
  Registering an endpoint attaches a synchronous handler
  ``handler(envelope) -> None``; re-registering replaces the handler (a
  peer that re-joins reuses its endpoint id); messages addressed to an
  unregistered endpoint are dead-lettered, never raised.
* **Ordering**: messages between one (src, dst) pair are delivered FIFO.
  Cross-pair interleavings are implementation-defined — the simulator is
  globally FIFO per timestamp, real sockets are not — which is exactly why
  the conformance harness (:mod:`repro.net.conformance`) compares
  *canonicalised* outcome streams.
* **Quiescence**: ``await drain()`` returns once every sent message has
  been delivered, dropped or dead-lettered (transitively: handlers may
  send more).  Under :class:`SimTransport` this runs the simulator until
  idle; under asyncio it waits for the in-flight count to reach zero.
* **Counters**: ``messages_sent`` / ``messages_delivered`` /
  ``messages_dropped`` / ``messages_dead_lettered``, with the invariant
  ``sent == delivered + dropped + dead_lettered`` at quiescence.

Implementations must NOT couple message-loss decisions to latency
sampling: the simulator's :class:`~repro.sim.network.Network` draws loss
from its own RNG and samples latency only for surviving messages (the
contract pinned by ``tests/sim/test_network.py``), and
:class:`~repro.net.asyncio_transport.AsyncioTransport` has no RNG at all —
its delays and losses are the operating system's.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Hashable

from ..sim.engine import Simulator
from ..sim.network import Envelope, Network

Handler = Callable[[Envelope], None]


class TransportError(RuntimeError):
    """A transport-level failure (handler exception, closed transport)."""


class Transport(abc.ABC):
    """Abstract message transport: endpoint registry + delivery + time."""

    #: Delivery counters; every implementation maintains all four.
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_dead_lettered: int = 0

    # -- endpoints ---------------------------------------------------------

    @abc.abstractmethod
    def register(self, endpoint: Hashable, handler: Handler) -> None:
        """Attach ``handler`` to ``endpoint`` (replacing any previous)."""

    @abc.abstractmethod
    def unregister(self, endpoint: Hashable) -> None:
        """Detach ``endpoint``; subsequent messages to it dead-letter."""

    @abc.abstractmethod
    def is_registered(self, endpoint: Hashable) -> bool:
        """Whether ``endpoint`` currently has a handler."""

    # -- delivery ----------------------------------------------------------

    @abc.abstractmethod
    def send(self, src: Hashable, dst: Hashable, payload: Any) -> None:
        """Queue ``payload`` for asynchronous delivery (never blocks)."""

    # -- clock & timers ----------------------------------------------------

    @abc.abstractmethod
    def now(self) -> float:
        """The transport's clock: simulated time or a monotonic second."""

    @abc.abstractmethod
    def call_later(self, delay: float, action: Callable[[], Any]):
        """Run ``action`` after ``delay`` clock units; returns a handle
        with a ``cancel()`` method."""

    # -- lifecycle & quiescence --------------------------------------------

    async def start(self) -> None:
        """Bring the transport up (bind sockets); default: nothing."""

    async def close(self) -> None:
        """Tear the transport down; default: nothing."""

    @abc.abstractmethod
    async def drain(self) -> None:
        """Wait until no message is in flight (transitively)."""

    # -- introspection ------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Messages sent but not yet delivered/dropped/dead-lettered."""
        return (
            self.messages_sent
            - self.messages_delivered
            - self.messages_dropped
            - self.messages_dead_lettered
        )


class SimTransport(Transport):
    """The discrete-event transport: a thin veneer over the existing
    :class:`~repro.sim.engine.Simulator` + :class:`~repro.sim.network.Network`
    pair.  Every call delegates directly, so protocol code driven through a
    ``SimTransport`` behaves byte-identically to code driving the simulator
    and network objects itself (the pre-transport code path).
    """

    def __init__(self, sim: Simulator | None = None, network: Network | None = None) -> None:
        if network is not None and sim is not None and network.sim is not sim:
            raise ValueError("network is bound to a different simulator")
        self.sim = sim or (network.sim if network is not None else Simulator())
        self.network = network or Network(self.sim)

    # -- endpoints ---------------------------------------------------------

    def register(self, endpoint: Hashable, handler: Handler) -> None:
        self.network.register(endpoint, handler)

    def unregister(self, endpoint: Hashable) -> None:
        self.network.unregister(endpoint)

    def is_registered(self, endpoint: Hashable) -> bool:
        return self.network.is_registered(endpoint)

    # -- delivery ----------------------------------------------------------

    def send(self, src: Hashable, dst: Hashable, payload: Any) -> None:
        self.network.send(src, dst, payload)

    # -- clock & timers ----------------------------------------------------

    def now(self) -> float:
        return self.sim.now

    def call_later(self, delay: float, action: Callable[[], Any]):
        return self.sim.schedule(delay, action, label="timer")

    # -- quiescence --------------------------------------------------------

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Synchronous quiescence (what :meth:`ProtocolEngine.run` calls)."""
        return self.sim.run_until_idle(max_events=max_events)

    async def drain(self) -> None:
        self.sim.run_until_idle()

    # -- counters (live views over the network's) --------------------------

    @property
    def messages_sent(self) -> int:  # type: ignore[override]
        return self.network.messages_sent

    @property
    def messages_delivered(self) -> int:  # type: ignore[override]
        return self.network.messages_delivered

    @property
    def messages_dropped(self) -> int:  # type: ignore[override]
        return self.network.messages_dropped

    @property
    def messages_dead_lettered(self) -> int:  # type: ignore[override]
        return self.network.messages_dead_lettered
