"""Bootstrap registry + broker: the cluster's well-known rendezvous.

Joining a DLPT ring without help is an O(ring) walk: ``NewPredecessor``
forwards peer to peer until Algorithm 2's interval check succeeds.  Real
deployments (and distributed-futures brokers like SCOOP's) keep a
rendezvous process that already knows the membership, so a joiner can be
handed its ring position directly.  :class:`BootstrapRegistry` is that
oracle: a deterministic view over the engine's live peers answering "who
is my successor?" (the peer whose arc ``(pred, id]`` will contain the
joiner) plus a bounded list of seed peers.  Joins seeded this way send
one ``NewPredecessor`` straight to the successor — O(1) messages — and
remain correct under staleness because Algorithm 2 still forwards along
the ring when the interval check fails.

:class:`Broker` is the serving half: a ``"@broker"`` endpoint on the
transport accepting JSON request payloads (``op`` + ``id`` + ``reply_to``)
and answering with correlated JSON replies.  Requests are served strictly
one at a time, each followed by ``await transport.drain()`` before the
reply is sent — the protocol has no per-operation acknowledgements, so
quiescence *is* the completion signal.  Operations: ``register``,
``discover``, ``discover_batch``, ``search``, ``peer_join``,
``peer_leave``, ``info``.  :class:`~repro.net.client.DLPTClient` is the
matching caller.

Robustness under client floods (``inbox_limit=``):

* the pending-request inbox is **bounded** — a request arriving when the
  inbox is full is answered immediately with an explicit backpressure
  reply ``{"ok": False, "busy": True, "retry_after": s}``, never silently
  queued without bound or dropped;
* pending requests are kept in **per-client queues** served round-robin,
  so one flooding client cannot starve the others;
* retries are **idempotent by correlation id**: a duplicate of a request
  still queued or being served is absorbed (the original's reply answers
  both), and a duplicate of a completed request is answered from a small
  reply cache without re-executing the operation.

:class:`RegistryJournal` persists membership changes as ``repro-registry/1``
JSONL so a restarted broker recovers its successor oracle before any peer
re-registers.
"""

from __future__ import annotations

import asyncio
import bisect
import collections
import json
import os
from typing import Dict, List, Optional, Tuple

from ..dlpt.protocol import ProtocolEngine
from ..sim.network import Envelope
from .policy import RetryPolicy
from .transport import Transport

#: The broker's well-known endpoint name.
BROKER_ENDPOINT = "@broker"

#: Schema tag of the registry journal's JSONL records.
REGISTRY_SCHEMA = "repro-registry/1"


class BootstrapRegistry:
    """Ring-position oracle over a :class:`ProtocolEngine`'s live peers."""

    def __init__(self, engine: ProtocolEngine) -> None:
        self.engine = engine

    def live_ids(self) -> List[str]:
        """Sorted ids of the peers currently joined to the ring."""
        return sorted(p.id for p in self.engine.peers.values() if p.joined)

    def successor_of(self, peer_id: str) -> Optional[str]:
        """The live peer that will become ``peer_id``'s ring successor:
        the lowest live id >= ``peer_id``, wrapping to the minimum."""
        ids = self.live_ids()
        if not ids:
            return None
        return ids[bisect.bisect_left(ids, peer_id) % len(ids)]

    def admission(self, peer_id: str, n_seeds: int = 3) -> Dict[str, object]:
        """What a joiner needs: its successor seed plus a few live peers
        (the joiner's initial neighbour knowledge)."""
        ids = self.live_ids()
        successor = self.successor_of(peer_id)
        i = bisect.bisect_left(ids, peer_id)
        seeds = [ids[(i + k) % len(ids)] for k in range(min(n_seeds, len(ids)))]
        return {"peer": peer_id, "successor": successor, "seeds": seeds}


class RegistryJournal:
    """JSONL persistence for the bootstrap registry (``repro-registry/1``).

    One line per membership change::

        {"v": "repro-registry/1", "op": "join", "peer": "abcd", "capacity": 10}
        {"v": "repro-registry/1", "op": "leave", "peer": "abcd"}
        {"v": "repro-registry/1", "op": "crash", "peer": "abcd"}

    Appends are flushed line-by-line, so a crash loses at most the change
    in progress.  :meth:`replay` folds the log into the final membership;
    a restarted broker rebuilds its successor oracle from it
    (:meth:`successor_of`) before any peer has re-registered, and the
    serve layer re-admits the recovered peers.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fh = None

    # -- writing -----------------------------------------------------------

    def record(self, op: str, peer: str, capacity: Optional[int] = None) -> None:
        """Append one membership change (``join``/``leave``/``crash``)."""
        entry: Dict[str, object] = {"v": REGISTRY_SCHEMA, "op": op, "peer": peer}
        if capacity is not None:
            entry["capacity"] = capacity
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- recovery ----------------------------------------------------------

    def replay(self) -> Dict[str, int]:
        """Fold the journal into live membership: ``{peer_id: capacity}``.

        Unknown schemas and malformed lines raise ``ValueError`` — a
        corrupt journal must fail loudly, not seed a wrong ring.
        """
        live: Dict[str, int] = {}
        if not os.path.exists(self.path):
            return live
        with open(self.path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{self.path}:{lineno}: not JSON: {exc}"
                    ) from exc
                if entry.get("v") != REGISTRY_SCHEMA:
                    raise ValueError(
                        f"{self.path}:{lineno}: schema {entry.get('v')!r} "
                        f"is not {REGISTRY_SCHEMA!r}"
                    )
                op, peer = entry.get("op"), entry.get("peer")
                if op == "join":
                    live[str(peer)] = int(entry.get("capacity", 10))
                elif op in ("leave", "crash"):
                    live.pop(str(peer), None)
                else:
                    raise ValueError(f"{self.path}:{lineno}: unknown op {op!r}")
        return live

    def successor_of(self, peer_id: str) -> Optional[str]:
        """The recovered successor oracle (same rule as the live
        :meth:`BootstrapRegistry.successor_of`): lowest recovered id >=
        ``peer_id``, wrapping to the minimum."""
        ids = sorted(self.replay())
        if not ids:
            return None
        return ids[bisect.bisect_left(ids, peer_id) % len(ids)]


class Broker:
    """The ``"@broker"`` RPC endpoint: serialised ops + drain-then-reply,
    with bounded-inbox backpressure and per-client fairness (module doc)."""

    #: Completed replies kept for idempotent retries, per broker.
    COMPLETED_CACHE = 256

    #: Exception types a subclass declares *transient* (e.g. the cluster
    #: is mid-recovery): ``_handle`` answers them with a backpressure
    #: (``busy``) reply instead of a definitive error, so resilient
    #: clients retry through the outage rather than failing.
    RETRYABLE_ERRORS: tuple = ()

    def __init__(
        self,
        engine: Optional[ProtocolEngine],
        transport: Optional[Transport] = None,
        *,
        inbox_limit: Optional[int] = None,
        retry_after: float = 0.05,
        journal: Optional[RegistryJournal] = None,
    ) -> None:
        # ``engine=None`` is for subclasses that delegate the operations
        # elsewhere (``repro.net.serve.ClusterBroker``); they must supply
        # ``transport`` and override every ``_OPS`` handler.
        self.engine = engine
        self.transport = transport if transport is not None else engine.transport
        self.registry = BootstrapRegistry(engine)
        self.journal = journal
        self.inbox_limit = inbox_limit
        self.retry_after = retry_after
        #: The backpressure hint expressed as the shared policy shape
        #: (:mod:`repro.net.policy`).  ``jitter=0``: the broker's hint is
        #: a *contract value* clients schedule against — the jitter that
        #: breaks retry storms is applied client-side, per client seed.
        self.retry_policy = RetryPolicy(retries=0, backoff=retry_after, jitter=0.0)
        self.requests_served = 0
        self.requests_rejected = 0
        self.duplicates_absorbed = 0
        #: Pending requests right now / the high-water mark ever observed
        #: (the flood test's bounded-memory witness).
        self.pending = 0
        self.max_pending = 0
        #: client -> FIFO of its pending requests; clients with work rotate
        #: through ``_rr`` so one flooder cannot starve the rest.
        self._queues: Dict[object, collections.deque] = {}
        self._rr: collections.deque = collections.deque()
        self._available: Optional[asyncio.Event] = None
        #: Correlation ids queued or being served, and a bounded LRU of
        #: completed replies — the two halves of idempotent retry.
        self._inflight: set = set()
        self._completed: "collections.OrderedDict[Tuple[object, object], dict]" = (
            collections.OrderedDict()
        )
        self._task: Optional[asyncio.Task] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._available = asyncio.Event()
        self.transport.register(BROKER_ENDPOINT, self._on_message)
        self._task = asyncio.get_running_loop().create_task(self._serve())

    async def close(self) -> None:
        self.transport.unregister(BROKER_ENDPOINT)
        if self._task is not None:
            self._task.cancel()
            await asyncio.gather(self._task, return_exceptions=True)
            self._task = None
        if self.journal is not None:
            self.journal.close()

    # -- admission (backpressure + idempotency) ----------------------------

    def _on_message(self, env: Envelope) -> None:
        if not isinstance(env.payload, dict):
            return
        request = env.payload
        client = request.get("reply_to", env.src)
        rid = request.get("id")
        key = (client, rid)
        if rid is not None:
            cached = self._completed.get(key)
            if cached is not None:
                # Retry of a completed request: re-send the same reply.
                self.duplicates_absorbed += 1
                self.transport.send(BROKER_ENDPOINT, client, cached)
                return
            if key in self._inflight:
                # Retry of a queued/in-service request: the original's
                # reply will answer it.
                self.duplicates_absorbed += 1
                return
        if self.inbox_limit is not None and self.pending >= self.inbox_limit:
            self.requests_rejected += 1
            self.transport.send(
                BROKER_ENDPOINT,
                client,
                {
                    "id": rid,
                    "ok": False,
                    "busy": True,
                    "error": "busy: broker inbox full",
                    "retry_after": self.retry_after,
                },
            )
            return
        if rid is not None:
            self._inflight.add(key)
        queue = self._queues.get(client)
        if queue is None:
            queue = self._queues[client] = collections.deque()
            self._rr.append(client)
        queue.append(request)
        self.pending += 1
        if self.pending > self.max_pending:
            self.max_pending = self.pending
        self._available.set()

    # -- serving loop ------------------------------------------------------

    def _next_request(self) -> Tuple[object, dict]:
        """Round-robin pop: serve the head client's oldest request, then
        move that client to the back of the rotation."""
        client = self._rr[0]
        queue = self._queues[client]
        request = queue.popleft()
        self.pending -= 1
        if queue:
            self._rr.rotate(-1)
        else:
            self._rr.popleft()
            del self._queues[client]
        if not self._rr:
            self._available.clear()
        return client, request

    async def _serve(self) -> None:
        while True:
            await self._available.wait()
            client, request = self._next_request()
            reply = await self._handle(request)
            rid = request.get("id")
            if rid is not None:
                key = (client, rid)
                self._inflight.discard(key)
                # Busy replies are *transient* — caching one would pin a
                # retrying client to the rejection forever (its same-id
                # retry would hit the cache, never the recovered broker).
                if not reply.get("busy"):
                    self._completed[key] = reply
                    while len(self._completed) > self.COMPLETED_CACHE:
                        self._completed.popitem(last=False)
            self.transport.send(BROKER_ENDPOINT, client, reply)
            self.requests_served += 1

    async def _handle(self, request: dict) -> dict:
        reply = {"id": request.get("id")}
        try:
            op = request.get("op")
            handler = self._OPS.get(op)
            if handler is None:
                raise ValueError(f"unknown broker op {op!r}")
            result = await handler(self, request)
            reply.update(ok=True, **result)
        except self.RETRYABLE_ERRORS as exc:
            # Transient (the cluster is healing): tell the client to come
            # back, exactly like inbox backpressure.
            reply.update(
                ok=False,
                busy=True,
                error=f"retry: {type(exc).__name__}: {exc}",
                retry_after=self.retry_after,
            )
        except Exception as exc:  # every other failure is a definitive error
            reply.update(ok=False, error=f"{type(exc).__name__}: {exc}")
        return reply

    # -- operations --------------------------------------------------------

    def _entry(self) -> Optional[str]:
        """A deterministic entry node for client ops (lowest label)."""
        locator = self.engine.locator
        return min(locator) if locator else None

    async def _op_register(self, request: dict) -> dict:
        key = str(request["key"])
        self.engine.insert_data(key, request.get("datum"), via=self._entry())
        await self.transport.drain()
        host = self.engine.locator.get(key)
        if host is None:
            # Under fault injection the insertion can be lost in flight;
            # an ok-reply here would be a *false acknowledgement* — the
            # client must see a failure so it (or its retry policy) knows
            # the registration did not land.
            raise RuntimeError(f"registration of {key!r} did not install a host")
        return {"key": key, "host": host}

    def _collect_replies(self, mark: int) -> list:
        replies = self.engine.discovery_replies[mark:]
        del self.engine.discovery_replies[mark:]
        return replies

    @staticmethod
    def _reply_record(engine: ProtocolEngine, reply) -> dict:
        return {
            "key": reply.key,
            "found": reply.found,
            "data": sorted(reply.data, key=repr),
            "hops": reply.hops,
            "host": engine.locator.get(reply.key),
        }

    async def _op_discover(self, request: dict) -> dict:
        key = str(request["key"])
        mark = len(self.engine.discovery_replies)
        self.engine.discover(key, via=self._entry())
        await self.transport.drain()
        replies = self._collect_replies(mark)
        if len(replies) != 1:
            raise RuntimeError(f"expected 1 reply for {key!r}, got {len(replies)}")
        return self._reply_record(self.engine, replies[0])

    async def _op_discover_batch(self, request: dict) -> dict:
        keys = [str(k) for k in request["keys"]]
        mark = len(self.engine.discovery_replies)
        entry = self._entry()
        for key in keys:
            self.engine.discover(key, via=entry)
        await self.transport.drain()
        # Replies land in delivery order, which a live transport does not
        # tie to issue order: re-associate by key (duplicates in the batch
        # get identical answers, so bucket order is immaterial).
        buckets: Dict[str, list] = {}
        for reply in self._collect_replies(mark):
            buckets.setdefault(reply.key, []).append(reply)
        results = [
            self._reply_record(self.engine, buckets[key].pop()) for key in keys
        ]
        return {"results": results}

    async def _op_search(self, request: dict) -> dict:
        """One set query (``kind`` ``"prefix"`` or ``"range"``) served by
        the scan-token walk; the reply carries the sorted matched keys."""
        kind = str(request["kind"])
        lo = str(request["lo"])
        hi = str(request.get("hi", ""))
        mark = len(self.engine.query_replies)
        self.engine.search_query(kind, lo, hi, via=self._entry())
        await self.transport.drain()
        replies = self.engine.query_replies[mark:]
        del self.engine.query_replies[mark:]
        if len(replies) != 1:
            raise RuntimeError(
                f"expected 1 reply for {kind} query {lo!r}, got {len(replies)}"
            )
        reply = replies[0]
        return {
            "kind": reply.kind,
            "lo": reply.lo,
            "hi": reply.hi,
            "keys": list(reply.keys),
            "hops": reply.hops,
        }

    async def _op_peer_join(self, request: dict) -> dict:
        peer_id = str(request["peer"])
        capacity = int(request.get("capacity", 10))
        admission = self.registry.admission(peer_id)
        if not self.engine.peers:
            self.engine.bootstrap_peer(peer_id, capacity)
        else:
            self.engine.join_peer(peer_id, capacity, seed=admission["successor"])
        await self.transport.drain()
        peer = self.engine.peers[peer_id]
        if self.journal is not None:
            self.journal.record("join", peer_id, capacity)
        return {**admission, "pred": peer.pred, "succ": peer.succ}

    async def _op_peer_leave(self, request: dict) -> dict:
        peer_id = str(request["peer"])
        self.engine.leave_peer(peer_id)
        await self.transport.drain()
        if self.journal is not None:
            self.journal.record("leave", peer_id)
        return {"peer": peer_id, "peers": len(self.registry.live_ids())}

    async def _op_info(self, request: dict) -> dict:
        engine = self.engine
        keys = sorted(
            label
            for label, host in engine.locator.items()
            if engine.peers[host].nodes[label].data
        )
        return {
            "peers": len(self.registry.live_ids()),
            "nodes": len(engine.locator),
            "keys": keys,
            "served": self.requests_served,
            "rejected": self.requests_rejected,
            "pending": self.pending,
            "max_pending": self.max_pending,
        }

    _OPS = {
        "register": _op_register,
        "discover": _op_discover,
        "discover_batch": _op_discover_batch,
        "search": _op_search,
        "peer_join": _op_peer_join,
        "peer_leave": _op_peer_leave,
        "info": _op_info,
    }
