"""Bootstrap registry + broker: the cluster's well-known rendezvous.

Joining a DLPT ring without help is an O(ring) walk: ``NewPredecessor``
forwards peer to peer until Algorithm 2's interval check succeeds.  Real
deployments (and distributed-futures brokers like SCOOP's) keep a
rendezvous process that already knows the membership, so a joiner can be
handed its ring position directly.  :class:`BootstrapRegistry` is that
oracle: a deterministic view over the engine's live peers answering "who
is my successor?" (the peer whose arc ``(pred, id]`` will contain the
joiner) plus a bounded list of seed peers.  Joins seeded this way send
one ``NewPredecessor`` straight to the successor — O(1) messages — and
remain correct under staleness because Algorithm 2 still forwards along
the ring when the interval check fails.

:class:`Broker` is the serving half: a ``"@broker"`` endpoint on the
transport accepting JSON request payloads (``op`` + ``id`` + ``reply_to``)
and answering with correlated JSON replies.  Requests funnel through one
queue and are served strictly one at a time, each followed by ``await
transport.drain()`` before the reply is sent — the protocol has no
per-operation acknowledgements, so quiescence *is* the completion signal.
Operations: ``register``, ``discover``, ``discover_batch``, ``search``,
``peer_join``, ``peer_leave``, ``info``.
:class:`~repro.net.client.DLPTClient` is the matching caller.
"""

from __future__ import annotations

import asyncio
import bisect
from typing import Dict, List, Optional

from ..dlpt.protocol import ProtocolEngine
from ..sim.network import Envelope
from .transport import Transport

#: The broker's well-known endpoint name.
BROKER_ENDPOINT = "@broker"


class BootstrapRegistry:
    """Ring-position oracle over a :class:`ProtocolEngine`'s live peers."""

    def __init__(self, engine: ProtocolEngine) -> None:
        self.engine = engine

    def live_ids(self) -> List[str]:
        """Sorted ids of the peers currently joined to the ring."""
        return sorted(p.id for p in self.engine.peers.values() if p.joined)

    def successor_of(self, peer_id: str) -> Optional[str]:
        """The live peer that will become ``peer_id``'s ring successor:
        the lowest live id >= ``peer_id``, wrapping to the minimum."""
        ids = self.live_ids()
        if not ids:
            return None
        return ids[bisect.bisect_left(ids, peer_id) % len(ids)]

    def admission(self, peer_id: str, n_seeds: int = 3) -> Dict[str, object]:
        """What a joiner needs: its successor seed plus a few live peers
        (the joiner's initial neighbour knowledge)."""
        ids = self.live_ids()
        successor = self.successor_of(peer_id)
        i = bisect.bisect_left(ids, peer_id)
        seeds = [ids[(i + k) % len(ids)] for k in range(min(n_seeds, len(ids)))]
        return {"peer": peer_id, "successor": successor, "seeds": seeds}


class Broker:
    """The ``"@broker"`` RPC endpoint: serialised ops + drain-then-reply."""

    def __init__(self, engine: ProtocolEngine, transport: Optional[Transport] = None) -> None:
        self.engine = engine
        self.transport = transport if transport is not None else engine.transport
        self.registry = BootstrapRegistry(engine)
        self.requests_served = 0
        self._inbox: Optional[asyncio.Queue] = None
        self._task: Optional[asyncio.Task] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._inbox = asyncio.Queue()
        self.transport.register(BROKER_ENDPOINT, self._on_message)
        self._task = asyncio.get_running_loop().create_task(self._serve())

    async def close(self) -> None:
        self.transport.unregister(BROKER_ENDPOINT)
        if self._task is not None:
            self._task.cancel()
            await asyncio.gather(self._task, return_exceptions=True)
            self._task = None

    # -- serving loop ------------------------------------------------------

    def _on_message(self, env: Envelope) -> None:
        if isinstance(env.payload, dict):
            self._inbox.put_nowait((env.src, env.payload))

    async def _serve(self) -> None:
        while True:
            src, request = await self._inbox.get()
            reply = await self._handle(request)
            reply_to = request.get("reply_to", src)
            self.transport.send(BROKER_ENDPOINT, reply_to, reply)
            self.requests_served += 1

    async def _handle(self, request: dict) -> dict:
        reply = {"id": request.get("id")}
        try:
            op = request.get("op")
            handler = self._OPS.get(op)
            if handler is None:
                raise ValueError(f"unknown broker op {op!r}")
            result = await handler(self, request)
            reply.update(ok=True, **result)
        except Exception as exc:  # every failure becomes an error reply
            reply.update(ok=False, error=f"{type(exc).__name__}: {exc}")
        return reply

    # -- operations --------------------------------------------------------

    def _entry(self) -> Optional[str]:
        """A deterministic entry node for client ops (lowest label)."""
        locator = self.engine.locator
        return min(locator) if locator else None

    async def _op_register(self, request: dict) -> dict:
        key = str(request["key"])
        self.engine.insert_data(key, request.get("datum"), via=self._entry())
        await self.transport.drain()
        return {"key": key, "host": self.engine.locator.get(key)}

    def _collect_replies(self, mark: int) -> list:
        replies = self.engine.discovery_replies[mark:]
        del self.engine.discovery_replies[mark:]
        return replies

    @staticmethod
    def _reply_record(engine: ProtocolEngine, reply) -> dict:
        return {
            "key": reply.key,
            "found": reply.found,
            "data": sorted(reply.data, key=repr),
            "hops": reply.hops,
            "host": engine.locator.get(reply.key),
        }

    async def _op_discover(self, request: dict) -> dict:
        key = str(request["key"])
        mark = len(self.engine.discovery_replies)
        self.engine.discover(key, via=self._entry())
        await self.transport.drain()
        replies = self._collect_replies(mark)
        if len(replies) != 1:
            raise RuntimeError(f"expected 1 reply for {key!r}, got {len(replies)}")
        return self._reply_record(self.engine, replies[0])

    async def _op_discover_batch(self, request: dict) -> dict:
        keys = [str(k) for k in request["keys"]]
        mark = len(self.engine.discovery_replies)
        entry = self._entry()
        for key in keys:
            self.engine.discover(key, via=entry)
        await self.transport.drain()
        # Replies land in delivery order, which a live transport does not
        # tie to issue order: re-associate by key (duplicates in the batch
        # get identical answers, so bucket order is immaterial).
        buckets: Dict[str, list] = {}
        for reply in self._collect_replies(mark):
            buckets.setdefault(reply.key, []).append(reply)
        results = [
            self._reply_record(self.engine, buckets[key].pop()) for key in keys
        ]
        return {"results": results}

    async def _op_search(self, request: dict) -> dict:
        """One set query (``kind`` ``"prefix"`` or ``"range"``) served by
        the scan-token walk; the reply carries the sorted matched keys."""
        kind = str(request["kind"])
        lo = str(request["lo"])
        hi = str(request.get("hi", ""))
        mark = len(self.engine.query_replies)
        self.engine.search_query(kind, lo, hi, via=self._entry())
        await self.transport.drain()
        replies = self.engine.query_replies[mark:]
        del self.engine.query_replies[mark:]
        if len(replies) != 1:
            raise RuntimeError(
                f"expected 1 reply for {kind} query {lo!r}, got {len(replies)}"
            )
        reply = replies[0]
        return {
            "kind": reply.kind,
            "lo": reply.lo,
            "hi": reply.hi,
            "keys": list(reply.keys),
            "hops": reply.hops,
        }

    async def _op_peer_join(self, request: dict) -> dict:
        peer_id = str(request["peer"])
        capacity = int(request.get("capacity", 10))
        admission = self.registry.admission(peer_id)
        if not self.engine.peers:
            self.engine.bootstrap_peer(peer_id, capacity)
        else:
            self.engine.join_peer(peer_id, capacity, seed=admission["successor"])
        await self.transport.drain()
        peer = self.engine.peers[peer_id]
        return {**admission, "pred": peer.pred, "succ": peer.succ}

    async def _op_peer_leave(self, request: dict) -> dict:
        peer_id = str(request["peer"])
        self.engine.leave_peer(peer_id)
        await self.transport.drain()
        return {"peer": peer_id, "peers": len(self.registry.live_ids())}

    async def _op_info(self, request: dict) -> dict:
        engine = self.engine
        keys = sorted(
            label
            for label, host in engine.locator.items()
            if engine.peers[host].nodes[label].data
        )
        return {
            "peers": len(self.registry.live_ids()),
            "nodes": len(engine.locator),
            "keys": keys,
            "served": self.requests_served,
        }

    _OPS = {
        "register": _op_register,
        "discover": _op_discover,
        "discover_batch": _op_discover_batch,
        "search": _op_search,
        "peer_join": _op_peer_join,
        "peer_leave": _op_peer_leave,
        "info": _op_info,
    }
