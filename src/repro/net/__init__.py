"""``repro.net`` — the DLPT runtime behind a transport interface.

The paper's system model is real asynchronous peers exchanging messages;
everything else in this repository runs that model inside one discrete-event
simulator process.  This package is the gateway from reproduction to
service: a :class:`~repro.net.transport.Transport` interface extracted from
:mod:`repro.sim.network` (endpoints, ``send``, timers, a clock) with two
implementations —

* :class:`~repro.net.transport.SimTransport` wraps the existing
  :class:`~repro.sim.engine.Simulator` + :class:`~repro.sim.network.Network`
  pair, byte-identical to driving them directly;
* :class:`~repro.net.asyncio_transport.AsyncioTransport` speaks
  length-prefixed JSON frames (schema ``repro-wire/1``,
  :mod:`repro.net.wire`) over TCP or Unix-domain sockets on an asyncio
  event loop, with per-endpoint inbox queues and a monotonic clock; its
  :class:`~repro.net.asyncio_transport.LoopbackAsyncioTransport` subclass
  keeps the event loop and the wire codec but delivers frames in-process
  in deterministic global FIFO order (tier-1 testable).

The *same* protocol objects (:class:`repro.dlpt.protocol.ProtocolEngine`)
run unchanged on either transport.  On top sit the broker-style bootstrap
registry (:mod:`repro.net.bootstrap`), the futures-style client library
(:mod:`repro.net.client`), the ``python -m repro serve`` cluster launcher
(:mod:`repro.net.serve`) and — the proof obligation — the differential
trace-conformance harness (:mod:`repro.net.conformance`) that replays a
recorded ``repro-trace/1`` workload through both transports and asserts
the canonicalised outcome streams are equal.  See ``docs/runtime.md``.
"""

from .asyncio_transport import AsyncioTransport, LoopbackAsyncioTransport
from .bootstrap import BootstrapRegistry, Broker
from .client import DLPTClient, DLPTClientError
from .transport import SimTransport, Transport, TransportError
from .wire import WIRE_SCHEMA, WireError, decode_frame, encode_frame

__all__ = [
    "AsyncioTransport",
    "BootstrapRegistry",
    "Broker",
    "DLPTClient",
    "DLPTClientError",
    "LoopbackAsyncioTransport",
    "SimTransport",
    "Transport",
    "TransportError",
    "WIRE_SCHEMA",
    "WireError",
    "decode_frame",
    "encode_frame",
]
