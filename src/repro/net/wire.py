"""The ``repro-wire/1`` frame codec: length-prefixed JSON messages.

Every message crossing an :class:`~repro.net.asyncio_transport.AsyncioTransport`
socket is one *frame*:

* a 4-byte big-endian unsigned length prefix, followed by
* that many bytes of UTF-8 JSON (sorted keys, no whitespace — frames are
  byte-stable for identical envelopes), the *body*:

  ``{"d": <dst>, "s": <src>, "t": <type>, "f": <fields>, "w": "repro-wire/1"}``

``t`` names the payload type: one of the protocol message dataclasses of
:mod:`repro.dlpt.messages` (``"DataInsertion"``, ``"DiscoveryRequest"``,
…) with ``f`` holding its fields, or ``"json"`` for plain JSON control
payloads (the bootstrap registry and client RPCs of
:mod:`repro.net.bootstrap`).  Containers are canonicalised on encode —
``frozenset`` → sorted list, ``tuple`` → list, nested
:class:`~repro.dlpt.messages.NodePayload` → object — and restored exactly
on decode, so a protocol dataclass round-trips to an equal instance.

The codec raises :class:`WireError` on anything malformed (oversized
frame, unknown type, non-JSON body): a corrupted peer must fail loudly at
the transport boundary, never poison protocol state.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Hashable, Iterator, Tuple

from ..dlpt import messages as m
from ..sim.network import Envelope

WIRE_SCHEMA = "repro-wire/1"

_HEADER = struct.Struct("!I")
HEADER_SIZE = _HEADER.size

#: Upper bound on one frame's JSON body; a ``LeaveTransfer`` carrying a
#: large ν easily reaches megabytes, anything beyond this is corruption.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_DUMP_KWARGS = dict(sort_keys=True, separators=(",", ":"))

#: The protocol dataclasses that may cross the wire, by type name.
MESSAGE_TYPES = {
    cls.__name__: cls
    for cls in (
        m.PeerJoin,
        m.NewPredecessor,
        m.YourInformation,
        m.UpdateSuccessor,
        m.LeaveTransfer,
        m.UpdatePredecessor,
        m.DataInsertion,
        m.SearchingHost,
        m.Host,
        m.UpdateChild,
        m.DiscoveryRequest,
        m.DiscoveryReply,
        m.SetQueryRequest,
        m.SetQueryReply,
    )
}

#: Fields holding a tuple of strings, per type (lists on the wire).
_STRING_TUPLE_FIELDS = {
    "SetQueryRequest": ("pending", "keys"),
    "SetQueryReply": ("keys",),
}

#: Fields holding one NodePayload / a tuple of NodePayloads, per type.
_PAYLOAD_FIELDS = {"SearchingHost": "payload", "Host": "payload"}
_PAYLOAD_TUPLE_FIELDS = {"YourInformation": "nodes", "LeaveTransfer": "nodes"}


class WireError(ValueError):
    """A malformed frame or an unencodable payload."""


# -- payload serde -----------------------------------------------------------


def _encode_node_payload(payload: m.NodePayload) -> dict:
    return {
        "label": payload.label,
        "father": payload.father,
        "children": sorted(payload.children),
        "data": [_require_scalar(d) for d in payload.data],
    }


def _decode_node_payload(obj: Any) -> m.NodePayload:
    try:
        return m.NodePayload(
            label=str(obj["label"]),
            father=None if obj["father"] is None else str(obj["father"]),
            children=frozenset(str(c) for c in obj["children"]),
            data=tuple(obj["data"]),
        )
    except (KeyError, TypeError) as exc:
        raise WireError(f"malformed NodePayload object: {obj!r}") from exc


#: Public aliases: the multi-process control plane (repro.net.procgroup)
#: ships NodePayload objects inside plain-JSON control RPCs.
def encode_node_payload(payload: m.NodePayload) -> dict:
    """JSON object form of one :class:`~repro.dlpt.messages.NodePayload`."""
    return _encode_node_payload(payload)


def decode_node_payload(obj: Any) -> m.NodePayload:
    """Inverse of :func:`encode_node_payload`."""
    return _decode_node_payload(obj)


def _require_scalar(value: Any) -> Any:
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise WireError(
        f"datum {value!r} is not wire-encodable; only JSON scalars cross "
        "the wire (register rich data under a string key instead)"
    )


def encode_payload(payload: Any) -> Tuple[str, Any]:
    """``(type-name, fields)`` for a protocol message or a JSON control
    payload; raises :class:`WireError` for anything else."""
    name = type(payload).__name__
    if name in MESSAGE_TYPES and type(payload) is MESSAGE_TYPES[name]:
        fields = dict(vars(payload))
        if name in _PAYLOAD_FIELDS:
            key = _PAYLOAD_FIELDS[name]
            fields[key] = _encode_node_payload(fields[key])
        elif name in _PAYLOAD_TUPLE_FIELDS:
            key = _PAYLOAD_TUPLE_FIELDS[name]
            fields[key] = [_encode_node_payload(p) for p in fields[key]]
        elif name == "DataInsertion":
            fields["datum"] = _require_scalar(fields["datum"])
        elif name == "DiscoveryReply":
            fields["data"] = [_require_scalar(d) for d in fields["data"]]
        elif name in _STRING_TUPLE_FIELDS:
            for key in _STRING_TUPLE_FIELDS[name]:
                fields[key] = list(fields[key])
        return name, fields
    if isinstance(payload, (dict, list, str, int, float, bool)) or payload is None:
        return "json", payload
    raise WireError(f"payload of type {type(payload).__name__!r} is not wire-encodable")


def decode_payload(name: str, fields: Any) -> Any:
    """Inverse of :func:`encode_payload`."""
    if name == "json":
        return fields
    cls = MESSAGE_TYPES.get(name)
    if cls is None:
        raise WireError(f"unknown wire message type {name!r}")
    if not isinstance(fields, dict):
        raise WireError(f"{name} fields must be an object, got {type(fields).__name__}")
    fields = dict(fields)
    try:
        if name in _PAYLOAD_FIELDS:
            key = _PAYLOAD_FIELDS[name]
            fields[key] = _decode_node_payload(fields[key])
        elif name in _PAYLOAD_TUPLE_FIELDS:
            key = _PAYLOAD_TUPLE_FIELDS[name]
            fields[key] = tuple(_decode_node_payload(p) for p in fields[key])
        elif name == "DiscoveryReply":
            fields["data"] = tuple(fields["data"])
        elif name in _STRING_TUPLE_FIELDS:
            for key in _STRING_TUPLE_FIELDS[name]:
                fields[key] = tuple(str(v) for v in fields[key])
        return cls(**fields)
    except WireError:
        raise
    except (TypeError, KeyError, ValueError) as exc:
        raise WireError(f"malformed {name} fields: {fields!r}") from exc


# -- frame serde -------------------------------------------------------------


def encode_frame(src: Hashable, dst: Hashable, payload: Any) -> bytes:
    """One wire frame (length prefix + JSON body) for an envelope."""
    name, fields = encode_payload(payload)
    body = {"w": WIRE_SCHEMA, "s": src, "d": dst, "t": name, "f": fields}
    try:
        data = json.dumps(body, **_DUMP_KWARGS).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise WireError(f"payload is not JSON-serialisable: {exc}") from exc
    if len(data) > MAX_FRAME_BYTES:
        raise WireError(f"frame body of {len(data)} bytes exceeds MAX_FRAME_BYTES")
    return _HEADER.pack(len(data)) + data


def decode_body(data: bytes) -> Envelope:
    """Decode one frame *body* (the JSON bytes after the length prefix)."""
    try:
        body = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"frame body is not JSON: {exc}") from exc
    if not isinstance(body, dict):
        raise WireError("frame body must be a JSON object")
    schema = body.get("w")
    if schema != WIRE_SCHEMA:
        raise WireError(f"frame schema {schema!r} is not {WIRE_SCHEMA!r}")
    try:
        src, dst, name, fields = body["s"], body["d"], body["t"], body["f"]
    except KeyError as exc:
        raise WireError(f"frame body lacks key {exc}") from exc
    return Envelope(src=src, dst=dst, payload=decode_payload(name, fields))


def decode_frame(frame: bytes) -> Envelope:
    """Decode one complete frame (prefix + body); exact length required."""
    if len(frame) < HEADER_SIZE:
        raise WireError("truncated frame header")
    (length,) = _HEADER.unpack_from(frame)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"declared frame length {length} exceeds MAX_FRAME_BYTES")
    if len(frame) != HEADER_SIZE + length:
        raise WireError(
            f"frame length mismatch: declared {length}, got {len(frame) - HEADER_SIZE}"
        )
    return decode_body(frame[HEADER_SIZE:])


class FrameReader:
    """Incremental frame parser for a byte stream (socket reads arrive in
    arbitrary chunks; frames come out whole and in order)."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> Iterator[Envelope]:
        """Absorb ``chunk``; yield every frame completed by it."""
        self._buffer.extend(chunk)
        while True:
            if len(self._buffer) < HEADER_SIZE:
                return
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise WireError(
                    f"declared frame length {length} exceeds MAX_FRAME_BYTES"
                )
            end = HEADER_SIZE + length
            if len(self._buffer) < end:
                return
            body = bytes(self._buffer[HEADER_SIZE:end])
            del self._buffer[:end]
            yield decode_body(body)

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)
