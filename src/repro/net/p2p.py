"""Peer-to-peer asyncio transport: one listener per engine group, dialed links.

:class:`AsyncioTransport` multiplexes every endpoint behind one broker
listener — fine for a single process, but a *distributed* DLPT deployment
(the Chord-style substrate the paper assumes, Section 2) gives each peer
its own address and dials its neighbours directly.
:class:`PeerAsyncioTransport` is that shape, at engine-group granularity:

* **Own listener** — every transport binds its own UNIX/TCP socket; the
  endpoints registered on it (the group's peers, its broker, its client
  sink) are served locally, with no hop through a shared broker listener.
* **Outbound connection cache** — frames for endpoints living on *other*
  groups resolve through a caller-supplied ``resolve(endpoint) ->
  address`` callback and travel over cached per-address connections:
  **lazy dial** (a link is opened on first use), **idle reap** (links
  silent for ``idle_timeout`` seconds are closed; the next frame redials)
  and **reconnect with backoff** (dial failures retry with exponential
  backoff before the queued frames are counted dropped).
* **External clients** (:class:`~repro.net.client.DLPTClient`) connect to
  any group's listener exactly as they would to a broker transport: the
  hello frame names their private reply endpoint and frames addressed to
  it are written back over that connection.

Accounting: the per-transport counter invariant ``messages_sent ==
messages_delivered + messages_dropped + messages_dead_lettered`` holds at
quiescence *per group* — a cross-group frame counts ``delivered`` at the
sender once written to the link and ``sent`` at the receiver on ingress,
so cluster-wide sums also balance.  ``frames_out`` / ``frames_in`` count
inter-group wire frames only; a cluster is globally quiescent when every
group's ``in_flight`` is zero **and** the cluster sums satisfy
``Σ frames_out == Σ frames_in`` (a frame can sit in a socket buffer after
the sender counted it delivered — the frame totals catch exactly that
window).  Endpoints whose name starts with a *control prefix* (default
``"@ctl"``/``"@coord"``, the :mod:`repro.net.procgroup` control plane)
bypass every counter, so coordinator polling never perturbs the
quiescence it is measuring.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import zlib
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from ..sim.network import Envelope
from .policy import RetryPolicy
from .transport import Handler, Transport, TransportError
from .wire import WIRE_SCHEMA, FrameReader, WireError, encode_frame

#: Socket read chunk size; frames reassemble across chunks via FrameReader.
_READ_CHUNK = 1 << 16

#: The reserved endpoint hello frames are addressed to (shared with
#: :mod:`repro.net.asyncio_transport` so clients speak to either).
CONTROL_ENDPOINT = "@transport"

#: Endpoint-name prefixes that mark control-plane traffic (uncounted).
DEFAULT_CONTROL_PREFIXES = ("@ctl", "@coord")


class _Link:
    """One cached outbound connection: an outbox and its writer task."""

    __slots__ = ("address", "outbox", "task", "last_used", "writer")

    def __init__(self, address: tuple, loop: asyncio.AbstractEventLoop) -> None:
        self.address = address
        self.outbox: asyncio.Queue = asyncio.Queue()
        self.task: Optional[asyncio.Task] = None
        self.last_used: float = loop.time()
        self.writer: Optional[asyncio.StreamWriter] = None


async def _dial(address: tuple) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    if address[0] == "unix":
        return await asyncio.open_unix_connection(address[1])
    if address[0] == "tcp":
        return await asyncio.open_connection(address[1], address[2])
    raise TransportError(f"undialable address {address!r}")


class PeerAsyncioTransport(Transport):
    """Per-group listener + outbound connection cache (see module doc)."""

    def __init__(
        self,
        *,
        path: Optional[str] = None,
        host: Optional[str] = None,
        port: int = 0,
        resolve: Optional[Callable[[Hashable], Optional[tuple]]] = None,
        drain_timeout: float = 60.0,
        idle_timeout: float = 30.0,
        dial_retries: int = 5,
        dial_backoff: float = 0.05,
        dial_jitter: float = 0.25,
        control_prefixes: tuple = DEFAULT_CONTROL_PREFIXES,
    ) -> None:
        self._handlers: Dict[Hashable, Handler] = {}
        self._inboxes: Dict[Hashable, asyncio.Queue] = {}
        self._consumers: Dict[Hashable, asyncio.Task] = {}
        #: endpoint -> StreamWriter of the client connection hosting it.
        self._routes: Dict[Hashable, asyncio.StreamWriter] = {}
        self._links: Dict[tuple, _Link] = {}
        self._resolve = resolve
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._t0 = 0.0
        self._server: Optional[asyncio.AbstractServer] = None
        self._reaper_task: Optional[asyncio.Task] = None
        self._tempdir: Optional[str] = None
        self._started = False
        self._use_tcp = host is not None
        self._host = host
        self._port = port
        self._path = path
        #: ``("unix", path)`` or ``("tcp", host, port)`` once started.
        self.address: Optional[tuple] = None
        self.drain_timeout = drain_timeout
        self.idle_timeout = idle_timeout
        self.dial_retries = dial_retries
        self.dial_backoff = dial_backoff
        self.dial_jitter = dial_jitter
        self.control_prefixes = tuple(control_prefixes)
        #: Handler/codec/link exceptions, surfaced by :meth:`drain`.
        self.errors: list[BaseException] = []
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_dead_lettered = 0
        #: Inter-group wire frames written / read (control plane excluded).
        self.frames_out = 0
        self.frames_in = 0
        #: Links dialed / reaped over the transport's lifetime.
        self.links_dialed = 0
        self.links_reaped = 0

    def _is_control(self, endpoint: Hashable) -> bool:
        return isinstance(endpoint, str) and endpoint.startswith(self.control_prefixes)

    def set_resolve(self, resolve: Optional[Callable[[Hashable], Optional[tuple]]]) -> None:
        """Install (or replace) the endpoint resolver.  The multi-process
        runtime can only build the full address map after every group has
        bound its listener, so the resolver arrives post-``start()``."""
        self._resolve = resolve

    # -- endpoints ---------------------------------------------------------

    def register(self, endpoint: Hashable, handler: Handler) -> None:
        self._handlers[endpoint] = handler

    def unregister(self, endpoint: Hashable) -> None:
        self._handlers.pop(endpoint, None)

    def is_registered(self, endpoint: Hashable) -> bool:
        return endpoint in self._handlers

    # -- delivery ----------------------------------------------------------

    def send(self, src: Hashable, dst: Hashable, payload: Any) -> None:
        if not self._started:
            raise TransportError("transport is not started")
        control = self._is_control(dst)
        if not control:
            self.messages_sent += 1
        if dst in self._handlers or dst in self._inboxes:
            self._ensure_consumer(dst).put_nowait(Envelope(src=src, dst=dst, payload=payload))
            return
        if dst in self._routes:
            # An external client's reply endpoint: write straight back over
            # its connection (it leaves the cluster's frame accounting).
            try:
                frame = encode_frame(src, dst, payload)
            except WireError as exc:
                self.messages_dropped += 1
                self.errors.append(exc)
                return
            self._routes[dst].write(frame)
            if not control:
                self.messages_delivered += 1
            return
        address = self._resolve(dst) if self._resolve is not None else None
        if address is None or address == self.address:
            if not control:
                self.messages_dead_lettered += 1
            return
        self._link_to(address).outbox.put_nowait((src, dst, payload, control))

    def _link_to(self, address: tuple) -> _Link:
        link = self._links.get(address)
        if link is None:
            link = _Link(address, self._loop)
            self._links[address] = link
            link.task = self._loop.create_task(self._run_link(link))
        link.last_used = self._loop.time()
        return link

    def _dial_policy(self, address: tuple) -> RetryPolicy:
        """The per-link dial schedule: exponential backoff with bounded
        deterministic jitter, seeded per destination address so two groups
        redialing the same dead peer desynchronize from each other."""
        return RetryPolicy(
            retries=self.dial_retries,
            backoff=self.dial_backoff,
            jitter=self.dial_jitter,
            seed=zlib.crc32(repr((self.address, address)).encode("utf-8")),
        )

    async def _run_link(self, link: _Link) -> None:
        """Dial (with backoff), then pump the link's outbox onto the wire."""
        policy = self._dial_policy(link.address)
        for attempt in range(self.dial_retries + 1):
            try:
                _reader, writer = await _dial(link.address)
                break
            except OSError as exc:
                if attempt == self.dial_retries:
                    self._fail_link(link, exc)
                    return
                await asyncio.sleep(policy.delay(attempt + 1))
        link.writer = writer
        self.links_dialed += 1
        writer.write(
            encode_frame(
                CONTROL_ENDPOINT,
                CONTROL_ENDPOINT,
                {"hello": WIRE_SCHEMA, "kind": "peer"},
            )
        )
        try:
            while True:
                src, dst, payload, control = await link.outbox.get()
                try:
                    frame = encode_frame(src, dst, payload)
                except WireError as exc:
                    self.messages_dropped += 1
                    self.errors.append(exc)
                    continue
                writer.write(frame)
                await writer.drain()
                if not control:
                    self.messages_delivered += 1
                    self.frames_out += 1
        except (ConnectionError, OSError) as exc:
            self._fail_link(link, exc)
        finally:
            writer.close()

    def _fail_link(self, link: _Link, exc: BaseException) -> None:
        """The link is unusable: count its queued frames dropped, forget it
        (a later send re-dials from scratch), and surface the error."""
        self.errors.append(exc)
        while not link.outbox.empty():
            _src, _dst, _payload, control = link.outbox.get_nowait()
            if not control:
                self.messages_dropped += 1
        self._links.pop(link.address, None)

    def kill_link(self, dst: Hashable) -> bool:
        """Sever the cached link under ``dst`` mid-flight (chaos's
        connection-kill fault).  Queued non-control frames count dropped —
        the wire contract for a dead connection — but no error is
        recorded: a kill is an injected fault, not a transport defect, and
        the next send to the address re-dials from scratch.  Returns
        whether a link was actually severed."""
        address = self._resolve(dst) if self._resolve is not None else None
        if address is None:
            return False
        link = self._links.pop(address, None)
        if link is None:
            return False
        if link.task is not None:
            link.task.cancel()
        while not link.outbox.empty():
            _src, _dst, _payload, control = link.outbox.get_nowait()
            if not control:
                self.messages_dropped += 1
        if link.writer is not None:
            link.writer.close()
        return True

    def reset_links(self) -> None:
        """Forget every cached outbound link (supervisor recovery: peers
        may have respawned at new addresses).  Queued non-control frames
        count dropped; subsequent sends re-resolve and re-dial."""
        for link in list(self._links.values()):
            if link.task is not None:
                link.task.cancel()
            while not link.outbox.empty():
                _src, _dst, _payload, control = link.outbox.get_nowait()
                if not control:
                    self.messages_dropped += 1
            if link.writer is not None:
                link.writer.close()
        self._links.clear()

    def reset_accounting(self) -> None:
        """Zero the message/frame counters: a fresh accounting epoch.

        After a worker crash, frames written to the dead process
        (``frames_out``) have no matching ingress anywhere, so the cluster
        frame sums can never balance again.  Recovery resets every
        surviving transport's epoch instead of trying to reconstruct what
        the dead worker had absorbed."""
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_dead_lettered = 0
        self.frames_out = 0
        self.frames_in = 0

    async def _reap_idle(self) -> None:
        period = max(self.idle_timeout / 4, 0.01)
        while True:
            await asyncio.sleep(period)
            now = self._loop.time()
            for address, link in list(self._links.items()):
                if (
                    link.outbox.empty()
                    and now - link.last_used > self.idle_timeout
                    and link.task is not None
                ):
                    link.task.cancel()
                    self._links.pop(address, None)
                    self.links_reaped += 1

    # -- listener side -----------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        frames = FrameReader()
        kind: Optional[str] = None
        try:
            while True:
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    break
                for env in frames.feed(chunk):
                    if kind is None:
                        kind = self._handle_hello(env, writer)
                        continue
                    if kind == "peer":
                        # Inter-group ingress: the frame enters this group's
                        # accounting domain here.
                        if not self._is_control(env.dst):
                            self.messages_sent += 1
                            self.frames_in += 1
                    else:
                        # Client ingress (broker RPCs): counted like the
                        # broker transport's remote ingress; the client's
                        # origin endpoint becomes routable back.
                        if not self._is_control(env.dst):
                            self.messages_sent += 1
                        self._routes[env.src] = writer
                    self._route_local(env)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop teardown cancels server-spawned connection tasks that
            # were never individually awaited; exiting quietly keeps the
            # stream protocol's done-callback from logging it.
            pass
        except WireError as exc:
            self.errors.append(exc)
        finally:
            stale = [ep for ep, w in self._routes.items() if w is writer]
            for ep in stale:
                del self._routes[ep]
            writer.close()

    def _handle_hello(self, env: Envelope, writer: asyncio.StreamWriter) -> str:
        """First frame of every connection.  Peer links say ``kind:
        "peer"``; anything else (a :class:`~repro.net.client.DLPTClient`
        hello, which carries ``endpoint``) is a client connection."""
        payload = env.payload
        if (
            env.dst != CONTROL_ENDPOINT
            or not isinstance(payload, dict)
            or payload.get("hello") != WIRE_SCHEMA
        ):
            raise WireError(f"connection did not open with a hello frame: {env!r}")
        if payload.get("kind") == "peer":
            return "peer"
        endpoint = payload.get("endpoint")
        if endpoint is not None:
            self._routes[endpoint] = writer
        return "client"

    def _route_local(self, env: Envelope) -> None:
        """An ingress frame lands: local inbox, client route or dead."""
        control = self._is_control(env.dst)
        if env.dst in self._handlers or env.dst in self._inboxes:
            self._ensure_consumer(env.dst).put_nowait(env)
        elif env.dst in self._routes:
            self._routes[env.dst].write(encode_frame(env.src, env.dst, env.payload))
            if not control:
                self.messages_delivered += 1
        else:
            if not control:
                self.messages_dead_lettered += 1

    def _ensure_consumer(self, endpoint: Hashable) -> asyncio.Queue:
        inbox = self._inboxes.get(endpoint)
        if inbox is None:
            inbox = asyncio.Queue()
            self._inboxes[endpoint] = inbox
            self._consumers[endpoint] = self._loop.create_task(
                self._consume(endpoint, inbox)
            )
        return inbox

    async def _consume(self, endpoint: Hashable, inbox: asyncio.Queue) -> None:
        while True:
            env = await inbox.get()
            self._deliver(env)

    def _deliver(self, env: Envelope) -> None:
        """Run the destination handler; registration is checked at delivery
        time (like the simulator's network) so an endpoint that
        unregistered with messages still inbound dead-letters them."""
        control = self._is_control(env.dst)
        handler = self._handlers.get(env.dst)
        if handler is None:
            if not control:
                self.messages_dead_lettered += 1
            return
        try:
            handler(env)
        except Exception as exc:  # surfaced at drain(); keep consuming
            self.errors.append(exc)
        if not control:
            self.messages_delivered += 1

    # -- clock & timers ----------------------------------------------------

    def now(self) -> float:
        if self._loop is None:
            return 0.0
        return self._loop.time() - self._t0

    def call_later(self, delay: float, action: Callable[[], Any]):
        if self._loop is None:
            raise TransportError("transport is not started")
        return self._loop.call_later(delay, action)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            return
        self._loop = asyncio.get_running_loop()
        self._t0 = self._loop.time()
        if self._use_tcp:
            self._server = await asyncio.start_server(
                self._on_connection, self._host, self._port
            )
            sockname = self._server.sockets[0].getsockname()
            self.address = ("tcp", sockname[0], sockname[1])
        else:
            if self._path is None:
                self._tempdir = tempfile.mkdtemp(prefix="repro-p2p-")
                self._path = os.path.join(self._tempdir, "peer.sock")
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=self._path
            )
            self.address = ("unix", self._path)
        self._reaper_task = self._loop.create_task(self._reap_idle())
        self._started = True

    async def close(self) -> None:
        self._started = False
        tasks = [
            t
            for t in [
                self._reaper_task,
                *(link.task for link in self._links.values()),
                *self._consumers.values(),
            ]
            if t
        ]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._reaper_task = None
        for link in self._links.values():
            if link.writer is not None:
                link.writer.close()
        self._links.clear()
        self._consumers.clear()
        self._inboxes.clear()
        self._routes.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if not self._use_tcp and self._path is not None:
            # Clean shutdown never leaves a stale socket file behind.
            try:
                os.unlink(self._path)
            except OSError:
                pass
        if self._tempdir is not None:
            try:
                os.rmdir(self._tempdir)
            except OSError:
                pass
            self._tempdir = None

    # -- quiescence --------------------------------------------------------

    async def drain(self) -> None:
        """Local quiescence: no *data-plane* message of this group is in
        flight.  Cluster-wide quiescence additionally needs the frame sums
        (module doc) — that loop lives in :mod:`repro.net.procgroup`."""
        deadline = self._loop.time() + self.drain_timeout
        spins = 0
        while self.in_flight > 0:
            if self._loop.time() > deadline:
                raise TransportError(
                    f"drain timed out after {self.drain_timeout}s with "
                    f"{self.in_flight} messages in flight"
                )
            spins += 1
            # Mostly bare yields (everything lives on this loop); back off
            # to a real sleep periodically so socket I/O is never starved.
            await asyncio.sleep(0 if spins % 64 else 0.001)
        if self.errors:
            errors, self.errors = self.errors, []
            raise TransportError(
                f"{len(errors)} handler/codec/link error(s) during drain"
            ) from errors[0]
