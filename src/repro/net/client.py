"""``DLPTClient`` — a futures-style socket client for a served cluster.

The client speaks ``repro-wire/1`` directly: it connects to the cluster's
listener (the address :class:`~repro.net.asyncio_transport.AsyncioTransport`
printed at start), introduces its private reply endpoint with a hello
frame, and exchanges JSON RPC payloads with the ``"@broker"`` endpoint
(:mod:`repro.net.bootstrap`).  Every operation is *futures-style*: the
method synchronously writes the request and returns an
:class:`asyncio.Future`, so callers can issue many operations and await
them together::

    client = await DLPTClient.connect(address)
    futures = [client.register(k) for k in keys]      # pipelined
    await asyncio.gather(*futures)
    hit = await client.discover("storage/s3")         # {"found": True, ...}
    rows = await client.discover_batch(keys)          # one RPC, n results

Replies correlate by request id; a broker-side failure resolves the
future with :class:`DLPTClientError`.  The client is a plain peer-less
process — it holds no ring state and can connect and disconnect freely.

Resilience policy (``connect(..., timeout=, retries=, backoff=)``): with
a timeout set, an RPC whose reply does not arrive in time is retried
under the *same* correlation id — the broker absorbs duplicates of
requests still in service and re-serves completed replies from cache, so
a retry never re-executes the operation.  A broker backpressure reply
(``busy``) raises :class:`DLPTClientBusy` when retries are exhausted;
with retries left, the client honours the reply's ``retry_after`` hint
(falling back to the jittered :class:`~repro.net.policy.RetryPolicy`
schedule) and retries.  Exhausted timeouts raise
:class:`DLPTClientTimeout`.  A **connection reset mid-RPC** is not
fatal: with retries configured, the client redials the original address,
re-introduces the *same* reply endpoint, and re-sends the in-flight
request under the same correlation id — idempotent at the broker for the
same reason timeouts are — raising only once the retry budget is
exhausted.  The default policy (``timeout=None, retries=0``) is the bare
pre-policy behaviour: any connection loss fails pending RPCs outright.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import zlib
from typing import Dict, Optional, Sequence

from .asyncio_transport import CONTROL_ENDPOINT
from .policy import RetryPolicy
from .wire import WIRE_SCHEMA, FrameReader, encode_frame

from .bootstrap import BROKER_ENDPOINT

_client_counter = itertools.count(1)


class DLPTClientError(RuntimeError):
    """The broker answered with an error, or the connection failed."""


class DLPTClientBusy(DLPTClientError):
    """The broker rejected the RPC with backpressure (inbox full)."""

    def __init__(self, message: str, retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class DLPTClientReset(DLPTClientError):
    """The connection died mid-RPC.  With retries configured the client
    absorbs this internally (reconnect + re-send under the same id); it
    surfaces only once the retry budget is exhausted."""


class DLPTClientTimeout(DLPTClientError):
    """No reply arrived within the RPC timeout (after all retries)."""


class DLPTClient:
    """A futures-style RPC client bound to one broker connection."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        endpoint: str,
        *,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.05,
        address: Optional[tuple] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.endpoint = endpoint
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        #: The dialed address, kept so a mid-RPC connection reset can be
        #: healed by redialing (``None`` disables reconnection).
        self._address = address
        self._connected = True
        self._closing = False
        self._conn_lock = asyncio.Lock()
        #: Jittered backoff schedule shared by busy/reset retries; seeded
        #: per client endpoint so synchronized clients desynchronize.
        self._policy = RetryPolicy(
            retries=retries,
            backoff=backoff,
            seed=zlib.crc32(endpoint.encode("utf-8")),
        )
        #: Observability: timeouts suffered, busy replies absorbed, and
        #: connections re-established after mid-RPC resets.
        self.timeouts = 0
        self.busy_rejections = 0
        self.reconnects = 0
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._rpc_tasks: set = set()
        self._loop = asyncio.get_event_loop()
        self._read_task = self._loop.create_task(self._read_loop())

    # -- connection --------------------------------------------------------

    @classmethod
    async def connect(
        cls,
        address,
        *,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.05,
    ) -> "DLPTClient":
        """Connect to a served cluster.

        ``address`` is what the transport reports: ``("unix", path)``,
        ``("tcp", host, port)``, or a bare Unix-socket path string.
        ``timeout``/``retries``/``backoff`` set the RPC resilience policy
        (module doc); the defaults disable it.
        """
        if isinstance(address, (str, os.PathLike)):
            address = ("unix", os.fspath(address))
        endpoint = f"@client-{os.getpid()}-{next(_client_counter)}"
        reader, writer = await cls._open(address, endpoint)
        return cls(
            reader, writer, endpoint,
            timeout=timeout, retries=retries, backoff=backoff, address=address,
        )

    @staticmethod
    async def _open(address: tuple, endpoint: str):
        """Dial ``address`` and send the hello introducing ``endpoint``."""
        kind = address[0]
        if kind == "unix":
            reader, writer = await asyncio.open_unix_connection(address[1])
        elif kind == "tcp":
            reader, writer = await asyncio.open_connection(address[1], address[2])
        else:
            raise ValueError(f"unknown address {address!r}")
        writer.write(
            encode_frame(
                endpoint,
                CONTROL_ENDPOINT,
                {"hello": WIRE_SCHEMA, "endpoint": endpoint},
            )
        )
        await writer.drain()
        return reader, writer

    async def close(self) -> None:
        self._closing = True
        tasks = [self._read_task, *self._rpc_tasks]
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        self._rpc_tasks.clear()
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._fail_pending(DLPTClientError("client closed"))

    # -- the futures-style API ---------------------------------------------

    def register(self, key: str, datum: object = None) -> asyncio.Future:
        """Register ``key`` (with optional JSON-scalar ``datum``); resolves
        to ``{"key": ..., "host": ...}`` once the tree has absorbed it."""
        return self._rpc({"op": "register", "key": key, "datum": datum})

    def discover(self, key: str) -> asyncio.Future:
        """Look ``key`` up; resolves to ``{"found": bool, "data": [...],
        "hops": int, "host": ...}``."""
        return self._rpc({"op": "discover", "key": key})

    def discover_batch(self, keys: Sequence[str]) -> asyncio.Future:
        """Look many keys up in one RPC; resolves to a list of per-key
        result dicts in request order."""
        fut = self._rpc({"op": "discover_batch", "keys": list(keys)})
        result: asyncio.Future = self._loop.create_future()

        def unwrap(done: asyncio.Future) -> None:
            if result.cancelled():
                return
            exc = done.exception() if not done.cancelled() else None
            if done.cancelled():
                result.cancel()
            elif exc is not None:
                result.set_exception(exc)
            else:
                result.set_result(done.result()["results"])

        fut.add_done_callback(unwrap)
        return result

    def complete(self, prefix: str) -> asyncio.Future:
        """Prefix completion: resolves to ``{"keys": [...], "hops": int}``
        with every registered key extending ``prefix``, sorted."""
        return self._rpc({"op": "search", "kind": "prefix", "lo": prefix})

    def range_search(self, lo: str, hi: str) -> asyncio.Future:
        """Lexicographic range query: resolves to ``{"keys": [...],
        "hops": int}`` with every registered key in ``[lo, hi]``, sorted."""
        return self._rpc({"op": "search", "kind": "range", "lo": lo, "hi": hi})

    def peer_join(self, peer_id: str, capacity: int = 10) -> asyncio.Future:
        """Admit a new peer to the ring via the bootstrap registry."""
        return self._rpc({"op": "peer_join", "peer": peer_id, "capacity": capacity})

    def peer_leave(self, peer_id: str) -> asyncio.Future:
        """Gracefully retire a peer from the ring."""
        return self._rpc({"op": "peer_leave", "peer": peer_id})

    def info(self) -> asyncio.Future:
        """Cluster snapshot: peer/node counts and the registered keys."""
        return self._rpc({"op": "info"})

    # -- plumbing ----------------------------------------------------------

    def _rpc(self, body: dict) -> asyncio.Future:
        rid = next(self._ids)
        request = {**body, "id": rid, "reply_to": self.endpoint}
        if self.timeout is None and self.retries == 0:
            return self._send_attempt(rid, request)
        result: asyncio.Future = self._loop.create_future()
        task = self._loop.create_task(self._rpc_with_policy(rid, request, result))
        self._rpc_tasks.add(task)
        task.add_done_callback(self._rpc_tasks.discard)
        return result

    def _send_attempt(self, rid: int, request: dict) -> asyncio.Future:
        """Write the request frame and register a fresh reply future.

        Re-arming the same ``rid`` replaces the previous attempt's future:
        whenever the (single) broker reply lands, it settles the *current*
        attempt, and abandoned attempt futures are simply dropped.
        """
        future = self._loop.create_future()
        if not self._connected:
            future.set_exception(DLPTClientReset("connection reset"))
            return future
        self._pending[rid] = future
        self._writer.write(encode_frame(self.endpoint, BROKER_ENDPOINT, request))
        return future

    async def _rpc_with_policy(
        self, rid: int, request: dict, result: asyncio.Future
    ) -> None:
        try:
            await self._attempt_loop(rid, request, result)
        except asyncio.CancelledError:
            if not result.done():
                result.set_exception(DLPTClientError("client closed"))
                result.exception()  # retrieved: teardown must stay quiet
            raise

    async def _attempt_loop(
        self, rid: int, request: dict, result: asyncio.Future
    ) -> None:
        attempts = self.retries + 1
        last_exc: Exception = DLPTClientError("rpc never attempted")
        for attempt in range(attempts):
            attempt_future = self._send_attempt(rid, request)
            try:
                if self.timeout is not None:
                    payload = await asyncio.wait_for(
                        asyncio.shield(attempt_future), self.timeout
                    )
                else:
                    payload = await attempt_future
            except asyncio.TimeoutError:
                self.timeouts += 1
                last_exc = DLPTClientTimeout(
                    f"rpc {request.get('op')!r} (id {rid}) timed out after "
                    f"{self.timeout}s on attempt {attempt + 1}/{attempts}"
                )
                continue  # retry immediately under the same correlation id
            except DLPTClientBusy as exc:
                self.busy_rejections += 1
                last_exc = exc
                if attempt < attempts - 1:
                    pause = exc.retry_after if exc.retry_after else self._policy.delay(attempt + 1)
                    await asyncio.sleep(pause)
                continue
            except DLPTClientReset as exc:
                # The connection died mid-RPC: heal it and re-send under
                # the same correlation id (the broker's duplicate
                # absorption / completed-reply cache makes this safe).
                last_exc = exc
                if attempt < attempts - 1:
                    try:
                        await self._reconnect()
                    except (ConnectionError, OSError, asyncio.TimeoutError) as dial_exc:
                        last_exc = DLPTClientReset(f"reconnect failed: {dial_exc}")
                    await asyncio.sleep(self._policy.delay(attempt + 1))
                continue
            except DLPTClientError as exc:
                # A definitive broker error: no retry.
                if not result.done():
                    result.set_exception(exc)
                return
            if not result.done():
                result.set_result(payload)
            return
        self._pending.pop(rid, None)
        if not result.done():
            result.set_exception(last_exc)

    async def _read_loop(self) -> None:
        # A fresh FrameReader per connection: a frame truncated by the old
        # connection's death is discarded, never half-delivered.
        frames = FrameReader()
        try:
            while True:
                chunk = await self._reader.read(1 << 16)
                if not chunk:
                    self._on_connection_lost()
                    return
                for env in frames.feed(chunk):
                    self._settle(env.payload)
        except ConnectionError:
            self._on_connection_lost()
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail_pending(DLPTClientError(f"protocol error: {exc}"))

    def _on_connection_lost(self) -> None:
        """The connection died under us.  Resilient clients (retries > 0,
        known address) fail pending attempts with the retryable
        :class:`DLPTClientReset`; bare clients keep the legacy fatal
        behaviour."""
        self._connected = False
        if self._closing:
            self._fail_pending(DLPTClientError("client closed"))
        elif self.retries > 0 and self._address is not None:
            self._fail_pending(DLPTClientReset("connection reset"))
        else:
            self._fail_pending(DLPTClientError("connection closed"))

    async def _reconnect(self) -> None:
        """Redial the original address and re-introduce the *same* reply
        endpoint (the listener re-routes it to the new connection, so even
        a reply to the pre-reset attempt still reaches us)."""
        async with self._conn_lock:
            if self._connected or self._closing:
                return
            if self._address is None:
                raise ConnectionError("no address to reconnect to")
            reader, writer = await self._open(self._address, self.endpoint)
            old_writer = self._writer
            self._reader, self._writer = reader, writer
            self._connected = True
            self.reconnects += 1
            self._read_task = self._loop.create_task(self._read_loop())
            try:
                old_writer.close()
            except Exception:
                pass

    def _settle(self, payload: object) -> None:
        if not isinstance(payload, dict):
            return
        future = self._pending.pop(payload.get("id"), None)
        if future is None or future.done():
            return
        if payload.get("ok"):
            future.set_result(payload)
        elif payload.get("busy"):
            retry_after = payload.get("retry_after")
            future.set_exception(
                DLPTClientBusy(
                    payload.get("error", "busy"),
                    retry_after=retry_after if isinstance(retry_after, (int, float)) else None,
                )
            )
        else:
            future.set_exception(DLPTClientError(payload.get("error", "unknown error")))

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)
        for future in pending.values():
            # Futures nobody awaits yet: mark retrieved so the loop does
            # not log "exception was never retrieved" during teardown.
            if future.done() and not future.cancelled():
                future.exception()
