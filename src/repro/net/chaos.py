"""Chaos engineering for the live runtime: seeded fault injection.

:class:`ChaosTransport` decorates any :class:`~repro.net.transport
.Transport` and injects deterministic, seeded faults on the send path —
the live-runtime counterpart of the simulation fault axis
(:mod:`repro.faults`), so the served system can be subjected to the same
adversities the sim already measures.  Fault modes, driven by a
``chaos:`` spec registered through :mod:`repro.util.specs`:

* ``drop:P`` — each message is dropped with probability ``P``;
* ``delay:P[:max=S]`` — each message is held for a uniform delay in
  ``(0, S]`` with probability ``P`` (per-pair FIFO is preserved: a held
  pair queues, so chaos can reorder across pairs but never within one);
* ``dup:P`` — each message is delivered twice with probability ``P``;
* ``reorder:P`` — like ``delay`` with an infinitesimal hold, forcing
  cross-pair reordering without measurable latency;
* ``kill:P`` — with probability ``P`` the link under the destination is
  severed mid-flight (:meth:`~repro.net.p2p.PeerAsyncioTransport
  .kill_link`); queued frames are counted dropped and the next send
  re-dials — a no-op on transports without links;
* ``crash_storm:RATE[:start=S][:end=S]`` — fail-stop endpoint crashes:
  with per-send probability ``RATE`` (inside the optional transport-clock
  window) a random non-``@`` endpoint is unregistered, exactly the
  vocabulary of :mod:`repro.faults.spec`;
* ``partition:DUR@AT[:fraction=F]`` — between clock ``AT`` and
  ``AT+DUR``, a deterministic ``F``-fraction of (src, dst) pairs is
  symmetric-blocked (messages count dropped), the live analogue of the
  sim's partition windows.

Clauses compose with ``+`` (``"drop:0.05+delay:0.3:max=0.01:seed=7"``)
and every random decision flows from one seeded RNG, so a chaos run is
reproducible bit-for-bit.

**The counter invariant survives chaos.**  Chaos-dropped messages are
counted into both ``messages_sent`` and ``messages_dropped``; held
messages count ``in_flight`` until released; duplicates are two full
inner sends.  At quiescence ``sent == delivered + dropped +
dead_lettered`` therefore holds whenever it holds for the inner
transport — which is exactly what the chaos contract tests assert.

Fault modes differ in what they preserve: ``delay``/``reorder`` preserve
delivery (conformance replays through them must stay oracle-equal),
while ``drop``/``dup``/``kill``/``crash_storm``/``partition`` change the
delivered set and are proven through the counter invariant and the
client-retry no-lost-ack path instead.
"""

from __future__ import annotations

import asyncio
import collections
import random
import zlib
from dataclasses import dataclass, replace
from typing import Any, Callable, Deque, Dict, Hashable, Optional, Tuple

from ..util.specs import SpecError, parse_options, register_spec_kind
from .transport import Handler, Transport, TransportError

#: Endpoint-name prefixes never perturbed by chaos (the control plane and
#: connection hellos must stay reliable or the experiment can't observe).
CONTROL_PREFIXES = ("@ctl", "@coord", "@transport")

#: The hold applied by ``reorder`` (long enough to yield the event loop /
#: advance the sim queue, short enough to be latency-free in practice).
_REORDER_HOLD = 1e-6


class ChaosSpecError(SpecError):
    """A malformed ``chaos:`` spec string or mapping."""


@dataclass(frozen=True)
class PartitionWindow:
    """One partition: pairs blocked during ``[at, at + duration)``."""

    duration: float
    at: float
    fraction: float = 0.5


@dataclass(frozen=True)
class ChaosPlan:
    """The parsed, validated fault plan a :class:`ChaosTransport` runs."""

    drop: float = 0.0
    delay: float = 0.0
    delay_max: float = 0.005
    dup: float = 0.0
    reorder: float = 0.0
    kill: float = 0.0
    crash: float = 0.0
    crash_start: float = 0.0
    crash_end: Optional[float] = None
    partitions: Tuple[PartitionWindow, ...] = ()
    seed: int = 0

    def active(self) -> bool:
        return bool(
            self.drop or self.delay or self.dup or self.reorder
            or self.kill or self.crash or self.partitions
        )


def _probability(value: str, spec: str, what: str) -> float:
    try:
        p = float(value)
    except ValueError as exc:
        raise ChaosSpecError(f"chaos spec {spec!r}: {what} {value!r} is not a number") from exc
    if not 0.0 <= p <= 1.0:
        raise ChaosSpecError(f"chaos spec {spec!r}: {what} {p} is outside [0, 1]")
    return p


def _seconds(value: str, spec: str, what: str) -> float:
    try:
        s = float(value)
    except ValueError as exc:
        raise ChaosSpecError(f"chaos spec {spec!r}: {what} {value!r} is not a number") from exc
    if s < 0:
        raise ChaosSpecError(f"chaos spec {spec!r}: {what} must be >= 0")
    return s


def _parse_clause(clause: str, spec: str, fields: Dict[str, Any]) -> None:
    if "=" in clause.partition(":")[0]:
        # A bare option clause (``...+seed=7``) applying to the whole plan.
        options = parse_options([clause], spec, label="chaos spec")
        if set(options) != {"seed"}:
            raise ChaosSpecError(
                f"chaos spec {spec!r}: unknown plan option(s) "
                f"{', '.join(sorted(set(options) - {'seed'}))}"
            )
        try:
            fields["seed"] = int(options["seed"])
        except ValueError as exc:
            raise ChaosSpecError(f"chaos spec {spec!r}: seed must be an integer") from exc
        return
    kind, _, rest = clause.partition(":")
    tokens = rest.split(":") if rest else []
    positional = None
    if tokens and "=" not in tokens[0]:
        positional = tokens[0]
        tokens = tokens[1:]
    options = parse_options(tokens, spec, label="chaos spec")
    if "seed" in options:
        try:
            fields["seed"] = int(options.pop("seed"))
        except ValueError as exc:
            raise ChaosSpecError(f"chaos spec {spec!r}: seed must be an integer") from exc

    if kind in ("drop", "dup", "reorder", "kill"):
        if positional is None:
            raise ChaosSpecError(f"chaos spec {spec!r}: {kind} needs a probability")
        fields[kind] = _probability(positional, spec, f"{kind} probability")
    elif kind == "delay":
        if positional is None:
            raise ChaosSpecError(f"chaos spec {spec!r}: delay needs a probability")
        fields["delay"] = _probability(positional, spec, "delay probability")
        if "max" in options:
            bound = _seconds(options.pop("max"), spec, "delay max")
            if bound <= 0:
                raise ChaosSpecError(f"chaos spec {spec!r}: delay max must be > 0")
            fields["delay_max"] = bound
    elif kind == "crash_storm":
        if positional is None:
            raise ChaosSpecError(f"chaos spec {spec!r}: crash_storm needs a rate")
        fields["crash"] = _probability(positional, spec, "crash_storm rate")
        if "start" in options:
            fields["crash_start"] = _seconds(options.pop("start"), spec, "crash_storm start")
        if "end" in options:
            fields["crash_end"] = _seconds(options.pop("end"), spec, "crash_storm end")
    elif kind == "partition":
        if positional is None or "@" not in positional:
            raise ChaosSpecError(
                f"chaos spec {spec!r}: partition needs DURATION@AT (e.g. partition:2@4)"
            )
        dur_text, _, at_text = positional.partition("@")
        window = PartitionWindow(
            duration=_seconds(dur_text, spec, "partition duration"),
            at=_seconds(at_text, spec, "partition at"),
            fraction=_probability(options.pop("fraction", "0.5"), spec, "partition fraction"),
        )
        fields["partitions"] = tuple(fields.get("partitions", ())) + (window,)
    else:
        raise ChaosSpecError(
            f"chaos spec {spec!r}: unknown fault kind {kind!r} (expected one of "
            "drop, delay, dup, reorder, kill, crash_storm, partition)"
        )
    if options:
        extra = ", ".join(sorted(options))
        raise ChaosSpecError(f"chaos spec {spec!r}: unknown option(s) {extra} for {kind}")


def parse_chaos(value: object) -> ChaosPlan:
    """Parse any accepted form — spec string, mapping, or a ready
    :class:`ChaosPlan` — into a validated plan."""
    if isinstance(value, ChaosPlan):
        return value
    if isinstance(value, dict):
        try:
            windows = tuple(
                w if isinstance(w, PartitionWindow) else PartitionWindow(**w)
                for w in value.get("partitions", ())
            )
            plan = ChaosPlan(**{**value, "partitions": windows})
        except TypeError as exc:
            raise ChaosSpecError(f"chaos spec {value!r}: {exc}") from exc
        return plan
    if not isinstance(value, str) or not value.strip():
        raise ChaosSpecError(f"chaos spec must be a string, mapping or ChaosPlan: {value!r}")
    fields: Dict[str, Any] = {}
    for clause in value.split("+"):
        clause = clause.strip()
        if not clause:
            raise ChaosSpecError(f"chaos spec {value!r}: empty clause")
        _parse_clause(clause, value, fields)
    return ChaosPlan(**fields)


def chaos_signature(plan: ChaosPlan) -> Dict[str, Any]:
    """The canonical JSON structure :func:`repro.util.specs.spec_hash`
    hashes for a chaos plan."""
    return {
        "drop": plan.drop,
        "delay": plan.delay,
        "delay_max": plan.delay_max,
        "dup": plan.dup,
        "reorder": plan.reorder,
        "kill": plan.kill,
        "crash": plan.crash,
        "crash_start": plan.crash_start,
        "crash_end": plan.crash_end,
        "partitions": [
            {"duration": w.duration, "at": w.at, "fraction": w.fraction}
            for w in plan.partitions
        ],
        "seed": plan.seed,
    }


register_spec_kind("chaos", parse_chaos, chaos_signature)


class ChaosTransport(Transport):
    """A fault-injecting decorator over any :class:`Transport`.

    Every non-chaos concern — endpoint registry, clock, timers, inner
    counters, address, ``set_resolve`` — delegates to the wrapped
    transport, so a ``ChaosTransport`` drops into any seam that accepts a
    ``Transport`` (engines, brokers, the conformance replays).

    ``only`` optionally scopes chaos to a subset of traffic: a predicate
    ``only(src, dst) -> bool``; sends it rejects pass through untouched
    (the no-lost-ack tests scope chaos to broker↔client replies this
    way, leaving the protocol plane healthy).
    """

    def __init__(
        self,
        inner: Transport,
        plan: object,
        *,
        seed: Optional[int] = None,
        only: Optional[Callable[[Hashable, Hashable], bool]] = None,
        drain_timeout: float = 60.0,
    ) -> None:
        self.inner = inner
        self.plan = parse_chaos(plan)
        if seed is not None:
            self.plan = replace(self.plan, seed=seed)
        self._rng = random.Random(self.plan.seed)
        self._only = only
        self.drain_timeout = drain_timeout
        #: Master switch: the serve layer disables injection while the
        #: initial topology is admitted (and while recovery rebuilds the
        #: ring), so chaos perturbs *serving*, not bring-up.
        self.enabled = True
        #: Chaos accounting (observability; folded into the counters).
        self.chaos_dropped = 0
        self.chaos_delayed = 0
        self.chaos_duplicated = 0
        self.chaos_reordered = 0
        self.chaos_kills = 0
        self.crashed: list = []
        #: Held (delayed) messages, FIFO per (src, dst) pair.
        self._held: Dict[Tuple[Hashable, Hashable], Deque] = {}
        self._timers: Dict[Tuple[Hashable, Hashable], Any] = {}
        self._pending_held = 0
        self._endpoints: set = set()

    def __getattr__(self, name: str):
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    # -- delegation ---------------------------------------------------------

    def register(self, endpoint: Hashable, handler: Handler) -> None:
        self._endpoints.add(endpoint)
        self.inner.register(endpoint, handler)

    def unregister(self, endpoint: Hashable) -> None:
        self._endpoints.discard(endpoint)
        self.inner.unregister(endpoint)

    def is_registered(self, endpoint: Hashable) -> bool:
        return self.inner.is_registered(endpoint)

    def now(self) -> float:
        return self.inner.now()

    def call_later(self, delay: float, action: Callable[[], Any]):
        return self.inner.call_later(delay, action)

    async def start(self) -> None:
        await self.inner.start()

    async def close(self) -> None:
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        for queue in self._held.values():
            self.chaos_dropped += len(queue)
            self._pending_held -= len(queue)
        self._held.clear()
        await self.inner.close()

    # -- the fault-injecting send path --------------------------------------

    def _exempt(self, src: Hashable, dst: Hashable) -> bool:
        for endpoint in (src, dst):
            if isinstance(endpoint, str) and endpoint.startswith(CONTROL_PREFIXES):
                return True
        if self._only is not None and not self._only(src, dst):
            return True
        return False

    def _partitioned(self, src: Hashable, dst: Hashable) -> bool:
        if not self.plan.partitions:
            return False
        now = self.inner.now()
        lo, hi = sorted((str(src), str(dst)))
        for window in self.plan.partitions:
            if window.at <= now < window.at + window.duration:
                digest = zlib.crc32(f"{lo}|{hi}|{self.plan.seed}".encode("utf-8"))
                if (digest % 10_000) / 10_000.0 < window.fraction:
                    return True
        return False

    def _crash_window_open(self) -> bool:
        now = self.inner.now()
        if now < self.plan.crash_start:
            return False
        return self.plan.crash_end is None or now < self.plan.crash_end

    def _crash_random_endpoint(self) -> None:
        candidates = sorted(
            e for e in self._endpoints
            if isinstance(e, str) and not e.startswith("@") and self.inner.is_registered(e)
        )
        if not candidates:
            return
        victim = self._rng.choice(candidates)
        self.unregister(victim)
        self.crashed.append(victim)

    def send(self, src: Hashable, dst: Hashable, payload: Any) -> None:
        plan = self.plan
        if not self.enabled or not plan.active() or self._exempt(src, dst):
            self.inner.send(src, dst, payload)
            return
        if self._partitioned(src, dst) or (plan.drop and self._rng.random() < plan.drop):
            self.chaos_dropped += 1
            return
        if plan.crash and self._crash_window_open() and self._rng.random() < plan.crash:
            self._crash_random_endpoint()
        if plan.kill and self._rng.random() < plan.kill:
            kill = getattr(self.inner, "kill_link", None)
            if kill is not None and kill(dst):
                self.chaos_kills += 1
        duplicate = bool(plan.dup) and self._rng.random() < plan.dup
        hold = 0.0
        if plan.delay and self._rng.random() < plan.delay:
            hold = self._rng.random() * plan.delay_max
            self.chaos_delayed += 1
        elif plan.reorder and self._rng.random() < plan.reorder:
            hold = _REORDER_HOLD
            self.chaos_reordered += 1
        pair = (src, dst)
        if hold > 0.0 or pair in self._held:
            # FIFO preservation: once a pair has a held message, every
            # later message of that pair queues behind it.
            self._hold(pair, hold, payload)
            if duplicate:
                self.chaos_duplicated += 1
                self._hold(pair, 0.0, payload)
            return
        self.inner.send(src, dst, payload)
        if duplicate:
            self.chaos_duplicated += 1
            self.inner.send(src, dst, payload)

    def _hold(self, pair: Tuple[Hashable, Hashable], hold: float, payload: Any) -> None:
        queue = self._held.get(pair)
        if queue is None:
            queue = self._held[pair] = collections.deque()
        queue.append(payload)
        self._pending_held += 1
        if len(queue) == 1:
            self._timers[pair] = self.inner.call_later(hold, lambda: self._release(pair))

    def _release(self, pair: Tuple[Hashable, Hashable]) -> None:
        queue = self._held.get(pair)
        if not queue:
            return
        payload = queue.popleft()
        self._pending_held -= 1
        if queue:
            self._timers[pair] = self.inner.call_later(0.0, lambda: self._release(pair))
        else:
            del self._held[pair]
            self._timers.pop(pair, None)
        self.inner.send(pair[0], pair[1], payload)

    # -- counters (chaos folded into the inner transport's) -----------------

    @property
    def messages_sent(self) -> int:  # type: ignore[override]
        return self.inner.messages_sent + self.chaos_dropped

    @property
    def messages_delivered(self) -> int:  # type: ignore[override]
        return self.inner.messages_delivered

    @property
    def messages_dropped(self) -> int:  # type: ignore[override]
        return self.inner.messages_dropped + self.chaos_dropped

    @property
    def messages_dead_lettered(self) -> int:  # type: ignore[override]
        return self.inner.messages_dead_lettered

    @property
    def in_flight(self) -> int:  # type: ignore[override]
        return self.inner.in_flight + self._pending_held

    def reset_accounting(self) -> None:
        """Start a fresh accounting epoch (supervisor recovery): cancel
        held messages, zero the chaos counters, reset the inner epoch."""
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        for queue in self._held.values():
            self._pending_held -= len(queue)
        self._held.clear()
        self.chaos_dropped = 0
        self.chaos_delayed = 0
        self.chaos_duplicated = 0
        self.chaos_reordered = 0
        self.chaos_kills = 0
        inner_reset = getattr(self.inner, "reset_accounting", None)
        if inner_reset is not None:
            inner_reset()

    # -- quiescence ---------------------------------------------------------

    async def drain(self) -> None:
        """Quiescence including held messages: drain the inner transport,
        wait out pending chaos delays, repeat until both are idle."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout
        while True:
            await self.inner.drain()
            if self._pending_held == 0 and self.inner.in_flight == 0:
                return
            if loop.time() > deadline:
                raise TransportError(
                    f"chaos drain timed out after {self.drain_timeout}s with "
                    f"{self._pending_held} held message(s)"
                )
            await asyncio.sleep(0.001)


__all__ = [
    "ChaosPlan",
    "ChaosSpecError",
    "ChaosTransport",
    "PartitionWindow",
    "chaos_signature",
    "parse_chaos",
]
