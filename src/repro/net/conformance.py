"""Differential trace conformance: sim vs live sockets vs multi-process.

The risk of a second (or third) execution engine is silent divergence, so
the proof obligation is differential: replay the *same* recorded
``repro-trace/1`` workload (:mod:`repro.workloads.traces`) through the
protocol engine on the discrete-event transport, on a live asyncio
transport (:func:`replay_trace`), and on a ring spread over OS processes
exchanging protocol messages peer-to-peer
(:func:`replay_trace_multiprocess`), canonicalise the outcome streams,
and assert equality.

What makes the comparison sound:

* **Same inputs.**  Both replays share the trace and a driver RNG seeded
  from the trace header, so joining peers draw identical identifiers in
  identical order.  Entry nodes are taken from the trace (they are
  tree-structural) or chosen deterministically (lowest label).
* **Drain between operations.**  The driver awaits transport quiescence
  after every membership change, registration, fault and request.  Within
  one operation a live transport interleaves endpoint handlers however the
  scheduler likes; between operations both systems are at rest, and the
  PGCP tree is uniquely determined by the registered key set — so the
  at-rest states are comparable.
* **Latency-independent projection.**  A :class:`UnitOutcome` keeps only
  what the paper's protocols define: live-peer count, the sorted
  registered-key set, and per-request ``(key, satisfied, responsible
  host, logical hops)``.  Wall-clock, byte counts and cross-pair message
  interleavings are deliberately excluded.

Crashes (``["crash", index]`` trace events) are mapped onto the fail-stop
semantics of :mod:`repro.faults`: the victim — the ``index % n``-th live
peer in id order, exactly the trace's ring-position draw — abruptly
unregisters its endpoint (no goodbye messages), the driver plays failure
detector by splicing the ring pointers of its neighbours, and the
successor adopts the victim's node replicas (the ``r=1``
successor-replication policy), all identically on either transport.
Partition events are out of scope for the message-level engine and raise
:class:`ConformanceError`.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..dlpt.protocol import ProtocolEngine
from ..experiments.config import ExperimentConfig
from ..experiments.runner import record_single
from ..peers.churn import ChurnModel
from ..workloads.keys import grid_service_corpus
from ..workloads.traces import WorkloadTrace
from .transport import Transport

#: Identifier space for driver-drawn peer ids (lowercase keeps them in the
#: same lexicographic order relation as any printable service key corpus).
_ID_DIGITS = "abcdefghijklmnopqrstuvwxyz"
_ID_LENGTH = 8


class ConformanceError(RuntimeError):
    """A trace event the conformance replay cannot express."""


@dataclass(frozen=True)
class UnitOutcome:
    """The canonical, latency-independent outcome of one trace unit."""

    unit: int
    n_peers: int
    n_nodes: int
    keys: Tuple[str, ...]
    requests: Tuple[Tuple[str, bool, Optional[str], int], ...]
    joins: int = 0
    leaves: int = 0
    crashes: int = 0
    #: Per set query: ``(kind, lo, hi, sorted result keys, logical hops)``.
    queries: Tuple[Tuple[str, str, str, Tuple[str, ...], int], ...] = ()


@dataclass
class ReplayReport:
    """Everything one replay produced: the stream plus transport totals."""

    outcomes: List[UnitOutcome] = field(default_factory=list)
    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dead_lettered: int = 0


def record_conformance_trace(
    *,
    n_peers: int = 200,
    workload: str = "uniform",
    queries: Optional[str] = None,
    faults: Optional[str] = "crash_storm:0.01:start=4:end=8",
    n_keys: int = 240,
    growth_units: int = 4,
    total_units: int = 10,
    load_fraction: float = 0.01,
    churn: ChurnModel = ChurnModel(join_fraction=0.01, leave_fraction=0.01),
    seed: int = 20080617,
) -> WorkloadTrace:
    """Record a ``repro-trace/1`` workload sized for conformance replay.

    The macro experiment pipeline does the recording (so the trace format
    and semantics are exactly what every other consumer sees); the corpus
    is truncated to ``n_keys`` so the live-socket replay stays tractable.
    """
    config = ExperimentConfig(
        n_peers=n_peers,
        corpus=grid_service_corpus()[:n_keys],
        workload=workload,
        queries=queries,
        faults=faults,
        growth_units=growth_units,
        total_units=total_units,
        load_fraction=load_fraction,
        churn=churn,
        seed=seed,
    )
    _, trace = record_single(config, meta={"purpose": "net-conformance"})
    trace.meta["n_bootstrap"] = n_peers
    return trace


def _draw_peer_id(rng: random.Random, taken) -> str:
    while True:
        pid = "".join(rng.choice(_ID_DIGITS) for _ in range(_ID_LENGTH))
        if pid not in taken:
            return pid


def _entry_for(engine: ProtocolEngine, preferred: Optional[str] = None) -> Optional[str]:
    if preferred is not None and preferred in engine.locator:
        return preferred
    return min(engine.locator) if engine.locator else None


def crash_peer_live(engine: ProtocolEngine, transport: Transport, victim_id: str) -> None:
    """Fail-stop crash + ``r=1`` recovery, on any transport.

    The victim's endpoint vanishes mid-air (no goodbye protocol); the
    driver then applies what the failure detector + successor-replication
    policy of :mod:`repro.faults` would conclude: neighbours splice their
    ring pointers past the victim, and the successor adopts the victim's
    node replicas (which the mapping rule now assigns to it).  Driver-side
    state surgery only — no messages — so it is transport-independent by
    construction.
    """
    transport.unregister(victim_id)
    victim = engine.peers.pop(victim_id)
    if victim.succ == victim_id:
        # Last peer of the ring: everything it hosted dies with it.
        for label in victim.nodes:
            engine.locator.pop(label, None)
        return
    successor = engine.peers[victim.succ]
    predecessor = engine.peers[victim.pred]
    successor.pred = victim.pred if victim.pred != victim_id else successor.id
    predecessor.succ = victim.succ
    for label, state in victim.nodes.items():
        successor.nodes[label] = state
        engine.locator[label] = successor.id


async def replay_trace(
    trace: WorkloadTrace,
    transport: Transport,
    *,
    n_bootstrap: Optional[int] = None,
    capacity: int = 10,
) -> ReplayReport:
    """Replay a recorded workload through ``transport``; returns the
    canonical outcome stream.

    ``n_bootstrap`` is the initial platform size (the trace records only
    the workload-side events; the bootstrap population comes from the
    recording's configuration and is stored in ``trace.meta``).
    """
    if n_bootstrap is None:
        n_bootstrap = int(trace.meta.get("n_bootstrap", 0))
    if n_bootstrap < 1:
        raise ConformanceError("n_bootstrap must be >= 1 (set trace.meta['n_bootstrap'])")

    await transport.start()
    engine = ProtocolEngine(transport=transport)
    rng = random.Random(trace.seed ^ 0x5EED)
    report = ReplayReport()

    def live_ids() -> List[str]:
        return sorted(p.id for p in engine.peers.values() if p.joined)

    def successor_of(peer_id: str) -> str:
        ids = live_ids()
        return ids[bisect.bisect_left(ids, peer_id) % len(ids)]

    async def join(peer_id: str, cap: int) -> None:
        if not engine.peers:
            engine.bootstrap_peer(peer_id, cap)
        else:
            engine.join_peer(peer_id, cap, seed=successor_of(peer_id))
        await transport.drain()

    # Bootstrap population: ids drawn from the driver rng, identically on
    # every transport.
    for _ in range(n_bootstrap):
        await join(_draw_peer_id(rng, engine.peers), capacity)

    for unit_index, unit in enumerate(trace.units):
        crashes = 0

        for cap in unit.joins:
            await join(_draw_peer_id(rng, engine.peers), cap)

        leaves = 0
        for index in unit.leaves:
            ids = live_ids()
            if len(ids) <= 1:
                continue
            engine.leave_peer(ids[index % len(ids)])
            await transport.drain()
            leaves += 1

        for event in unit.faults:
            kind = event[0]
            if kind != "crash":
                raise ConformanceError(
                    f"unit {unit_index}: fault kind {kind!r} is not replayable "
                    "at the message level (crash only)"
                )
            ids = live_ids()
            if len(ids) <= 1:
                continue
            crash_peer_live(engine, transport, ids[event[1] % len(ids)])
            await transport.drain()
            crashes += 1

        for key in unit.registrations:
            engine.insert_data(key, via=_entry_for(engine))
            await transport.drain()

        request_outcomes = []
        for key, entry_label in unit.requests:
            via = _entry_for(engine, entry_label)
            mark = len(engine.discovery_replies)
            if via is None:
                request_outcomes.append((key, False, None, 0))
                continue
            engine.discover(key, via=via)
            await transport.drain()
            replies = engine.discovery_replies[mark:]
            del engine.discovery_replies[mark:]
            if len(replies) != 1:
                raise ConformanceError(
                    f"unit {unit_index}: {len(replies)} replies for one request"
                )
            reply = replies[0]
            request_outcomes.append(
                (key, reply.found, engine.locator.get(key), reply.hops)
            )

        query_outcomes = []
        for event in unit.queries:
            kind = event[0]
            lo = event[1]
            hi = event[2] if kind == "range" else ""
            entry_label = event[-1]
            via = _entry_for(engine, entry_label)
            if via is None:
                query_outcomes.append((kind, lo, hi, (), 0))
                continue
            mark = len(engine.query_replies)
            if kind == "exact":
                # The engine's scan walk serves exact probes as the
                # degenerate range [key, key].
                engine.search_query("range", lo, lo, via=via)
            else:
                engine.search_query(kind, lo, hi, via=via)
            await transport.drain()
            replies = engine.query_replies[mark:]
            del engine.query_replies[mark:]
            if len(replies) != 1:
                raise ConformanceError(
                    f"unit {unit_index}: {len(replies)} replies for one query"
                )
            reply = replies[0]
            query_outcomes.append((kind, lo, hi, tuple(reply.keys), reply.hops))

        registered = tuple(
            sorted(
                label
                for label, host in engine.locator.items()
                if engine.peers[host].nodes[label].data
            )
        )
        report.outcomes.append(
            UnitOutcome(
                unit=unit_index,
                n_peers=len(live_ids()),
                n_nodes=len(engine.locator),
                keys=registered,
                requests=tuple(request_outcomes),
                joins=len(unit.joins),
                leaves=leaves,
                crashes=crashes,
                queries=tuple(query_outcomes),
            )
        )

    report.messages_sent = transport.messages_sent
    report.messages_delivered = transport.messages_delivered
    report.messages_dead_lettered = transport.messages_dead_lettered
    await transport.close()
    return report


async def replay_trace_multiprocess(
    trace: WorkloadTrace,
    *,
    processes: int = 2,
    n_bootstrap: Optional[int] = None,
    capacity: int = 10,
    chaos=None,
) -> ReplayReport:
    """Replay a recorded workload through a multi-process ring.

    ``chaos`` (a :mod:`repro.net.chaos` plan/spec) injects seeded faults
    into every worker transport during the replay — with an
    outcome-preserving plan (delay/reorder) the canonical stream must
    *still* equal the oracle's.

    The third leg of the differential: the same trace, the same driver
    RNG, the same drain-between-ops discipline as :func:`replay_trace`,
    but every operation goes through a
    :class:`~repro.net.procgroup.MultiProcessCluster` — engine groups in
    separate OS processes exchanging protocol messages over peer-to-peer
    sockets.  The canonical outcome stream must equal the sim and
    loopback replays; message totals are the summed per-group transport
    counters (higher than single-engine replays by exactly the locator
    replication traffic, so only the conservation invariant — not the
    totals — is comparable across topologies).
    """
    from .procgroup import MultiProcessCluster

    if n_bootstrap is None:
        n_bootstrap = int(trace.meta.get("n_bootstrap", 0))
    if n_bootstrap < 1:
        raise ConformanceError("n_bootstrap must be >= 1 (set trace.meta['n_bootstrap'])")

    cluster = MultiProcessCluster(processes=processes, chaos=chaos)
    await cluster.start()
    rng = random.Random(trace.seed ^ 0x5EED)
    report = ReplayReport()
    try:
        for _ in range(n_bootstrap):
            await cluster.join(_draw_peer_id(rng, cluster.members), capacity)

        for unit_index, unit in enumerate(trace.units):
            for cap in unit.joins:
                await cluster.join(_draw_peer_id(rng, cluster.members), cap)

            leaves = 0
            for index in unit.leaves:
                ids = cluster.live_ids()
                if len(ids) <= 1:
                    continue
                await cluster.leave(ids[index % len(ids)])
                leaves += 1

            crashes = 0
            for event in unit.faults:
                kind = event[0]
                if kind != "crash":
                    raise ConformanceError(
                        f"unit {unit_index}: fault kind {kind!r} is not replayable "
                        "at the message level (crash only)"
                    )
                ids = cluster.live_ids()
                if len(ids) <= 1:
                    continue
                await cluster.crash(ids[event[1] % len(ids)])
                crashes += 1

            for key in unit.registrations:
                await cluster.register(key)

            request_outcomes = []
            for key, entry_label in unit.requests:
                reply = await cluster.discover(key, via=entry_label)
                if reply is None:
                    request_outcomes.append((key, False, None, 0))
                else:
                    request_outcomes.append(
                        (key, reply["found"], reply["host"], reply["hops"])
                    )

            query_outcomes = []
            for event in unit.queries:
                kind = event[0]
                lo = event[1]
                hi = event[2] if kind == "range" else ""
                entry_label = event[-1]
                if kind == "exact":
                    # Same degenerate-range mapping as ``replay_trace``.
                    reply = await cluster.search("range", lo, lo, via=entry_label)
                else:
                    reply = await cluster.search(kind, lo, hi, via=entry_label)
                if reply is None:
                    query_outcomes.append((kind, lo, hi, (), 0))
                else:
                    query_outcomes.append(
                        (kind, lo, hi, tuple(reply["keys"]), reply["hops"])
                    )

            snap = await cluster.snapshot()
            registered = tuple(
                sorted(label for label, filled in snap["hosted"].items() if filled)
            )
            report.outcomes.append(
                UnitOutcome(
                    unit=unit_index,
                    n_peers=len(snap["live"]),
                    n_nodes=len(snap["hosted"]),
                    keys=registered,
                    requests=tuple(request_outcomes),
                    joins=len(unit.joins),
                    leaves=leaves,
                    crashes=crashes,
                    queries=tuple(query_outcomes),
                )
            )

        totals = await cluster.counters()
        report.messages_sent = sum(c["sent"] for c in totals)
        report.messages_delivered = sum(c["delivered"] for c in totals)
        report.messages_dead_lettered = sum(c["dead_lettered"] for c in totals)
    finally:
        await cluster.close()
    return report


def diff_streams(a: List[UnitOutcome], b: List[UnitOutcome]) -> List[str]:
    """Human-readable differences between two canonical streams (empty
    when conformant) — the assertion message of the harness."""
    problems = []
    if len(a) != len(b):
        problems.append(f"stream lengths differ: {len(a)} vs {len(b)}")
    for left, right in zip(a, b):
        if left == right:
            continue
        for fname in ("n_peers", "n_nodes", "keys", "joins", "leaves", "crashes"):
            lv, rv = getattr(left, fname), getattr(right, fname)
            if lv != rv:
                problems.append(f"unit {left.unit}: {fname} {lv!r} != {rv!r}")
        for k, (lr, rr) in enumerate(zip(left.requests, right.requests)):
            if lr != rr:
                problems.append(f"unit {left.unit} request {k}: {lr!r} != {rr!r}")
        if len(left.requests) != len(right.requests):
            problems.append(
                f"unit {left.unit}: request counts {len(left.requests)} "
                f"!= {len(right.requests)}"
            )
        for k, (lq, rq) in enumerate(zip(left.queries, right.queries)):
            if lq != rq:
                problems.append(f"unit {left.unit} query {k}: {lq!r} != {rq!r}")
        if len(left.queries) != len(right.queries):
            problems.append(
                f"unit {left.unit}: query counts {len(left.queries)} "
                f"!= {len(right.queries)}"
            )
    return problems
