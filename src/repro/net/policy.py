"""One retry/timeout/backoff policy for the whole runtime.

Before this module, the serving stack had three ad-hoc backoff policies:
the client's ``connect(..., retries=, backoff=)`` exponential doubling,
the peer-to-peer transport's ``dial_backoff`` dial loop, and the broker's
fixed ``retry_after`` backpressure hint.  Three implementations of the
same idea drift — and none of them had jitter, so synchronized clients
retried in lockstep (a retry storm: every waiter sleeps the identical
exponential delay and stampedes back at the same instant).

:class:`RetryPolicy` is the single shape.  It computes the classic
exponential schedule ``backoff * multiplier**(attempt-1)``, capped at
``max_backoff``, then subtracts **bounded deterministic jitter**: the
delay for attempt ``k`` is drawn uniformly from
``[(1 - jitter) * d, d]`` using an RNG seeded from ``(seed, k)`` — so
two processes with different seeds desynchronize, while a test re-running
the same policy sees the exact same delays.  Jitter only ever *shortens*
a delay, so every existing timeout bound stays valid.

Consumers: :class:`~repro.net.client.DLPTClient` (RPC retries),
:class:`~repro.net.p2p.PeerAsyncioTransport` (dial backoff) and
:class:`~repro.net.bootstrap.Broker` (the ``retry_after`` hint).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

#: Mixing constant for the per-attempt jitter RNG seed (a prime large
#: enough that (seed, draw) pairs never collide for realistic values).
_SEED_MIX = 1_000_003


def _unit_draw(seed: int, draw: int) -> float:
    """A deterministic uniform draw in ``[0, 1)`` keyed on (seed, draw).

    A fresh ``random.Random`` per draw keeps the schedule a pure function
    of its key — no hidden stream state, no ``PYTHONHASHSEED`` coupling.
    """
    return random.Random(seed * _SEED_MIX + draw).random()


@dataclass(frozen=True)
class RetryPolicy:
    """An exponential-backoff schedule with bounded deterministic jitter.

    ``retries``     — attempts beyond the first (0 disables retrying).
    ``backoff``     — the base delay before the first retry, seconds.
    ``multiplier``  — exponential growth factor per further attempt.
    ``max_backoff`` — cap on the un-jittered delay.
    ``jitter``      — fraction of the delay that may be subtracted:
                      the jittered delay lies in ``[(1-jitter)*d, d]``.
    ``seed``        — jitter RNG seed; same seed, same schedule.
    """

    retries: int = 0
    backoff: float = 0.05
    multiplier: float = 2.0
    max_backoff: float = 5.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff <= 0:
            raise ValueError("backoff must be > 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_backoff < self.backoff:
            raise ValueError("max_backoff must be >= backoff")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def base_delay(self, attempt: int) -> float:
        """The un-jittered delay before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(self.backoff * self.multiplier ** (attempt - 1), self.max_backoff)

    def delay(self, attempt: int, draw: int | None = None) -> float:
        """The jittered delay before retry ``attempt`` (1-based).

        ``draw`` picks the jitter sample independently of the attempt
        number (the broker uses its rejection counter, so concurrent
        rejected clients get *different* pauses off the same base).
        """
        base = self.base_delay(attempt)
        key = attempt if draw is None else draw
        return base * (1.0 - self.jitter * _unit_draw(self.seed, key))

    def delays(self) -> List[float]:
        """The full jittered schedule, one entry per configured retry."""
        return [self.delay(k) for k in range(1, self.retries + 1)]
