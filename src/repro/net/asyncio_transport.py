"""The asyncio transport: ``repro-wire/1`` frames over real sockets.

:class:`AsyncioTransport` implements the :class:`~repro.net.transport.Transport`
contract on an asyncio event loop.  One listener socket (a Unix-domain
socket by default, TCP with ``host=``) multiplexes *all* endpoints — each
frame names its destination endpoint, so a whole peer cluster shares one
address, broker-style.  Internals:

* ``send()`` is synchronous (protocol handlers call it mid-message): it
  counts the message and enqueues it on a single outbound queue; a writer
  task encodes frames and pushes them through the transport's own loopback
  connection to the listener.  The single queue + single connection gives
  global FIFO on the wire, strictly stronger than the per-(src, dst) FIFO
  the contract demands.
* The listener fans frames out to **per-endpoint inbox queues**, each
  drained by a consumer task that runs the endpoint's handler; endpoints
  therefore process their inboxes concurrently, so *cross*-endpoint
  interleavings are scheduler-defined — exactly the nondeterminism the
  conformance harness canonicalises away.
* External processes (e.g. :class:`~repro.net.client.DLPTClient`) connect
  to the same listener, introduce themselves with a hello frame, and get
  per-connection **reply routing**: frames addressed to an endpoint that
  lives on a remote connection are forwarded back over it.
* The clock is the loop's monotonic clock (seconds since ``start()``);
  timers are ``loop.call_later``.  There is deliberately no RNG: losses
  and delays are the operating system's, never sampled — see the contract
  note in :mod:`repro.net.transport`.
* ``await drain()`` polls the counter invariant ``sent == delivered +
  dropped + dead_lettered`` until quiescent (handler-issued sends count
  *before* the issuing delivery completes, so the invariant cannot hold
  transiently mid-cascade), then raises the first handler exception if
  any handler failed.

:class:`LoopbackAsyncioTransport` keeps the event loop, the counters and
the full wire-codec round-trip, but replaces the sockets with a single
in-process FIFO queue drained by one pump task — deterministic global
delivery order, byte-faithful frames, runnable in tier-1 CI.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
from typing import Any, Callable, Dict, Hashable, Optional

from ..sim.network import Envelope
from .transport import Handler, Transport, TransportError
from .wire import WIRE_SCHEMA, FrameReader, WireError, decode_frame, encode_frame

#: Socket read chunk size; frames reassemble across chunks via FrameReader.
_READ_CHUNK = 1 << 16

#: The reserved endpoint hello frames are addressed to.
CONTROL_ENDPOINT = "@transport"


class AsyncioTransport(Transport):
    """Length-prefixed JSON frames over TCP or Unix-domain sockets."""

    def __init__(
        self,
        *,
        path: Optional[str] = None,
        host: Optional[str] = None,
        port: int = 0,
        drain_timeout: float = 60.0,
    ) -> None:
        self._handlers: Dict[Hashable, Handler] = {}
        self._inboxes: Dict[Hashable, asyncio.Queue] = {}
        self._consumers: Dict[Hashable, asyncio.Task] = {}
        #: endpoint -> StreamWriter of the remote connection hosting it.
        self._routes: Dict[Hashable, asyncio.StreamWriter] = {}
        self._outbox: Optional[asyncio.Queue] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._t0 = 0.0
        self._server: Optional[asyncio.AbstractServer] = None
        self._client_writer: Optional[asyncio.StreamWriter] = None
        self._writer_task: Optional[asyncio.Task] = None
        self._tempdir: Optional[str] = None
        self._started = False
        self._use_tcp = host is not None
        self._host = host
        self._port = port
        self._path = path
        #: ``("unix", path)`` or ``("tcp", host, port)`` once started.
        self.address: Optional[tuple] = None
        self.drain_timeout = drain_timeout
        #: Handler/codec exceptions, surfaced by :meth:`drain`.
        self.errors: list[BaseException] = []
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_dead_lettered = 0

    # -- endpoints ---------------------------------------------------------

    def register(self, endpoint: Hashable, handler: Handler) -> None:
        self._handlers[endpoint] = handler

    def unregister(self, endpoint: Hashable) -> None:
        self._handlers.pop(endpoint, None)

    def is_registered(self, endpoint: Hashable) -> bool:
        return endpoint in self._handlers

    # -- delivery ----------------------------------------------------------

    def send(self, src: Hashable, dst: Hashable, payload: Any) -> None:
        if not self._started:
            raise TransportError("transport is not started")
        self.messages_sent += 1
        self._outbox.put_nowait((src, dst, payload))

    async def _write_outbox(self) -> None:
        while True:
            src, dst, payload = await self._outbox.get()
            try:
                frame = encode_frame(src, dst, payload)
            except WireError as exc:
                self.messages_dropped += 1
                self.errors.append(exc)
                continue
            self._client_writer.write(frame)
            await self._client_writer.drain()

    # -- listener side -----------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        frames = FrameReader()
        internal: Optional[bool] = None
        try:
            while True:
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    break
                for env in frames.feed(chunk):
                    if internal is None:
                        internal = self._handle_hello(env, writer)
                        continue
                    if not internal:
                        # Remote ingress: the frame enters this transport's
                        # accounting domain here, and its origin endpoint
                        # becomes routable back over this connection.
                        self.messages_sent += 1
                        self._routes[env.src] = writer
                    self._route(env)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except WireError as exc:
            self.errors.append(exc)
        finally:
            stale = [ep for ep, w in self._routes.items() if w is writer]
            for ep in stale:
                del self._routes[ep]
            writer.close()

    def _handle_hello(self, env: Envelope, writer: asyncio.StreamWriter) -> bool:
        """First frame of every connection: ``{"hello": ..., "internal":
        bool, "endpoint": optional}``.  Returns whether the connection is
        the transport's own loopback (whose frames are already counted)."""
        payload = env.payload
        if (
            env.dst != CONTROL_ENDPOINT
            or not isinstance(payload, dict)
            or payload.get("hello") != WIRE_SCHEMA
        ):
            raise WireError(f"connection did not open with a hello frame: {env!r}")
        endpoint = payload.get("endpoint")
        if endpoint is not None:
            self._routes[endpoint] = writer
        return bool(payload.get("internal"))

    def _route(self, env: Envelope) -> None:
        """Fan a decoded frame out: local inbox, remote route or dead."""
        if env.dst in self._handlers or env.dst in self._inboxes:
            self._ensure_consumer(env.dst).put_nowait(env)
        elif env.dst in self._routes:
            self._routes[env.dst].write(encode_frame(env.src, env.dst, env.payload))
            self.messages_delivered += 1
        else:
            self.messages_dead_lettered += 1

    def _ensure_consumer(self, endpoint: Hashable) -> asyncio.Queue:
        inbox = self._inboxes.get(endpoint)
        if inbox is None:
            inbox = asyncio.Queue()
            self._inboxes[endpoint] = inbox
            self._consumers[endpoint] = self._loop.create_task(
                self._consume(endpoint, inbox)
            )
        return inbox

    async def _consume(self, endpoint: Hashable, inbox: asyncio.Queue) -> None:
        while True:
            env = await inbox.get()
            self._deliver(env)

    def _deliver(self, env: Envelope) -> None:
        """Run the destination handler; registration is checked *here* (at
        delivery time, like the simulator's network) so an endpoint that
        unregistered with messages still inbound dead-letters them."""
        handler = self._handlers.get(env.dst)
        if handler is None:
            self.messages_dead_lettered += 1
            return
        try:
            handler(env)
        except Exception as exc:  # surfaced at drain(); keep consuming
            self.errors.append(exc)
        self.messages_delivered += 1

    # -- clock & timers ----------------------------------------------------

    def now(self) -> float:
        if self._loop is None:
            return 0.0
        return self._loop.time() - self._t0

    def call_later(self, delay: float, action: Callable[[], Any]):
        if self._loop is None:
            raise TransportError("transport is not started")
        return self._loop.call_later(delay, action)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        if self._started:
            return
        self._loop = asyncio.get_running_loop()
        self._t0 = self._loop.time()
        self._outbox = asyncio.Queue()
        if self._use_tcp:
            self._server = await asyncio.start_server(
                self._on_connection, self._host, self._port
            )
            sockname = self._server.sockets[0].getsockname()
            self.address = ("tcp", sockname[0], sockname[1])
            reader, writer = await asyncio.open_connection(sockname[0], sockname[1])
        else:
            if self._path is None:
                self._tempdir = tempfile.mkdtemp(prefix="repro-net-")
                self._path = os.path.join(self._tempdir, "dlpt.sock")
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=self._path
            )
            self.address = ("unix", self._path)
            reader, writer = await asyncio.open_unix_connection(self._path)
        self._client_writer = writer
        writer.write(
            encode_frame(
                CONTROL_ENDPOINT,
                CONTROL_ENDPOINT,
                {"hello": WIRE_SCHEMA, "internal": True},
            )
        )
        await writer.drain()
        self._writer_task = self._loop.create_task(self._write_outbox())
        self._started = True

    async def close(self) -> None:
        self._started = False
        tasks = [t for t in [self._writer_task, *self._consumers.values()] if t]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._writer_task = None
        self._consumers.clear()
        self._inboxes.clear()
        self._routes.clear()
        if self._client_writer is not None:
            self._client_writer.close()
            try:
                await self._client_writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._client_writer = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
            if not self._use_tcp and self._path is not None:
                # Unlink the socket file we bound — user-supplied paths
                # included — so a restart never hits its own stale socket.
                try:
                    os.unlink(self._path)
                except OSError:
                    pass
        if self._tempdir is not None:
            try:
                os.rmdir(self._tempdir)
            except OSError:
                pass
            self._tempdir = None

    # -- quiescence --------------------------------------------------------

    async def drain(self) -> None:
        deadline = self._loop.time() + self.drain_timeout
        spins = 0
        while self.in_flight > 0:
            if self._loop.time() > deadline:
                raise TransportError(
                    f"drain timed out after {self.drain_timeout}s with "
                    f"{self.in_flight} messages in flight"
                )
            spins += 1
            # Mostly bare yields (everything lives on this loop); back off
            # to a real sleep periodically so socket I/O is never starved.
            await asyncio.sleep(0 if spins % 64 else 0.001)
        if self.errors:
            errors, self.errors = self.errors, []
            raise TransportError(
                f"{len(errors)} handler/codec error(s) during drain"
            ) from errors[0]


class LoopbackAsyncioTransport(AsyncioTransport):
    """Deterministic in-process variant: no sockets, one global FIFO.

    Every message still round-trips the full ``repro-wire/1`` codec
    (``encode_frame`` → ``decode_frame``), so serialisation bugs surface
    in tier-1, but delivery is a single queue drained by one pump task —
    global FIFO order, reproducible run to run, which matches the
    simulator's zero-latency ``call_soon`` semantics exactly.
    """

    def __init__(self, *, drain_timeout: float = 60.0) -> None:
        super().__init__(drain_timeout=drain_timeout)
        self._queue: Optional[asyncio.Queue] = None
        self._pump_task: Optional[asyncio.Task] = None

    def send(self, src: Hashable, dst: Hashable, payload: Any) -> None:
        if not self._started:
            raise TransportError("transport is not started")
        self.messages_sent += 1
        try:
            frame = encode_frame(src, dst, payload)
        except WireError as exc:
            self.messages_dropped += 1
            self.errors.append(exc)
            return
        self._queue.put_nowait(decode_frame(frame))

    async def _pump(self) -> None:
        while True:
            env = await self._queue.get()
            self._deliver(env)

    async def start(self) -> None:
        if self._started:
            return
        self._loop = asyncio.get_running_loop()
        self._t0 = self._loop.time()
        self._queue = asyncio.Queue()
        self._pump_task = self._loop.create_task(self._pump())
        self.address = ("loopback",)
        self._started = True

    async def close(self) -> None:
        self._started = False
        if self._pump_task is not None:
            self._pump_task.cancel()
            await asyncio.gather(self._pump_task, return_exceptions=True)
            self._pump_task = None
