"""Multi-process engine groups: one DLPT ring spread over OS processes.

The scaling step beyond one process: the ring's peers are partitioned
into *engine groups*, each group a ``ProtocolEngine`` +
:class:`~repro.net.p2p.PeerAsyncioTransport` pair living in its own
worker process (``multiprocessing`` spawn).  Protocol messages between
peers of different groups cross real sockets; a parent-side
:class:`MultiProcessCluster` coordinates membership, placement and
global quiescence over a control plane that never perturbs the data
plane it measures.

Topology and addressing:

* **Placement** is static: peer ``p`` lives in group
  ``zlib.crc32(p) % n_groups`` (:func:`group_of`), so every group can
  resolve any peer id to the owning group's listener address without
  coordination.
* **Per-group endpoints** — group ``i`` registers its control RPC
  endpoint ``@ctl-i`` (control plane, uncounted), its locator-sync sink
  ``@sync-i`` (data plane, counted) and its engine's private client
  endpoint ``@client-gi`` so discovery/query replies route back to the
  issuing process.  The coordinator answers on ``@coord``.
* **Locator replication** — every node install fires the engine's
  ``on_node_installed`` hook, which broadcasts ``{label, host}`` to the
  other groups' ``@sync`` endpoints as ordinary *data* frames: global
  drain therefore covers locator propagation, and a group is never
  quiescent with a stale location table.

Global quiescence (the multi-process ``drain``): every group reports
``in_flight == 0`` **and** the cluster sums satisfy ``Σ frames_out ==
Σ frames_in`` (a frame sitting in a socket buffer has been counted
delivered by its sender but not yet ingressed), observed stable across
two consecutive polls.  Counter polls travel on the control plane, so
polling cannot keep the cluster awake.

Crashes are the coordinator's job (fail-stop has no goodbye protocol):
``crash_pop`` rips the victim's endpoint out of its group and returns
its ν, ``adopt`` installs those nodes on the successor, ``set_succ`` /
``set_pred`` splice the neighbours' ring pointers, and a ``locator_set``
broadcast repoints every group's location table — the exact decomposition
of :func:`repro.net.conformance.crash_peer_live` into control RPCs.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import zlib
from typing import Dict, List, Optional, Tuple

from ..sim.network import Envelope
from .p2p import PeerAsyncioTransport
from .transport import TransportError
from .wire import decode_node_payload, encode_node_payload

#: Endpoint naming scheme (group index ``i``).
COORD_ENDPOINT = "@coord"
CTL_PREFIX = "@ctl-"
SYNC_PREFIX = "@sync-"
CLIENT_PREFIX = "@client-g"


class ClusterError(RuntimeError):
    """A control RPC failed, or the cluster lost a worker."""


def group_of(peer_id: str, n_groups: int) -> int:
    """The owning group of ``peer_id``: stable, coordination-free."""
    return zlib.crc32(peer_id.encode("utf-8")) % n_groups


def _make_resolver(n_groups: int, groups: List[tuple], coord: Optional[tuple]):
    """endpoint -> listener address, per the naming scheme above."""

    def resolve(endpoint) -> Optional[tuple]:
        if not isinstance(endpoint, str):
            return None
        if endpoint == COORD_ENDPOINT:
            return coord
        for prefix in (CTL_PREFIX, SYNC_PREFIX, CLIENT_PREFIX):
            if endpoint.startswith(prefix):
                try:
                    return groups[int(endpoint[len(prefix):])]
                except (ValueError, IndexError):
                    return None
        return groups[group_of(endpoint, n_groups)]

    return resolve


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


class _Worker:
    """One engine group: the control RPC surface around a local engine."""

    def __init__(self, index: int, n_groups: int, transport, engine, stop) -> None:
        self.index = index
        self.n_groups = n_groups
        self.transport = transport
        self.engine = engine
        self.stop = stop

    # -- locator replication ------------------------------------------------

    def broadcast_install(self, label: str, host: str) -> None:
        """The engine's ``on_node_installed`` hook: tell the other groups
        (data frames, so global drain covers the propagation)."""
        src = f"{SYNC_PREFIX}{self.index}"
        for g in range(self.n_groups):
            if g != self.index:
                self.transport.send(src, f"{SYNC_PREFIX}{g}", {"label": label, "host": host})

    def on_sync(self, env: Envelope) -> None:
        body = env.payload
        self._set_location(str(body["label"]), str(body["host"]))

    def _set_location(self, label: str, host: str) -> None:
        self.engine.locator[label] = host
        # Flush messages parked for the label, exactly as a local install
        # would (a SearchingHost can race the Host hop across groups).
        parked = self.engine.pending_node_messages.pop(label, None)
        if parked:
            for src, msg in parked:
                self.transport.send(src, host, msg)

    # -- control RPCs -------------------------------------------------------

    def on_control(self, env: Envelope) -> None:
        request = env.payload
        if not isinstance(request, dict):
            return
        reply = {"id": request.get("id")}
        try:
            handler = self._OPS[request.get("op")]
            reply.update(ok=True, **handler(self, request))
        except Exception as exc:
            reply.update(ok=False, error=f"{type(exc).__name__}: {exc}")
        self.transport.send(
            f"{CTL_PREFIX}{self.index}",
            request.get("reply_to", COORD_ENDPOINT),
            reply,
        )

    def _entry_for(self, preferred: Optional[str]) -> Optional[str]:
        locator = self.engine.locator
        if preferred is not None and preferred in locator:
            return preferred
        return min(locator) if locator else None

    def _op_bootstrap(self, request: dict) -> dict:
        self.engine.bootstrap_peer(str(request["peer"]), int(request["capacity"]))
        return {}

    def _op_join(self, request: dict) -> dict:
        self.engine.join_peer(
            str(request["peer"]), int(request["capacity"]), seed=request["seed"]
        )
        return {}

    def _op_leave(self, request: dict) -> dict:
        self.engine.leave_peer(str(request["peer"]))
        return {}

    def _op_crash_pop(self, request: dict) -> dict:
        victim_id = str(request["peer"])
        self.transport.unregister(victim_id)
        victim = self.engine.peers.pop(victim_id)
        from ..dlpt import messages as m

        nodes = [
            encode_node_payload(
                m.NodePayload(
                    label=st.label,
                    father=st.father,
                    children=frozenset(st.children),
                    data=tuple(st.data),
                )
            )
            for st in victim.nodes.values()
        ]
        return {"pred": victim.pred, "succ": victim.succ, "nodes": nodes}

    def _op_adopt(self, request: dict) -> dict:
        from ..dlpt.protocol import NodeState

        peer = self.engine.peers[str(request["peer"])]
        for obj in request["nodes"]:
            payload = decode_node_payload(obj)
            peer.nodes[payload.label] = NodeState(
                label=payload.label,
                father=payload.father,
                children=set(payload.children),
                data=set(payload.data),
            )
            # Location broadcast is the coordinator's locator_set; no hook.
            self.engine.locator[payload.label] = peer.id
        return {}

    def _op_ring(self, request: dict) -> dict:
        peer = self.engine.peers[str(request["peer"])]
        return {"pred": peer.pred, "succ": peer.succ}

    def _op_locate(self, request: dict) -> dict:
        return {"host": self.engine.locator.get(str(request["label"]))}

    def _op_set_succ(self, request: dict) -> dict:
        self.engine.peers[str(request["peer"])].succ = str(request["succ"])
        return {}

    def _op_set_pred(self, request: dict) -> dict:
        self.engine.peers[str(request["peer"])].pred = str(request["pred"])
        return {}

    def _op_locator_set(self, request: dict) -> dict:
        for label, host in request["entries"].items():
            self._set_location(str(label), str(host))
        return {}

    def _op_locator_del(self, request: dict) -> dict:
        for label in request["labels"]:
            self.engine.locator.pop(str(label), None)
        return {}

    def _op_insert(self, request: dict) -> dict:
        via = self._entry_for(request.get("via"))
        self.engine.insert_data(str(request["key"]), request.get("datum"), via=via)
        return {}

    def _op_discover(self, request: dict) -> dict:
        via = self._entry_for(request.get("via"))
        if via is None:
            return {"issued": False}
        self.engine.discover(str(request["key"]), via=via)
        return {"issued": True}

    def _op_search(self, request: dict) -> dict:
        via = self._entry_for(request.get("via"))
        if via is None:
            return {"issued": False}
        self.engine.search_query(
            str(request["kind"]), str(request["lo"]), str(request.get("hi", "")), via=via
        )
        return {"issued": True}

    def _op_collect(self, request: dict) -> dict:
        engine = self.engine
        discovery = [
            {
                "key": r.key,
                "found": r.found,
                "data": sorted(r.data, key=repr),
                "hops": r.hops,
                "host": engine.locator.get(r.key),
            }
            for r in engine.discovery_replies
        ]
        engine.discovery_replies.clear()
        queries = [
            {
                "kind": r.kind,
                "lo": r.lo,
                "hi": r.hi,
                "keys": list(r.keys),
                "hops": r.hops,
            }
            for r in engine.query_replies
        ]
        engine.query_replies.clear()
        return {"discovery": discovery, "queries": queries}

    def _op_snapshot(self, request: dict) -> dict:
        engine = self.engine
        hosted = {}
        for peer in engine.peers.values():
            for label, st in peer.nodes.items():
                hosted[label] = bool(st.data)
        return {
            "live": sorted(p.id for p in engine.peers.values() if p.joined),
            "hosted": hosted,
            "locator_size": len(engine.locator),
        }

    def _op_counters(self, request: dict) -> dict:
        t = self.transport
        return {
            "in_flight": t.in_flight,
            "sent": t.messages_sent,
            "delivered": t.messages_delivered,
            "dropped": t.messages_dropped,
            "dead_lettered": t.messages_dead_lettered,
            "frames_out": t.frames_out,
            "frames_in": t.frames_in,
            "errors": len(t.errors),
            "error_texts": [repr(e) for e in t.errors[:4]],
        }

    def _op_shutdown(self, request: dict) -> dict:
        # Reply first; stop a beat later so the reply frame leaves the link.
        asyncio.get_running_loop().call_later(0.05, self.stop.set)
        return {}

    _OPS = {
        "bootstrap": _op_bootstrap,
        "join": _op_join,
        "leave": _op_leave,
        "crash_pop": _op_crash_pop,
        "adopt": _op_adopt,
        "ring": _op_ring,
        "locate": _op_locate,
        "set_succ": _op_set_succ,
        "set_pred": _op_set_pred,
        "locator_set": _op_locator_set,
        "locator_del": _op_locator_del,
        "insert": _op_insert,
        "discover": _op_discover,
        "search": _op_search,
        "collect": _op_collect,
        "snapshot": _op_snapshot,
        "counters": _op_counters,
        "shutdown": _op_shutdown,
    }


async def _worker_async(index: int, n_groups: int, conn) -> None:
    from ..dlpt.protocol import ProtocolEngine

    transport = PeerAsyncioTransport()
    await transport.start()
    stop = asyncio.Event()
    worker = _Worker(index, n_groups, transport, None, stop)
    engine = ProtocolEngine(
        transport=transport,
        client_endpoint=f"{CLIENT_PREFIX}{index}",
        on_node_installed=worker.broadcast_install,
    )
    worker.engine = engine
    # Register every endpoint BEFORE publishing the address: the first
    # control RPC may arrive the instant the coordinator learns it.
    transport.register(f"{CTL_PREFIX}{index}", worker.on_control)
    transport.register(f"{SYNC_PREFIX}{index}", worker.on_sync)
    conn.send(transport.address)
    while not conn.poll():
        await asyncio.sleep(0.005)
    handshake = conn.recv()
    transport.set_resolve(
        _make_resolver(n_groups, handshake["groups"], handshake["coord"])
    )
    try:
        await stop.wait()
    finally:
        await transport.close()
        conn.close()


def _worker_main(index: int, n_groups: int, conn) -> None:
    """Entry point of one engine-group process (spawn target)."""
    asyncio.run(_worker_async(index, n_groups, conn))


# ---------------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------------


class MultiProcessCluster:
    """Parent-side handle on a ring spread over worker processes.

    Exposes engine-shaped operations (``join`` / ``leave`` / ``crash`` /
    ``register`` / ``discover`` / ``search``) that each end at global
    quiescence, plus the raw :meth:`call` control RPC and the
    :meth:`drain` loop they are built from.  Membership is tracked here —
    the coordinator *is* the bootstrap registry of the multi-process
    runtime (``successor_of`` seeds every join with O(1) messages).
    """

    def __init__(
        self,
        processes: int = 2,
        *,
        drain_timeout: float = 60.0,
        rpc_timeout: float = 30.0,
    ) -> None:
        if processes < 1:
            raise ValueError("processes must be >= 1")
        self.n_groups = processes
        self.drain_timeout = drain_timeout
        self.rpc_timeout = rpc_timeout
        #: peer id -> capacity of every joined peer (insertion-ordered).
        self.members: Dict[str, int] = {}
        self.transport: Optional[PeerAsyncioTransport] = None
        self._procs: list = []
        self._conns: list = []
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._op_count = 0

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        ctx = multiprocessing.get_context("spawn")
        for index in range(self.n_groups):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(index, self.n_groups, child_conn),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        groups = []
        for index, conn in enumerate(self._conns):
            while not conn.poll():
                if not self._procs[index].is_alive():
                    raise ClusterError(f"worker {index} died during startup")
                await asyncio.sleep(0.005)
            groups.append(conn.recv())
        self.transport = PeerAsyncioTransport()
        await self.transport.start()
        self.transport.register(COORD_ENDPOINT, self._on_reply)
        self.transport.set_resolve(_make_resolver(self.n_groups, groups, None))
        for conn in self._conns:
            conn.send({"groups": groups, "coord": self.transport.address})
        # Readiness barrier: a worker can only answer once its resolver is
        # installed (the reply needs the coordinator's address), so one
        # successful ping per group proves the control plane is two-way.
        for group in range(self.n_groups):
            for attempt in range(40):
                try:
                    await self.call(group, "counters", timeout=0.5)
                    break
                except asyncio.TimeoutError:
                    if attempt == 39:
                        raise ClusterError(f"worker {group} never became ready")

    async def close(self) -> None:
        for g in range(self.n_groups):
            try:
                await self.call(g, "shutdown", timeout=5.0)
            except (ClusterError, asyncio.TimeoutError, TransportError):
                pass
        if self.transport is not None:
            await self.transport.close()
            self.transport = None
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        self._procs.clear()
        for conn in self._conns:
            conn.close()
        self._conns.clear()

    # -- control RPC --------------------------------------------------------

    def _on_reply(self, env: Envelope) -> None:
        payload = env.payload
        if not isinstance(payload, dict):
            return
        future = self._pending.pop(payload.get("id"), None)
        if future is None or future.done():
            return
        if payload.get("ok"):
            future.set_result(payload)
        else:
            future.set_exception(ClusterError(payload.get("error", "unknown error")))

    async def call(self, group: int, op: str, *, timeout: Optional[float] = None, **body) -> dict:
        """One control RPC to group ``group``; raises :class:`ClusterError`
        on an error reply, ``TimeoutError`` when the worker went silent."""
        rid = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        body.update(op=op, id=rid, reply_to=COORD_ENDPOINT)
        self.transport.send(COORD_ENDPOINT, f"{CTL_PREFIX}{group}", body)
        try:
            return await asyncio.wait_for(future, timeout or self.rpc_timeout)
        finally:
            self._pending.pop(rid, None)

    # -- quiescence ---------------------------------------------------------

    async def counters(self) -> List[dict]:
        return [await self.call(g, "counters") for g in range(self.n_groups)]

    async def drain(self) -> List[dict]:
        """Wait for *global* quiescence: every group idle, frame sums
        balanced, stable across two consecutive polls (module doc)."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout
        previous: Optional[Tuple] = None
        while True:
            snaps = await self.counters()
            errors = sum(s["errors"] for s in snaps)
            if errors:
                texts = [t for s in snaps for t in s.get("error_texts", ())]
                raise ClusterError(
                    f"{errors} worker transport error(s): {texts[:4]}"
                )
            quiet = all(s["in_flight"] == 0 for s in snaps) and sum(
                s["frames_out"] for s in snaps
            ) == sum(s["frames_in"] for s in snaps)
            signature = tuple(
                (s["sent"], s["delivered"], s["frames_out"], s["frames_in"])
                for s in snaps
            )
            if quiet and signature == previous:
                return snaps
            previous = signature if quiet else None
            if loop.time() > deadline:
                raise TransportError(
                    f"cluster drain timed out after {self.drain_timeout}s: {snaps}"
                )
            await asyncio.sleep(0.002)

    # -- membership ---------------------------------------------------------

    def live_ids(self) -> List[str]:
        return sorted(self.members)

    def successor_of(self, peer_id: str) -> Optional[str]:
        import bisect

        ids = self.live_ids()
        if not ids:
            return None
        return ids[bisect.bisect_left(ids, peer_id) % len(ids)]

    async def join(self, peer_id: str, capacity: int = 10) -> dict:
        """Admit ``peer_id`` (bootstrap when first), drain, and return its
        settled ring pointers ``{"pred": ..., "succ": ...}``."""
        group = group_of(peer_id, self.n_groups)
        if not self.members:
            await self.call(group, "bootstrap", peer=peer_id, capacity=capacity)
        else:
            await self.call(
                group,
                "join",
                peer=peer_id,
                capacity=capacity,
                seed=self.successor_of(peer_id),
            )
        await self.drain()
        self.members[peer_id] = capacity
        ring = await self.call(group, "ring", peer=peer_id)
        return {"pred": ring.get("pred"), "succ": ring.get("succ")}

    async def leave(self, peer_id: str) -> None:
        if peer_id not in self.members:
            raise ClusterError(f"peer {peer_id!r} not joined")
        await self.call(group_of(peer_id, self.n_groups), "leave", peer=peer_id)
        await self.drain()
        del self.members[peer_id]

    async def crash(self, victim_id: str) -> None:
        """Fail-stop crash + ``r=1`` recovery, decomposed into control
        RPCs (the multi-process :func:`~repro.net.conformance.crash_peer_live`)."""
        if victim_id not in self.members:
            raise ClusterError(f"peer {victim_id!r} not joined")
        popped = await self.call(
            group_of(victim_id, self.n_groups), "crash_pop", peer=victim_id
        )
        del self.members[victim_id]
        pred, succ, nodes = popped["pred"], popped["succ"], popped["nodes"]
        if succ == victim_id:
            # Last peer of the ring: everything it hosted dies with it.
            labels = [obj["label"] for obj in nodes]
            for g in range(self.n_groups):
                await self.call(g, "locator_del", labels=labels)
            return
        await self.call(group_of(succ, self.n_groups), "adopt", peer=succ, nodes=nodes)
        new_pred = pred if pred != victim_id else succ
        await self.call(group_of(succ, self.n_groups), "set_pred", peer=succ, pred=new_pred)
        await self.call(group_of(pred, self.n_groups), "set_succ", peer=pred, succ=succ)
        entries = {obj["label"]: succ for obj in nodes}
        if entries:
            for g in range(self.n_groups):
                await self.call(g, "locator_set", entries=entries)

    # -- data-plane operations ---------------------------------------------

    def _insert_group(self) -> int:
        """Inserts must start where a joined peer lives (the empty-tree
        Host walk needs a local starting peer): the min live id's group."""
        if not self.members:
            raise ClusterError("no peers joined")
        return group_of(min(self.members), self.n_groups)

    def _rotate_group(self) -> int:
        self._op_count += 1
        return self._op_count % self.n_groups

    async def register(self, key: str, datum: object = None, via: Optional[str] = None) -> dict:
        """Insert ``key`` at quiescence; returns ``{"key", "host"}`` (the
        hosting peer per the post-drain replicated locator)."""
        group = self._insert_group()
        await self.call(group, "insert", key=key, datum=datum, via=via)
        await self.drain()
        located = await self.call(group, "locate", label=key)
        return {"key": key, "host": located.get("host")}

    async def discover(self, key: str, via: Optional[str] = None) -> Optional[dict]:
        """One discovery at quiescence; ``None`` when the tree is empty
        (no entry node), else the broker-shaped reply record."""
        group = self._rotate_group()
        issued = await self.call(group, "discover", key=key, via=via)
        if not issued.get("issued"):
            return None
        await self.drain()
        got = await self.call(group, "collect")
        replies = got["discovery"]
        if len(replies) != 1:
            raise ClusterError(f"{len(replies)} replies for one discovery of {key!r}")
        return replies[0]

    async def search(
        self, kind: str, lo: str, hi: str = "", via: Optional[str] = None
    ) -> Optional[dict]:
        """One set query at quiescence; ``None`` when the tree is empty."""
        group = self._rotate_group()
        issued = await self.call(group, "search", kind=kind, lo=lo, hi=hi, via=via)
        if not issued.get("issued"):
            return None
        await self.drain()
        got = await self.call(group, "collect")
        replies = got["queries"]
        if len(replies) != 1:
            raise ClusterError(f"{len(replies)} replies for one {kind} query")
        return replies[0]

    async def snapshot(self) -> dict:
        """The union view over all groups: live peers, hosted labels (with
        a filled-data flag) and per-group locator sizes."""
        live: List[str] = []
        hosted: Dict[str, bool] = {}
        locator_sizes = []
        for g in range(self.n_groups):
            snap = await self.call(g, "snapshot")
            live.extend(snap["live"])
            hosted.update(snap["hosted"])
            locator_sizes.append(snap["locator_size"])
        return {
            "live": sorted(live),
            "hosted": hosted,
            "locator_sizes": locator_sizes,
        }
