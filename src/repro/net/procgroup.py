"""Multi-process engine groups: one DLPT ring spread over OS processes.

The scaling step beyond one process: the ring's peers are partitioned
into *engine groups*, each group a ``ProtocolEngine`` +
:class:`~repro.net.p2p.PeerAsyncioTransport` pair living in its own
worker process (``multiprocessing`` spawn).  Protocol messages between
peers of different groups cross real sockets; a parent-side
:class:`MultiProcessCluster` coordinates membership, placement and
global quiescence over a control plane that never perturbs the data
plane it measures.

Topology and addressing:

* **Placement** is static: peer ``p`` lives in group
  ``zlib.crc32(p) % n_groups`` (:func:`group_of`), so every group can
  resolve any peer id to the owning group's listener address without
  coordination.
* **Per-group endpoints** — group ``i`` registers its control RPC
  endpoint ``@ctl-i`` (control plane, uncounted), its locator-sync sink
  ``@sync-i`` (data plane, counted) and its engine's private client
  endpoint ``@client-gi`` so discovery/query replies route back to the
  issuing process.  The coordinator answers on ``@coord``.
* **Locator replication** — every node install fires the engine's
  ``on_node_installed`` hook, which broadcasts ``{label, host}`` to the
  other groups' ``@sync`` endpoints as ordinary *data* frames: global
  drain therefore covers locator propagation, and a group is never
  quiescent with a stale location table.

Global quiescence (the multi-process ``drain``): every group reports
``in_flight == 0`` **and** the cluster sums satisfy ``Σ frames_out ==
Σ frames_in`` (a frame sitting in a socket buffer has been counted
delivered by its sender but not yet ingressed), observed stable across
two consecutive polls.  Counter polls travel on the control plane, so
polling cannot keep the cluster awake.

Crashes are the coordinator's job (fail-stop has no goodbye protocol):
``crash_pop`` rips the victim's endpoint out of its group and returns
its ν, ``adopt`` installs those nodes on the successor, ``set_succ`` /
``set_pred`` splice the neighbours' ring pointers, and a ``locator_set``
broadcast repoints every group's location table — the exact decomposition
of :func:`repro.net.conformance.crash_peer_live` into control RPCs.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import zlib
from typing import Dict, List, Optional, Tuple

from ..sim.network import Envelope
from .p2p import PeerAsyncioTransport
from .transport import TransportError
from .wire import decode_node_payload, encode_node_payload

#: Endpoint naming scheme (group index ``i``).
COORD_ENDPOINT = "@coord"
CTL_PREFIX = "@ctl-"
SYNC_PREFIX = "@sync-"
CLIENT_PREFIX = "@client-g"


class ClusterError(RuntimeError):
    """A control RPC failed, or the cluster lost a worker."""


class ClusterRecovering(ClusterError):
    """The supervisor is mid-recovery; the operation is retryable once
    the cluster has healed (the serve layer maps this to a backpressure
    reply, so resilient clients ride through the outage)."""


def group_of(peer_id: str, n_groups: int) -> int:
    """The owning group of ``peer_id``: stable, coordination-free."""
    return zlib.crc32(peer_id.encode("utf-8")) % n_groups


def _make_resolver(n_groups: int, groups: List[tuple], coord: Optional[tuple]):
    """endpoint -> listener address, per the naming scheme above."""

    def resolve(endpoint) -> Optional[tuple]:
        if not isinstance(endpoint, str):
            return None
        if endpoint == COORD_ENDPOINT:
            return coord
        for prefix in (CTL_PREFIX, SYNC_PREFIX, CLIENT_PREFIX):
            if endpoint.startswith(prefix):
                try:
                    return groups[int(endpoint[len(prefix):])]
                except (ValueError, IndexError):
                    return None
        return groups[group_of(endpoint, n_groups)]

    return resolve


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


class _Worker:
    """One engine group: the control RPC surface around a local engine."""

    def __init__(self, index: int, n_groups: int, transport, engine, stop) -> None:
        self.index = index
        self.n_groups = n_groups
        self.transport = transport
        self.engine = engine
        self.stop = stop

    # -- locator replication ------------------------------------------------

    def broadcast_install(self, label: str, host: str) -> None:
        """The engine's ``on_node_installed`` hook: tell the other groups
        (data frames, so global drain covers the propagation)."""
        src = f"{SYNC_PREFIX}{self.index}"
        for g in range(self.n_groups):
            if g != self.index:
                self.transport.send(src, f"{SYNC_PREFIX}{g}", {"label": label, "host": host})

    def on_sync(self, env: Envelope) -> None:
        body = env.payload
        self._set_location(str(body["label"]), str(body["host"]))

    def _set_location(self, label: str, host: str) -> None:
        self.engine.locator[label] = host
        # Flush messages parked for the label, exactly as a local install
        # would (a SearchingHost can race the Host hop across groups).
        parked = self.engine.pending_node_messages.pop(label, None)
        if parked:
            for src, msg in parked:
                self.transport.send(src, host, msg)

    # -- control RPCs -------------------------------------------------------

    def on_control(self, env: Envelope) -> None:
        request = env.payload
        if not isinstance(request, dict):
            return
        reply = {"id": request.get("id")}
        try:
            handler = self._OPS[request.get("op")]
            reply.update(ok=True, **handler(self, request))
        except Exception as exc:
            reply.update(ok=False, error=f"{type(exc).__name__}: {exc}")
        self.transport.send(
            f"{CTL_PREFIX}{self.index}",
            request.get("reply_to", COORD_ENDPOINT),
            reply,
        )

    def _entry_for(self, preferred: Optional[str]) -> Optional[str]:
        locator = self.engine.locator
        if preferred is not None and preferred in locator:
            return preferred
        return min(locator) if locator else None

    def _op_bootstrap(self, request: dict) -> dict:
        self.engine.bootstrap_peer(str(request["peer"]), int(request["capacity"]))
        return {}

    def _op_join(self, request: dict) -> dict:
        self.engine.join_peer(
            str(request["peer"]), int(request["capacity"]), seed=request["seed"]
        )
        return {}

    def _op_leave(self, request: dict) -> dict:
        self.engine.leave_peer(str(request["peer"]))
        return {}

    def _op_crash_pop(self, request: dict) -> dict:
        victim_id = str(request["peer"])
        self.transport.unregister(victim_id)
        victim = self.engine.peers.pop(victim_id)
        from ..dlpt import messages as m

        nodes = [
            encode_node_payload(
                m.NodePayload(
                    label=st.label,
                    father=st.father,
                    children=frozenset(st.children),
                    data=tuple(st.data),
                )
            )
            for st in victim.nodes.values()
        ]
        return {"pred": victim.pred, "succ": victim.succ, "nodes": nodes}

    def _op_adopt(self, request: dict) -> dict:
        from ..dlpt.protocol import NodeState

        peer = self.engine.peers[str(request["peer"])]
        for obj in request["nodes"]:
            payload = decode_node_payload(obj)
            peer.nodes[payload.label] = NodeState(
                label=payload.label,
                father=payload.father,
                children=set(payload.children),
                data=set(payload.data),
            )
            # Location broadcast is the coordinator's locator_set; no hook.
            self.engine.locator[payload.label] = peer.id
        return {}

    def _op_ring(self, request: dict) -> dict:
        peer = self.engine.peers[str(request["peer"])]
        return {"pred": peer.pred, "succ": peer.succ}

    def _op_locate(self, request: dict) -> dict:
        return {"host": self.engine.locator.get(str(request["label"]))}

    def _op_set_succ(self, request: dict) -> dict:
        self.engine.peers[str(request["peer"])].succ = str(request["succ"])
        return {}

    def _op_set_pred(self, request: dict) -> dict:
        self.engine.peers[str(request["peer"])].pred = str(request["pred"])
        return {}

    def _op_locator_set(self, request: dict) -> dict:
        for label, host in request["entries"].items():
            self._set_location(str(label), str(host))
        return {}

    def _op_locator_del(self, request: dict) -> dict:
        for label in request["labels"]:
            self.engine.locator.pop(str(label), None)
        return {}

    def _op_insert(self, request: dict) -> dict:
        via = self._entry_for(request.get("via"))
        self.engine.insert_data(str(request["key"]), request.get("datum"), via=via)
        return {}

    def _op_discover(self, request: dict) -> dict:
        via = self._entry_for(request.get("via"))
        if via is None:
            return {"issued": False}
        self.engine.discover(str(request["key"]), via=via)
        return {"issued": True}

    def _op_search(self, request: dict) -> dict:
        via = self._entry_for(request.get("via"))
        if via is None:
            return {"issued": False}
        self.engine.search_query(
            str(request["kind"]), str(request["lo"]), str(request.get("hi", "")), via=via
        )
        return {"issued": True}

    def _op_collect(self, request: dict) -> dict:
        engine = self.engine
        discovery = [
            {
                "key": r.key,
                "found": r.found,
                "data": sorted(r.data, key=repr),
                "hops": r.hops,
                "host": engine.locator.get(r.key),
            }
            for r in engine.discovery_replies
        ]
        engine.discovery_replies.clear()
        queries = [
            {
                "kind": r.kind,
                "lo": r.lo,
                "hi": r.hi,
                "keys": list(r.keys),
                "hops": r.hops,
            }
            for r in engine.query_replies
        ]
        engine.query_replies.clear()
        return {"discovery": discovery, "queries": queries}

    def _op_snapshot(self, request: dict) -> dict:
        engine = self.engine
        hosted = {}
        for peer in engine.peers.values():
            for label, st in peer.nodes.items():
                hosted[label] = bool(st.data)
        return {
            "live": sorted(p.id for p in engine.peers.values() if p.joined),
            "hosted": hosted,
            "locator_size": len(engine.locator),
        }

    def _op_counters(self, request: dict) -> dict:
        t = self.transport
        return {
            "in_flight": t.in_flight,
            "sent": t.messages_sent,
            "delivered": t.messages_delivered,
            "dropped": t.messages_dropped,
            "dead_lettered": t.messages_dead_lettered,
            "frames_out": t.frames_out,
            "frames_in": t.frames_in,
            "errors": len(t.errors),
            "error_texts": [repr(e) for e in t.errors[:4]],
        }

    def _op_chaos(self, request: dict) -> dict:
        """Toggle fault injection (a no-op on a plain transport)."""
        t = self.transport
        if hasattr(t, "plan") and hasattr(t, "enabled"):
            t.enabled = bool(request["enabled"])
            return {"chaos": True, "enabled": t.enabled}
        return {"chaos": False}

    def _op_ping(self, request: dict) -> dict:
        """Heartbeat probe: proves the worker's event loop is servicing
        its control endpoint, not merely that the process exists."""
        return {"pong": True, "uptime": self.transport.now()}

    def _op_reset(self, request: dict) -> dict:
        """Supervisor recovery: wipe this group back to a blank engine.

        Addresses arrive as JSON lists over the control plane; they must
        be re-tupled or the resolver would hand the link cache unhashable
        keys (and ``address == self.address`` would never match)."""
        groups = [tuple(a) for a in request["groups"]]
        coord = tuple(request["coord"]) if request.get("coord") else None
        engine, t = self.engine, self.transport
        for peer_id in list(engine.peers):
            t.unregister(peer_id)
        engine.peers.clear()
        engine.locator.clear()
        engine.pending_node_messages.clear()
        engine.discovery_replies.clear()
        engine.query_replies.clear()
        t.set_resolve(_make_resolver(self.n_groups, groups, coord))
        t.reset_links()
        t.errors.clear()
        t.reset_accounting()
        return {}

    def _op_shutdown(self, request: dict) -> dict:
        # Reply first; stop a beat later so the reply frame leaves the link.
        asyncio.get_running_loop().call_later(0.05, self.stop.set)
        return {}

    _OPS = {
        "bootstrap": _op_bootstrap,
        "join": _op_join,
        "leave": _op_leave,
        "crash_pop": _op_crash_pop,
        "adopt": _op_adopt,
        "ring": _op_ring,
        "locate": _op_locate,
        "set_succ": _op_set_succ,
        "set_pred": _op_set_pred,
        "locator_set": _op_locator_set,
        "locator_del": _op_locator_del,
        "insert": _op_insert,
        "discover": _op_discover,
        "search": _op_search,
        "collect": _op_collect,
        "snapshot": _op_snapshot,
        "counters": _op_counters,
        "chaos": _op_chaos,
        "ping": _op_ping,
        "reset": _op_reset,
        "shutdown": _op_shutdown,
    }


async def _worker_async(index: int, n_groups: int, conn, chaos=None) -> None:
    from ..dlpt.protocol import ProtocolEngine

    transport = PeerAsyncioTransport()
    await transport.start()
    if chaos is not None:
        from .chaos import ChaosTransport

        # Per-group seed derivation: every group injects *different*
        # faults, but the whole cluster replays identically per run seed.
        transport = ChaosTransport(
            transport, chaos, seed=chaos.seed + index * 7919
        )
    stop = asyncio.Event()
    worker = _Worker(index, n_groups, transport, None, stop)
    engine = ProtocolEngine(
        transport=transport,
        client_endpoint=f"{CLIENT_PREFIX}{index}",
        on_node_installed=worker.broadcast_install,
    )
    worker.engine = engine
    # Register every endpoint BEFORE publishing the address: the first
    # control RPC may arrive the instant the coordinator learns it.
    transport.register(f"{CTL_PREFIX}{index}", worker.on_control)
    transport.register(f"{SYNC_PREFIX}{index}", worker.on_sync)
    conn.send(transport.address)
    while not conn.poll():
        await asyncio.sleep(0.005)
    handshake = conn.recv()
    transport.set_resolve(
        _make_resolver(n_groups, handshake["groups"], handshake["coord"])
    )
    try:
        await stop.wait()
    finally:
        await transport.close()
        conn.close()


def _worker_main(index: int, n_groups: int, conn, chaos=None) -> None:
    """Entry point of one engine-group process (spawn target)."""
    asyncio.run(_worker_async(index, n_groups, conn, chaos))


# ---------------------------------------------------------------------------
# coordinator side
# ---------------------------------------------------------------------------


class MultiProcessCluster:
    """Parent-side handle on a ring spread over worker processes.

    Exposes engine-shaped operations (``join`` / ``leave`` / ``crash`` /
    ``register`` / ``discover`` / ``search``) that each end at global
    quiescence, plus the raw :meth:`call` control RPC and the
    :meth:`drain` loop they are built from.  Membership is tracked here —
    the coordinator *is* the bootstrap registry of the multi-process
    runtime (``successor_of`` seeds every join with O(1) messages).
    """

    def __init__(
        self,
        processes: int = 2,
        *,
        drain_timeout: float = 60.0,
        rpc_timeout: float = 30.0,
        chaos=None,
        supervise: bool = False,
        heartbeat_interval: float = 0.25,
        heartbeat_timeout: float = 2.0,
        journal=None,
    ) -> None:
        if processes < 1:
            raise ValueError("processes must be >= 1")
        self.n_groups = processes
        self.drain_timeout = drain_timeout
        self.rpc_timeout = rpc_timeout
        if chaos is not None:
            from .chaos import parse_chaos

            chaos = parse_chaos(chaos)
        #: Fault plan injected into every worker's transport (or ``None``).
        self.chaos = chaos
        self.supervise = supervise
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        #: Membership journal (``repro-registry/1``); the supervisor
        #: records a ``crash`` per peer lost with a dead worker.
        self.journal = journal
        #: peer id -> capacity of every joined peer (insertion-ordered).
        self.members: Dict[str, int] = {}
        #: The acknowledged-registration ledger: every key whose register
        #: returned a host.  Recovery replays it through the rebuilt ring,
        #: which is what makes "no acked registration is ever lost" hold.
        self.registrations: Dict[str, object] = {}
        #: Supervision observability.
        self.recoveries = 0
        self.crashed_peers: List[str] = []
        self.supervisor_errors: List[BaseException] = []
        self._recovering = False
        self.transport: Optional[PeerAsyncioTransport] = None
        self._ctx = None
        self._procs: list = []
        self._conns: list = []
        self._groups: List[tuple] = []
        self._supervise_task: Optional[asyncio.Task] = None
        self._ids = itertools.count(1)
        self._pending: Dict[int, asyncio.Future] = {}
        self._op_count = 0

    # -- lifecycle ----------------------------------------------------------

    def _spawn(self, index: int) -> None:
        """(Re)spawn the worker process of group ``index``."""
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(index, self.n_groups, child_conn, self.chaos),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self._procs[index] = proc
        self._conns[index] = parent_conn

    async def _await_address(self, index: int) -> tuple:
        """Wait for group ``index`` to publish its listener address."""
        conn = self._conns[index]
        while not conn.poll():
            if not self._procs[index].is_alive():
                raise ClusterError(f"worker {index} died during startup")
            await asyncio.sleep(0.005)
        return conn.recv()

    async def _readiness_barrier(self, indices) -> None:
        # Readiness barrier: a worker can only answer once its resolver is
        # installed (the reply needs the coordinator's address), so one
        # successful ping per group proves the control plane is two-way.
        for group in indices:
            for attempt in range(40):
                try:
                    await self.call(group, "counters", timeout=0.5)
                    break
                except asyncio.TimeoutError:
                    if attempt == 39:
                        raise ClusterError(f"worker {group} never became ready")

    async def start(self) -> None:
        self._ctx = multiprocessing.get_context("spawn")
        self._procs = [None] * self.n_groups
        self._conns = [None] * self.n_groups
        for index in range(self.n_groups):
            self._spawn(index)
        self._groups = [
            await self._await_address(index) for index in range(self.n_groups)
        ]
        self.transport = PeerAsyncioTransport()
        await self.transport.start()
        self.transport.register(COORD_ENDPOINT, self._on_reply)
        self.transport.set_resolve(
            _make_resolver(self.n_groups, self._groups, None)
        )
        for conn in self._conns:
            conn.send({"groups": self._groups, "coord": self.transport.address})
        await self._readiness_barrier(range(self.n_groups))
        if self.supervise:
            self._supervise_task = asyncio.get_running_loop().create_task(
                self._supervise()
            )

    async def close(self) -> None:
        if self._supervise_task is not None:
            self._supervise_task.cancel()
            await asyncio.gather(self._supervise_task, return_exceptions=True)
            self._supervise_task = None
        for g in range(self.n_groups):
            try:
                await self.call(g, "shutdown", timeout=5.0)
            except (ClusterError, asyncio.TimeoutError, TransportError):
                pass
        if self.transport is not None:
            await self.transport.close()
            self.transport = None
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        self._procs.clear()
        for conn in self._conns:
            if conn is not None:
                conn.close()
        self._conns.clear()

    # -- control RPC --------------------------------------------------------

    def _on_reply(self, env: Envelope) -> None:
        payload = env.payload
        if not isinstance(payload, dict):
            return
        future = self._pending.pop(payload.get("id"), None)
        if future is None or future.done():
            return
        if payload.get("ok"):
            future.set_result(payload)
        else:
            future.set_exception(ClusterError(payload.get("error", "unknown error")))

    async def call(self, group: int, op: str, *, timeout: Optional[float] = None, **body) -> dict:
        """One control RPC to group ``group``; raises :class:`ClusterError`
        on an error reply, ``TimeoutError`` when the worker went silent."""
        rid = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        body.update(op=op, id=rid, reply_to=COORD_ENDPOINT)
        self.transport.send(COORD_ENDPOINT, f"{CTL_PREFIX}{group}", body)
        try:
            return await asyncio.wait_for(future, timeout or self.rpc_timeout)
        finally:
            self._pending.pop(rid, None)

    # -- quiescence ---------------------------------------------------------

    async def counters(self) -> List[dict]:
        return [await self.call(g, "counters") for g in range(self.n_groups)]

    async def set_chaos(self, enabled: bool) -> None:
        """Toggle fault injection on every worker (no-op without chaos)."""
        for g in range(self.n_groups):
            await self.call(g, "chaos", enabled=enabled)

    async def drain(self) -> List[dict]:
        """Wait for *global* quiescence: every group idle, frame sums
        balanced, stable across two consecutive polls (module doc)."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout
        previous: Optional[Tuple] = None
        while True:
            snaps = await self.counters()
            errors = sum(s["errors"] for s in snaps)
            if errors:
                texts = [t for s in snaps for t in s.get("error_texts", ())]
                raise ClusterError(
                    f"{errors} worker transport error(s): {texts[:4]}"
                )
            quiet = all(s["in_flight"] == 0 for s in snaps) and sum(
                s["frames_out"] for s in snaps
            ) == sum(s["frames_in"] for s in snaps)
            signature = tuple(
                (s["sent"], s["delivered"], s["frames_out"], s["frames_in"])
                for s in snaps
            )
            if quiet and signature == previous:
                return snaps
            previous = signature if quiet else None
            if loop.time() > deadline:
                raise TransportError(
                    f"cluster drain timed out after {self.drain_timeout}s: {snaps}"
                )
            await asyncio.sleep(0.002)

    # -- supervision ---------------------------------------------------------

    def _check_ready(self) -> None:
        if self._recovering:
            raise ClusterRecovering("cluster is recovering from a worker crash")

    async def _supervise(self) -> None:
        """The supervisor: every ``heartbeat_interval`` check worker
        liveness (``is_alive`` catches process death instantly; a
        round-robin ``ping`` control RPC catches a hung event loop) and
        run :meth:`_recover` over whatever died."""
        probe = 0
        while True:
            await asyncio.sleep(self.heartbeat_interval)
            if self._recovering:
                continue
            dead = [
                i for i, proc in enumerate(self._procs)
                if proc is not None and not proc.is_alive()
            ]
            if not dead and self.n_groups > 0:
                probe = (probe + 1) % self.n_groups
                try:
                    await self.call(probe, "ping", timeout=self.heartbeat_timeout)
                except asyncio.TimeoutError:
                    # No heartbeat within the timeout: the worker is dead
                    # or wedged — either way it must be replaced.
                    dead = [probe]
                except ClusterError:
                    continue  # a recovery raced us; re-probe next beat
            if not dead:
                continue
            try:
                await self._recover(dead)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                self.supervisor_errors.append(exc)

    async def _recover(self, dead: List[int]) -> None:
        """Replace dead workers and rebuild the ring (successor adoption).

        The rebuild is a *replay*, not a state transfer: re-admit every
        surviving member (the placement rule routes each key hosted by a
        lost peer to the lowest surviving id >= its label — exactly ring
        successor adoption) and re-insert every ledgered registration
        (idempotent: node data sets absorb duplicates).  The journal gets
        one ``crash`` per lost peer, so its replay equals the post-
        adoption membership, never the pre-crash ring.
        """
        self._recovering = True
        self.recoveries += 1
        try:
            # In-flight control RPCs may be waiting on a dead worker.
            for future in list(self._pending.values()):
                if not future.done():
                    future.set_exception(
                        ClusterRecovering("worker crashed; cluster recovering")
                    )
            self._pending.clear()
            lost_peers = [
                p for p in self.members if group_of(p, self.n_groups) in set(dead)
            ]
            survivors = [
                (p, c) for p, c in self.members.items() if p not in lost_peers
            ]
            for peer in lost_peers:
                if self.journal is not None:
                    self.journal.record("crash", peer)
                self.crashed_peers.append(peer)
                del self.members[peer]
            for index in dead:
                proc = self._procs[index]
                if proc.is_alive():  # hung, not dead: replace it anyway
                    proc.terminate()
                proc.join(timeout=5.0)
                try:
                    self._conns[index].close()
                except OSError:
                    pass
                self._spawn(index)
            for index in dead:
                self._groups[index] = await self._await_address(index)
            # Fresh coordinator epoch: stale links would dial the dead
            # processes, and frames already written to them can never be
            # matched by an ingress, so the old accounting is unbalanceable.
            self.transport.reset_links()
            self.transport.errors.clear()
            self.transport.reset_accounting()
            self.transport.set_resolve(
                _make_resolver(self.n_groups, self._groups, None)
            )
            for index in dead:
                self._conns[index].send(
                    {"groups": self._groups, "coord": self.transport.address}
                )
            await self._readiness_barrier(dead)
            for g in range(self.n_groups):
                await self.call(g, "reset", groups=self._groups, coord=self.transport.address)
            # The rebuild itself must not be perturbed: an injected drop
            # here could silently lose a ledgered registration.
            if self.chaos is not None:
                await self.set_chaos(False)
            self.members = {}
            for peer, capacity in survivors:
                await self._admit(peer, capacity)
            if self.members:
                for key, datum in list(self.registrations.items()):
                    await self._register_raw(key, datum)
            if self.chaos is not None:
                await self.set_chaos(True)
        finally:
            self._recovering = False

    # -- membership ---------------------------------------------------------

    def live_ids(self) -> List[str]:
        return sorted(self.members)

    def successor_of(self, peer_id: str) -> Optional[str]:
        import bisect

        ids = self.live_ids()
        if not ids:
            return None
        return ids[bisect.bisect_left(ids, peer_id) % len(ids)]

    async def _admit(self, peer_id: str, capacity: int) -> dict:
        """The raw admission (shared by :meth:`join` and recovery's
        membership replay — the replay must not re-journal joins)."""
        group = group_of(peer_id, self.n_groups)
        if not self.members:
            await self.call(group, "bootstrap", peer=peer_id, capacity=capacity)
        else:
            await self.call(
                group,
                "join",
                peer=peer_id,
                capacity=capacity,
                seed=self.successor_of(peer_id),
            )
        await self.drain()
        self.members[peer_id] = capacity
        ring = await self.call(group, "ring", peer=peer_id)
        return {"pred": ring.get("pred"), "succ": ring.get("succ")}

    async def join(self, peer_id: str, capacity: int = 10) -> dict:
        """Admit ``peer_id`` (bootstrap when first), drain, and return its
        settled ring pointers ``{"pred": ..., "succ": ...}``."""
        self._check_ready()
        return await self._admit(peer_id, capacity)

    async def leave(self, peer_id: str) -> None:
        self._check_ready()
        if peer_id not in self.members:
            raise ClusterError(f"peer {peer_id!r} not joined")
        await self.call(group_of(peer_id, self.n_groups), "leave", peer=peer_id)
        await self.drain()
        del self.members[peer_id]

    async def crash(self, victim_id: str) -> None:
        """Fail-stop crash + ``r=1`` recovery, decomposed into control
        RPCs (the multi-process :func:`~repro.net.conformance.crash_peer_live`)."""
        self._check_ready()
        if victim_id not in self.members:
            raise ClusterError(f"peer {victim_id!r} not joined")
        popped = await self.call(
            group_of(victim_id, self.n_groups), "crash_pop", peer=victim_id
        )
        del self.members[victim_id]
        pred, succ, nodes = popped["pred"], popped["succ"], popped["nodes"]
        if succ == victim_id:
            # Last peer of the ring: everything it hosted dies with it —
            # including its acknowledged registrations (there is no
            # surviving replica to recover them from at r=1).
            labels = [obj["label"] for obj in nodes]
            for label in labels:
                self.registrations.pop(label, None)
            for g in range(self.n_groups):
                await self.call(g, "locator_del", labels=labels)
            return
        await self.call(group_of(succ, self.n_groups), "adopt", peer=succ, nodes=nodes)
        new_pred = pred if pred != victim_id else succ
        await self.call(group_of(succ, self.n_groups), "set_pred", peer=succ, pred=new_pred)
        await self.call(group_of(pred, self.n_groups), "set_succ", peer=pred, succ=succ)
        entries = {obj["label"]: succ for obj in nodes}
        if entries:
            for g in range(self.n_groups):
                await self.call(g, "locator_set", entries=entries)

    # -- data-plane operations ---------------------------------------------

    def _insert_group(self) -> int:
        """Inserts must start where a joined peer lives (the empty-tree
        Host walk needs a local starting peer): the min live id's group."""
        if not self.members:
            raise ClusterError("no peers joined")
        return group_of(min(self.members), self.n_groups)

    def _rotate_group(self) -> int:
        self._op_count += 1
        return self._op_count % self.n_groups

    async def _register_raw(
        self, key: str, datum: object = None, via: Optional[str] = None
    ) -> dict:
        group = self._insert_group()
        await self.call(group, "insert", key=key, datum=datum, via=via)
        await self.drain()
        located = await self.call(group, "locate", label=key)
        return {"key": key, "host": located.get("host")}

    async def register(self, key: str, datum: object = None, via: Optional[str] = None) -> dict:
        """Insert ``key`` at quiescence; returns ``{"key", "host"}`` (the
        hosting peer per the post-drain replicated locator).  A located
        result enters the acknowledged-registration ledger, which recovery
        replays — acknowledging a registration *is* the promise it
        survives a worker crash."""
        self._check_ready()
        result = await self._register_raw(key, datum, via)
        if result.get("host") is not None:
            self.registrations[key] = datum
        return result

    async def discover(self, key: str, via: Optional[str] = None) -> Optional[dict]:
        """One discovery at quiescence; ``None`` when the tree is empty
        (no entry node), else the broker-shaped reply record."""
        self._check_ready()
        group = self._rotate_group()
        issued = await self.call(group, "discover", key=key, via=via)
        if not issued.get("issued"):
            return None
        await self.drain()
        got = await self.call(group, "collect")
        replies = got["discovery"]
        if len(replies) != 1:
            raise ClusterError(f"{len(replies)} replies for one discovery of {key!r}")
        return replies[0]

    async def search(
        self, kind: str, lo: str, hi: str = "", via: Optional[str] = None
    ) -> Optional[dict]:
        """One set query at quiescence; ``None`` when the tree is empty."""
        self._check_ready()
        group = self._rotate_group()
        issued = await self.call(group, "search", kind=kind, lo=lo, hi=hi, via=via)
        if not issued.get("issued"):
            return None
        await self.drain()
        got = await self.call(group, "collect")
        replies = got["queries"]
        if len(replies) != 1:
            raise ClusterError(f"{len(replies)} replies for one {kind} query")
        return replies[0]

    async def snapshot(self) -> dict:
        """The union view over all groups: live peers, hosted labels (with
        a filled-data flag) and per-group locator sizes."""
        self._check_ready()
        live: List[str] = []
        hosted: Dict[str, bool] = {}
        locator_sizes = []
        for g in range(self.n_groups):
            snap = await self.call(g, "snapshot")
            live.extend(snap["live"])
            hosted.update(snap["hosted"])
            locator_sizes.append(snap["locator_size"])
        return {
            "live": sorted(live),
            "hosted": hosted,
            "locator_sizes": locator_sizes,
        }
