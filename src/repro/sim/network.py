"""Message-passing network on top of the event engine.

Peers in the paper's system model are asynchronous processes that communicate
by messages ("Any peer P1 can communicate with another peer P2 provided P1
knows the ID of P2").  This module models that: named endpoints register a
handler, and :meth:`Network.send` delivers a message after a latency drawn
from a configurable model.  Message loss can be injected for fault tests.

Messages are plain dataclasses defined by the protocol layer; the network is
payload-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional

from .engine import Simulator


class LatencyModel:
    """Base latency model: constant zero (synchronous-ish delivery order is
    still FIFO per the engine's stable event ordering)."""

    def sample(self, src: Hashable, dst: Hashable) -> float:
        return 0.0


@dataclass
class ConstantLatency(LatencyModel):
    """Every message takes ``delay`` time units."""

    delay: float = 1.0

    def sample(self, src: Hashable, dst: Hashable) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from ``[lo, hi]`` using a dedicated RNG."""

    def __init__(self, rng, lo: float = 0.5, hi: float = 1.5) -> None:
        if lo < 0 or hi < lo:
            raise ValueError("require 0 <= lo <= hi")
        self._rng = rng
        self.lo = lo
        self.hi = hi

    def sample(self, src: Hashable, dst: Hashable) -> float:
        return self._rng.uniform(self.lo, self.hi)


@dataclass(frozen=True)
class Envelope:
    """A message in flight: source and destination endpoint ids + payload."""

    src: Hashable
    dst: Hashable
    payload: Any


class Network:
    """Registers endpoints and delivers envelopes through the simulator.

    ``loss_rate`` drops each message independently with the given probability
    (requires ``rng``); used by fault-injection tests to check that the
    protocols either tolerate or visibly fail under loss.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        rng=None,
    ) -> None:
        if loss_rate and rng is None:
            raise ValueError("loss injection requires an rng")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.latency = latency or LatencyModel()
        self.loss_rate = loss_rate
        self._rng = rng
        self._handlers: Dict[Hashable, Callable[[Envelope], None]] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_dead_lettered = 0

    # -- endpoints ---------------------------------------------------------

    def register(self, endpoint: Hashable, handler: Callable[[Envelope], None]) -> None:
        """Attach ``handler`` to ``endpoint``; replaces any previous handler
        (a peer that re-joins reuses its endpoint id)."""
        self._handlers[endpoint] = handler

    def unregister(self, endpoint: Hashable) -> None:
        """Detach ``endpoint``; in-flight messages to it are dead-lettered."""
        self._handlers.pop(endpoint, None)

    def is_registered(self, endpoint: Hashable) -> bool:
        return endpoint in self._handlers

    # -- delivery ------------------------------------------------------------

    def send(self, src: Hashable, dst: Hashable, payload: Any) -> None:
        """Queue ``payload`` for delivery from ``src`` to ``dst``."""
        self.messages_sent += 1
        if self.loss_rate and self._rng.random() < self.loss_rate:
            self.messages_dropped += 1
            return
        env = Envelope(src=src, dst=dst, payload=payload)
        delay = self.latency.sample(src, dst)
        self.sim.schedule(delay, lambda: self._deliver(env), label=f"msg:{src}->{dst}")

    def _deliver(self, env: Envelope) -> None:
        handler = self._handlers.get(env.dst)
        if handler is None:
            # Destination left the system while the message was in flight.
            self.messages_dead_lettered += 1
            return
        self.messages_delivered += 1
        handler(env)
