"""Discrete-event simulation substrate (engine, network, tracing)."""

from .engine import EventHandle, Simulator
from .network import ConstantLatency, Envelope, LatencyModel, Network, UniformLatency
from .trace import CounterSet, Trace, TraceEvent

__all__ = [
    "Simulator", "EventHandle",
    "Network", "Envelope", "LatencyModel", "ConstantLatency", "UniformLatency",
    "Trace", "TraceEvent", "CounterSet",
]
