"""Structured tracing and counters for simulations.

Experiments need per-time-unit counters (requests satisfied / dropped, hops,
LB migrations); protocol debugging needs an event trace.  Both are cheap,
optional, and off the hot path unless enabled.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One traced protocol event."""

    time: float
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)


class Trace:
    """An append-only event log with kind-based filtering.

    Disabled traces (``enabled=False``) make :meth:`record` a no-op so the
    experiment hot loop pays only an attribute check.
    """

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self._events: list[TraceEvent] = []

    def record(self, time: float, kind: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if self.capacity is not None and len(self._events) >= self.capacity:
            raise RuntimeError(f"trace capacity {self.capacity} exceeded")
        self._events.append(TraceEvent(time=time, kind=kind, detail=detail))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self._events if e.kind == kind]

    def kinds(self) -> Counter:
        return Counter(e.kind for e in self._events)

    def clear(self) -> None:
        self._events.clear()


class CounterSet:
    """Named integer counters with per-period snapshots.

    ``snapshot()`` closes the current period and returns its deltas; the
    experiment runner calls it once per time unit to build the series the
    paper plots.
    """

    def __init__(self) -> None:
        self._totals: defaultdict[str, int] = defaultdict(int)
        self._period: defaultdict[str, int] = defaultdict(int)

    def incr(self, name: str, amount: int = 1) -> None:
        self._totals[name] += amount
        self._period[name] += amount

    def total(self, name: str) -> int:
        return self._totals[name]

    def period_value(self, name: str) -> int:
        return self._period[name]

    def snapshot(self) -> dict[str, int]:
        """Return and reset the per-period deltas."""
        snap = dict(self._period)
        self._period.clear()
        return snap

    def totals(self) -> dict[str, int]:
        return dict(self._totals)
