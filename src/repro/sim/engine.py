"""Discrete-event simulation engine.

The paper evaluates DLPT with a custom discrete-time simulator.  ``simpy`` is
not available offline, so this module provides the minimal event-driven core
the protocol layer needs: a simulated clock, a priority event queue with
stable FIFO ordering among simultaneous events, and process handles.

Two execution styles sit on top of it:

* **message-level** — :mod:`repro.sim.network` delivers protocol messages
  between peers with configurable latency; used to validate Algorithms 1–3
  under asynchrony.
* **time-unit level** — :mod:`repro.experiments.runner` advances the clock in
  whole units and runs the paper's per-unit steps; used for the figures.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)  # executed or dequeued
    action: Callable[[], Any] = field(default=None, compare=False)
    label: str = field(default="", compare=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _ScheduledEvent, sim: "Simulator") -> None:
        self._event = event
        self._sim = sim

    def cancel(self) -> bool:
        """Cancel the event if it has not fired; return whether it was live
        (False when already cancelled *or* already executed)."""
        if self._event.cancelled or self._event.fired:
            return False
        self._event.cancelled = True
        self._sim._note_cancelled()
        return True

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class Simulator:
    """A deterministic discrete-event simulator.

    Events scheduled for the same timestamp fire in scheduling order (stable
    FIFO), which keeps runs reproducible bit-for-bit for a given seed.
    """

    #: Compaction threshold: never bother below this queue size.
    _COMPACT_MIN = 64

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: list[_ScheduledEvent] = []
        self._counter = itertools.count()
        self._events_executed = 0
        self._cancelled_pending = 0

    def _note_cancelled(self) -> None:
        """A queued event was cancelled; compact the heap once cancelled
        tombstones outnumber live events (keeps long timer-heavy runs from
        accumulating an O(cancelled) queue and paying log(dead) per pop)."""
        self._cancelled_pending += 1
        n = len(self._queue)
        if n >= self._COMPACT_MIN and self._cancelled_pending * 2 > n:
            for ev in self._queue:
                if ev.cancelled:
                    ev.fired = True
            self._queue = [ev for ev in self._queue if not ev.cancelled]
            heapq.heapify(self._queue)
            self._cancelled_pending = 0

    # -- clock -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_executed(self) -> int:
        return self._events_executed

    @property
    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) events still queued."""
        return len(self._queue)

    # -- scheduling --------------------------------------------------------

    def schedule(
        self,
        delay: float,
        action: Callable[[], Any],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        ev = _ScheduledEvent(
            time=self._now + delay,
            seq=next(self._counter),
            action=action,
            label=label,
        )
        heapq.heappush(self._queue, ev)
        return EventHandle(ev, self)

    def schedule_at(self, time: float, action: Callable[[], Any], label: str = "") -> EventHandle:
        """Schedule ``action`` at absolute simulated ``time`` (>= now)."""
        return self.schedule(time - self._now, action, label)

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event; return False when the queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            ev.fired = True
            if ev.cancelled:
                self._cancelled_pending -= 1
                continue
            self._now = ev.time
            self._events_executed += 1
            ev.action()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or ``max_events``
        have fired.  Returns the number of events executed by this call."""
        executed = 0
        while self._queue:
            ev = self._queue[0]
            if ev.cancelled:
                heapq.heappop(self._queue)
                ev.fired = True
                self._cancelled_pending -= 1
                continue
            if until is not None and ev.time > until:
                self._now = until
                break
            if max_events is not None and executed >= max_events:
                break
            heapq.heappop(self._queue)
            ev.fired = True
            self._now = ev.time
            self._events_executed += 1
            executed += 1
            ev.action()
        else:
            if until is not None and until > self._now:
                self._now = until
        return executed

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run until no events remain; guard against runaway protocols."""
        executed = self.run(max_events=max_events)
        if self._queue and executed >= max_events:
            raise RuntimeError(
                f"simulation did not quiesce within {max_events} events "
                f"(possible protocol livelock)"
            )
        return executed
