"""The no-load-balancing baseline ("No LB" in Figures 4–8).

Peers join at uniformly random identifiers and never rebalance; node
placement is governed purely by the Section 3 mapping rule.  This is the
denominator of Table 1's gain metric.
"""

from __future__ import annotations

from .base import LoadBalancer


class NoLB(LoadBalancer):
    """Alias of the base behaviour under its paper name."""

    name = "NoLB"
