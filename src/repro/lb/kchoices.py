"""KC — the paper's adaptation of the k-choices algorithm.

Paper, Section 4: "KC is run each time a peer joins the system.  Because some
regions of the ring are more densely populated than others, KC finds, among
k potential locations for the new peer, the one that leads to the best local
load balance" — an adaptation of Ledlie & Seltzer's *k-choices* DHT load
balancer (INFOCOM 2005), which assumes heterogeneous peers and items.  The
paper sets ``k = 4``.

Placement objective: joining at candidate identifier ``c`` splits the node
interval of ``T = successor(c)``; the newcomer takes the labels ``<= c``.
Using the last closed unit's per-node loads, we score each candidate by the
local throughput after the split — the same min(load, capacity) objective as
MLT, which is what makes the two heuristics comparable:

    score(c) = min(L_moved, C_new) + min(L_T − L_moved, C_T)
"""

from __future__ import annotations

from typing import Optional

from ..core.keyspace import in_interval_open_closed
from ..dlpt.system import DLPTSystem
from .base import LoadBalancer


class KChoices(LoadBalancer):
    """Join-time placement over ``k`` random candidate identifiers."""

    name = "KC"

    def __init__(self, k: int = 4) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def score_candidate(self, system: DLPTSystem, candidate: str, capacity: int) -> float:
        """Local pair throughput if the newcomer joined at ``candidate``."""
        ring = system.ring
        target = ring.successor_of_key(candidate)
        pred = ring.predecessor(target.id)
        moved_load = 0
        total_load = 0
        for label in target.nodes:
            l = system.node_last_load(label)
            total_load += l
            if in_interval_open_closed(label, pred.id, candidate):
                moved_load += l
        return min(moved_load, capacity) + min(total_load - moved_load, target.capacity)

    def choose_join_id(self, system: DLPTSystem, capacity: int, rng) -> str:
        if len(system.ring) == 0:
            return system.random_peer_id(rng)
        best_id: Optional[str] = None
        best_score = float("-inf")
        for _ in range(self.k):
            candidate = system.random_peer_id(rng)
            score = self.score_candidate(system, candidate, capacity)
            # Strict improvement keeps the first best among ties — with
            # candidates drawn in random order this is an unbiased tie-break.
            if score > best_score:
                best_id, best_score = candidate, score
        assert best_id is not None
        return best_id
