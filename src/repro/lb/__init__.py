"""Load balancing heuristics: No-LB baseline, MLT, and KC (k-choices).

:func:`balancer_from_spec` builds a heuristic from a compact spec string —
the ablation hook the CLI and bench harnesses use to sweep balancer
parameters (``"mlt:fraction=0.5"``, ``"kc:k=8"``) without constructing
objects in calling code.
"""

from __future__ import annotations

from ..util.specs import parse_options, split_spec
from .base import LoadBalancer
from .kchoices import KChoices
from .mlt import MLT, SplitDecision, best_split
from .nolb import NoLB

__all__ = [
    "LoadBalancer", "NoLB", "MLT", "KChoices", "best_split", "SplitDecision",
    "balancer_from_spec",
]


def balancer_from_spec(spec: str) -> LoadBalancer:
    """Build a balancer from ``name[:key=value...]``.

    Names (case-insensitive): ``nolb``, ``mlt``, ``kc`` (alias
    ``kchoices``).  Options map to the constructors: ``mlt:fraction=0.5``,
    ``mlt:allow_empty=1``, ``kc:k=8``.  Raises :class:`ValueError` naming
    the spec on any unknown name or option.
    """
    name, rest = split_spec(spec)
    options = parse_options(rest, spec, label="balancer spec")
    lowered = name.lower()
    try:
        if lowered == "nolb":
            return NoLB(**options)
        if lowered == "mlt":
            if "fraction" in options:
                options["fraction"] = float(options["fraction"])
            if "allow_empty" in options:
                options["allow_empty"] = options["allow_empty"].lower() in ("1", "true", "yes")
            return MLT(**options)
        if lowered in ("kc", "kchoices"):
            if "k" in options:
                options["k"] = int(options["k"])
            return KChoices(**options)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"balancer spec {spec!r}: {exc}") from exc
    raise ValueError(
        f"unknown balancer {name!r} in spec {spec!r} (known: nolb, mlt, kc)"
    )
