"""Load balancing heuristics: No-LB baseline, MLT, and KC (k-choices).

:func:`balancer_from_spec` builds a heuristic from a compact spec string —
the ablation hook the CLI and bench harnesses use to sweep balancer
parameters (``"mlt:fraction=0.5"``, ``"kc:k=8"``) without constructing
objects in calling code.  The parser registers as the ``"balancer"`` kind
of the unified spec registry (:mod:`repro.util.specs`), raising
:class:`BalancerSpecError`; :func:`balancer_signature` is the kind's
canonical hash structure.
"""

from __future__ import annotations

from ..util.specs import (
    SpecError,
    parse_options,
    register_spec_kind,
    split_spec,
)
from .base import LoadBalancer
from .kchoices import KChoices
from .mlt import MLT, SplitDecision, best_split
from .nolb import NoLB

__all__ = [
    "LoadBalancer", "NoLB", "MLT", "KChoices", "best_split", "SplitDecision",
    "balancer_from_spec", "balancer_signature", "BalancerSpecError",
]


class BalancerSpecError(SpecError):
    """A balancer spec that cannot be parsed or validated."""


def _parse_balancer(spec: object) -> LoadBalancer:
    if isinstance(spec, LoadBalancer):
        return spec
    if not isinstance(spec, str):
        raise BalancerSpecError(
            f"balancer spec must be a string or a LoadBalancer, "
            f"got {type(spec).__name__}"
        )
    name, rest = split_spec(spec)
    try:
        options = parse_options(rest, spec, label="balancer spec")
    except SpecError as exc:
        raise BalancerSpecError(str(exc)) from exc
    lowered = name.lower()
    try:
        if lowered == "nolb":
            return NoLB(**options)
        if lowered == "mlt":
            if "fraction" in options:
                options["fraction"] = float(options["fraction"])
            if "allow_empty" in options:
                options["allow_empty"] = options["allow_empty"].lower() in ("1", "true", "yes")
            return MLT(**options)
        if lowered in ("kc", "kchoices"):
            if "k" in options:
                options["k"] = int(options["k"])
            return KChoices(**options)
    except (TypeError, ValueError) as exc:
        raise BalancerSpecError(f"balancer spec {spec!r}: {exc}") from exc
    raise BalancerSpecError(
        f"unknown balancer {name!r} in spec {spec!r} (known: nolb, mlt, kc)"
    )


def balancer_from_spec(spec: str) -> LoadBalancer:
    """Build a balancer from ``name[:key=value...]``.

    Names (case-insensitive): ``nolb``, ``mlt``, ``kc`` (alias
    ``kchoices``).  Options map to the constructors: ``mlt:fraction=0.5``,
    ``mlt:allow_empty=1``, ``kc:k=8``.  Raises :class:`BalancerSpecError`
    (a :class:`ValueError`) naming the spec on any unknown name or option.

    .. deprecated::
        Thin shim over the unified registry; new code should call
        ``repro.util.specs.parse_spec("balancer", spec)``.
    """
    from ..util.specs import parse_spec

    return parse_spec("balancer", spec)


def balancer_signature(balancer: LoadBalancer) -> dict:
    """Canonical, JSON-serialisable identity of a balancer heuristic.

    Uniform with the other spec kinds' signatures: two balancers with the
    same decision behaviour hash equal, any parameter change hashes
    different; unknown heuristic classes degrade to their type name.
    """
    if isinstance(balancer, NoLB):
        return {"kind": "nolb"}
    if isinstance(balancer, MLT):
        return {
            "kind": "mlt",
            "fraction": balancer.fraction,
            "allow_empty": balancer.allow_empty,
        }
    if isinstance(balancer, KChoices):
        return {"kind": "kc", "k": balancer.k}
    return {"kind": "opaque", "type": type(balancer).__name__}


register_spec_kind("balancer", _parse_balancer, balancer_signature)
