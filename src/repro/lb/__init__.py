"""Load balancing heuristics: No-LB baseline, MLT, and KC (k-choices)."""

from .base import LoadBalancer
from .kchoices import KChoices
from .mlt import MLT, SplitDecision, best_split
from .nolb import NoLB

__all__ = ["LoadBalancer", "NoLB", "MLT", "KChoices", "best_split", "SplitDecision"]
