"""Load-balancer interface.

The paper's simulation (Section 4) gives heuristics two hooks:

* step (1) of every time unit — "a fixed fraction of the peers executes the
  MLT load balancing" — :meth:`LoadBalancer.run_balancing`;
* step (2) — "a fixed fraction of peers join the system (applying the KC
  algorithm if enabled)" — :meth:`LoadBalancer.choose_join_id`.

``NoLB`` implements both as no-ops / uniform-random, so the three curves of
Figures 4–8 differ *only* in which balancer the runner plugs in.
"""

from __future__ import annotations

from ..dlpt.system import DLPTSystem


class LoadBalancer:
    """Base balancer: protocol placement (random id), no periodic step."""

    #: Display name used in experiment legends / table headers.
    name = "NoLB"

    def choose_join_id(self, system: DLPTSystem, capacity: int, rng) -> str:
        """Identifier for a joining peer of the given capacity.

        The default draws a uniformly random identifier — the plain
        Section 3 protocol with no placement intelligence.
        """
        return system.random_peer_id(rng)

    def run_balancing(self, system: DLPTSystem, rng) -> int:
        """Periodic balancing step; returns the number of node migrations
        performed (0 for heuristics that only act at join time)."""
        return 0

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
