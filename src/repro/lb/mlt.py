"""MLT — Max Local Throughput (the paper's second contribution, Section 3.3).

At the end of each time unit a peer ``S`` and its predecessor ``P`` look at
the per-node request counts ``l_n`` of the closed unit over the nodes they
jointly host (``ν_S ∪ ν_P``) and pick the redistribution maximising their
aggregate throughput for the next unit:

    T = min(Σ_{n ∈ ν_P} l_n, C_P) + min(Σ_{n ∈ ν_S} l_n, C_S)

Because node identifiers cannot change (routing consistency), the only
degree of freedom is *where ``P`` sits on the ring* between its predecessor
and ``S``: the candidate positions are the ``|ν_S ∪ ν_P| − 1`` interior split
points of the jointly hosted, ring-ordered node sequence (each peer keeps at
least one node).  Finding the best split is a single prefix-sum sweep —
O(|ν_S ∪ ν_P|) time and space, matching the paper's complexity claim.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional

from ..dlpt.system import DLPTSystem
from ..peers.peer import Peer
from .base import LoadBalancer


@dataclass(frozen=True)
class SplitDecision:
    """Outcome of evaluating one (P, S) pair."""

    labels: list[str]  # ring-ordered nodes of ν_P ∪ ν_S
    best_index: int  # P takes labels[:best_index]
    current_index: int
    best_throughput: float
    current_throughput: float

    @property
    def is_move(self) -> bool:
        return self.best_index != self.current_index


def best_split(
    labels: list[str],
    loads: list[int],
    cap_p: int,
    cap_s: int,
    current_index: int,
    allow_empty: bool = False,
) -> SplitDecision:
    """Choose the split index maximising the pair throughput.

    ``labels``/``loads`` are the ring-ordered joint nodes and their last-unit
    request counts.  Candidate indices are ``1 .. m-1`` (paper) or ``0 .. m``
    when ``allow_empty`` (ablation allowing a peer to hold no node).  Ties
    prefer the split closest to ``current_index`` (fewest migrations), then
    the lower index, making the decision deterministic.
    """
    m = len(labels)
    if m != len(loads):
        raise ValueError("labels and loads must align")
    prefix = [0] * (m + 1)
    for i, l in enumerate(loads):
        prefix[i + 1] = prefix[i] + l
    total = prefix[m]

    lo, hi = (0, m) if allow_empty else (1, m - 1)
    best_i: Optional[int] = None
    best_key: Optional[tuple] = None
    for i in range(lo, hi + 1):
        lp, ls = prefix[i], total - prefix[i]
        t = min(lp, cap_p) + min(ls, cap_s)
        # Ranking: maximise throughput; among throughput-ties prefer the
        # lowest peak utilisation (headroom against the next unit's load
        # fluctuations — the paper leaves the tie unspecified), then the
        # fewest migrations.  All terms derive from the same prefix sums,
        # keeping the sweep O(m).
        peak_util = max(lp / cap_p, ls / cap_s)
        key = (-t, peak_util, abs(i - current_index))
        if best_key is None or key < best_key:
            best_i, best_key = i, key
    assert best_i is not None, "at least one candidate split must exist"
    best_t = -best_key[0]
    cur_t = min(prefix[current_index], cap_p) + min(total - prefix[current_index], cap_s)
    return SplitDecision(
        labels=labels,
        best_index=best_i,
        current_index=current_index,
        best_throughput=best_t,
        current_throughput=cur_t,
    )


class MLT(LoadBalancer):
    """Periodic pairwise throughput maximisation.

    Parameters
    ----------
    fraction:
        Fraction of peers executing the balancing step each unit ("a fixed
        fraction of the peers executes the MLT load balancing").  1.0 — a
        full sweep — is the default; the ablation bench varies it.
    allow_empty:
        Ablation switch: permit splits that leave one peer with no node
        (the paper's ``m − 1`` candidates keep >= 1 node on each side).
    """

    name = "MLT"

    def __init__(self, fraction: float = 1.0, allow_empty: bool = False) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.fraction = fraction
        self.allow_empty = allow_empty

    # -- one pair ---------------------------------------------------------

    def balance_pair(self, system: DLPTSystem, peer_s: Peer) -> int:
        """Run one MLT step on ``S`` = ``peer_s`` and its predecessor.

        Returns the number of nodes migrated (0 when the current split is
        already optimal or the pair is not balanceable).
        """
        ring = system.ring
        if len(ring) < 2:
            return 0
        if not getattr(system.mapping, "supports_reposition", True):
            # Hashed (random) mapping: a peer's place in hash space is fixed
            # by its identifier's hash, so MLT has no lever to pull.
            return 0
        peer_p = ring.predecessor(peer_s.id)
        if peer_p is peer_s:
            return 0
        pred_id = ring.predecessor(peer_p.id).id

        # Ring order along the arc (pred_P … S]: labels above pred_P first
        # (ascending), then the wrapped tail (ascending).  One C-speed
        # plain sort plus a rotation at pred_P — equivalent to (and much
        # cheaper than) sorting under a per-label wrap key.
        joint = sorted(peer_p.nodes | peer_s.nodes)
        cut = bisect.bisect_right(joint, pred_id)
        if cut:
            joint = joint[cut:] + joint[:cut]
        m = len(joint)
        min_m = 1 if self.allow_empty else 2
        if m < min_m:
            return 0
        last_load = system.last_unit_load.get
        loads = [last_load(lbl, 0) for lbl in joint]
        current_index = len(peer_p.nodes)
        decision = best_split(
            joint,
            loads,
            cap_p=peer_p.capacity,
            cap_s=peer_s.capacity,
            current_index=current_index,
            allow_empty=self.allow_empty,
        )
        if not decision.is_move:
            return 0
        if decision.best_index == 0:
            # P gives everything away: park it just above its predecessor —
            # not representable without changing other intervals; skip.
            return 0
        new_id = joint[decision.best_index - 1]
        if new_id == peer_p.id:
            return 0
        if new_id in ring:
            return 0  # extremely unlikely collision with another peer id
        return system.mapping.reposition(peer_p, new_id)

    # -- the periodic sweep ----------------------------------------------------

    def run_balancing(self, system: DLPTSystem, rng) -> int:
        """Step (1) of the time unit: each selected peer balances with its
        predecessor, in random order (peers act asynchronously)."""
        peers = system.ring.peers()
        if len(peers) < 2:
            return 0
        if self.fraction < 1.0:
            k = max(1, round(self.fraction * len(peers)))
            peers = rng.sample(peers, k)
        else:
            peers = list(peers)
            rng.shuffle(peers)
        migrated = 0
        for peer in peers:
            if peer.id in system.ring:  # may have been repositioned
                migrated += self.balance_pair(system, peer)
        return migrated
