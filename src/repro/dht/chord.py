"""A Chord ring (Stoica et al., SIGCOMM 2001) — reference [18] of the paper.

Two consumers:

* the **random-mapping baseline** of Figure 9 (the original DLPT [5] mapped
  tree nodes onto peers through a DHT, destroying tree locality) — it only
  needs consistent-hashing :meth:`ChordRing.successor_peer`;
* the **PHT baseline** of Table 2, which pays an O(log P) Chord lookup per
  trie step — it needs hop-counted greedy finger routing
  (:meth:`ChordRing.lookup`).

Finger tables are rebuilt eagerly after membership changes; the experiments
here use Chord on static or slowly changing populations, so simple eager
maintenance is the right trade-off (no stabilisation protocol needed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.keyspace import in_interval_open_closed, in_interval_open_open
from ..util.sortedlist import SortedList
from .hashing import DEFAULT_BITS, hash_to_int


@dataclass
class ChordNode:
    """One DHT participant: its ring position and finger table."""

    peer_id: str
    position: int
    fingers: list[int] = field(default_factory=list)  # positions, not peers

    def __hash__(self) -> int:
        return hash(self.position)


class ChordRing:
    """Consistent-hashing ring with greedy finger-table routing."""

    def __init__(self, bits: int = DEFAULT_BITS) -> None:
        self.bits = bits
        self.modulus = 1 << bits
        self._positions: SortedList[int] = SortedList()
        self._by_position: Dict[int, ChordNode] = {}
        self._fingers_fresh = False

    # -- membership --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._positions)

    def position_of(self, peer_id: str) -> int:
        return hash_to_int(peer_id, self.bits)

    def add_peer(self, peer_id: str) -> ChordNode:
        """Join ``peer_id`` at its hashed position.

        Position collisions (two ids hashing identically) are rejected; with
        32-bit positions and <= 10^4 peers they are effectively impossible,
        and rejecting keeps the ring a strict total order.
        """
        pos = self.position_of(peer_id)
        if pos in self._by_position:
            raise ValueError(f"position collision for peer {peer_id!r}")
        node = ChordNode(peer_id=peer_id, position=pos)
        self._positions.add(pos)
        self._by_position[pos] = node
        self._fingers_fresh = False
        return node

    def add_peers(self, peer_ids) -> list[ChordNode]:
        """Bulk join: one sorted merge for the whole batch (and a single
        deferred finger rebuild) instead of per-peer O(n) inserts — the
        PHT/Table-2 harnesses bootstrap rings of 10³–10⁴ peers this way.

        Atomic: every position is validated (against the ring and within
        the batch) before any state changes, so a collision leaves the
        ring untouched.
        """
        batch: list[tuple[int, str]] = []
        seen: set[int] = set()
        for peer_id in peer_ids:
            pos = self.position_of(peer_id)
            if pos in self._by_position or pos in seen:
                raise ValueError(f"position collision for peer {peer_id!r}")
            seen.add(pos)
            batch.append((pos, peer_id))
        self._positions.update(pos for pos, _ in batch)
        nodes = [ChordNode(peer_id=pid, position=pos) for pos, pid in batch]
        for node in nodes:
            self._by_position[node.position] = node
        self._fingers_fresh = False
        return nodes

    def remove_peer(self, peer_id: str) -> ChordNode:
        pos = self.position_of(peer_id)
        node = self._by_position.pop(pos, None)
        if node is None:
            raise KeyError(f"peer {peer_id!r} not in the ring")
        self._positions.remove(pos)
        self._fingers_fresh = False
        return node

    def nodes(self) -> list[ChordNode]:
        return [self._by_position[p] for p in self._positions]

    # -- consistent hashing ---------------------------------------------------

    def successor_position(self, key_position: int) -> int:
        """The ring position responsible for ``key_position`` (first node
        clockwise at or after it)."""
        if not self._positions:
            raise RuntimeError("empty Chord ring")
        return self._positions.successor(key_position % self.modulus)

    def successor_peer(self, key: str) -> str:
        """Peer id responsible for hashed ``key`` — the Chord mapping of
        Figure 2 ("mapping a key on the peer with the lowest identifier
        higher than the key", in hash space)."""
        pos = hash_to_int(key, self.bits)
        return self._by_position[self.successor_position(pos)].peer_id

    # -- finger routing ----------------------------------------------------------

    def rebuild_fingers(self) -> None:
        """Recompute every node's finger table: finger[i] = successor of
        ``position + 2^i`` (Chord's definition)."""
        for node in self._by_position.values():
            node.fingers = [
                self.successor_position((node.position + (1 << i)) % self.modulus)
                for i in range(self.bits)
            ]
        self._fingers_fresh = True

    def _ensure_fingers(self) -> None:
        if not self._fingers_fresh:
            self.rebuild_fingers()

    def lookup(self, key: str, start_peer: Optional[str] = None) -> tuple[str, int]:
        """Route to the peer responsible for ``key`` via greedy
        closest-preceding-finger hops; returns ``(peer_id, hop_count)``.

        Hop count is what Table 2's O(log P) term measures for PHT.
        """
        if not self._positions:
            raise RuntimeError("empty Chord ring")
        self._ensure_fingers()
        target = hash_to_int(key, self.bits)
        if start_peer is None:
            current = self._by_position[self._positions[0]]
        else:
            current = self._by_position[self.position_of(start_peer)]
        hops = 0
        # Guard: routing must terminate within |P| hops.
        for _ in range(len(self._positions) + 1):
            succ_pos = self._positions.strict_successor(current.position)
            if len(self._positions) == 1 or in_interval_open_closed(
                target, current.position, succ_pos
            ):
                owner = self._by_position[succ_pos if len(self._positions) > 1 else current.position]
                if len(self._positions) == 1:
                    return current.peer_id, hops
                return owner.peer_id, hops + 1
            nxt = self._closest_preceding(current, target)
            if nxt is current:
                # Fingers degenerate (tiny ring): step to the successor.
                nxt = self._by_position[succ_pos]
            current = nxt
            hops += 1
        raise RuntimeError("Chord routing failed to converge")

    def _closest_preceding(self, node: ChordNode, target: int) -> ChordNode:
        for pos in reversed(node.fingers):
            if in_interval_open_open(pos, node.position, target):
                return self._by_position[pos]
        return node

    # -- diagnostics ------------------------------------------------------------

    def check_invariants(self) -> None:
        positions = self._positions.as_list()
        assert positions == sorted(positions)
        assert len(positions) == len(self._by_position)
        for pos in positions:
            assert self._by_position[pos].position == pos
