"""DHT substrate for the baselines: hashing and a Chord ring."""

from .chord import ChordNode, ChordRing
from .hashing import DEFAULT_BITS, hash_to_int, to_binary_string

__all__ = ["ChordRing", "ChordNode", "hash_to_int", "to_binary_string", "DEFAULT_BITS"]
