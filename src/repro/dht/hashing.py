"""Deterministic hashing into an ``m``-bit circular keyspace.

The DHT baselines (Chord, PHT, the original DLPT-over-DHT mapping) place
peers and keys by hashing identifiers into ``[0, 2^m)``.  SHA-1 truncation
is the classic Chord construction; it is deterministic across processes,
which keeps experiments reproducible.
"""

from __future__ import annotations

import hashlib

#: Chord's classic identifier width.
DEFAULT_BITS = 32


def hash_to_int(identifier: str, bits: int = DEFAULT_BITS) -> int:
    """Map ``identifier`` uniformly into ``[0, 2^bits)`` via SHA-1."""
    if not 1 <= bits <= 160:
        raise ValueError("bits must be in [1, 160]")
    digest = hashlib.sha1(identifier.encode("utf-8")).digest()
    value = int.from_bytes(digest, "big")
    return value >> (160 - bits)


def to_binary_string(identifier: str, bits: int = DEFAULT_BITS) -> str:
    """Hash ``identifier`` and render it as a fixed-width bit string —
    the key form PHT indexes (a trie over hashed binary keys)."""
    return format(hash_to_int(identifier, bits), f"0{bits}b")
