"""``python -m repro`` — experiment regeneration CLI."""

import sys

from .experiments.cli import main

sys.exit(main())
