"""Experiment harnesses regenerating every figure and table of the paper."""

from .ascii_plot import ascii_plot
from .config import ExperimentConfig
from .figures import ALL_FIGURES, FigureResult, figure4, figure5, figure6, figure7, figure8, figure9
from .parallel import compare_balancers_parallel, run_many_parallel
from .metrics import ExperimentSeries, RunResult, UnitStats, gain_table_row
from .runner import compare_balancers, run_many, run_single
from .tables import Table1Result, Table2Result, table1, table2

__all__ = [
    "ExperimentConfig", "run_single", "run_many", "compare_balancers",
    "run_many_parallel", "compare_balancers_parallel",
    "RunResult", "UnitStats", "ExperimentSeries", "gain_table_row",
    "FigureResult", "figure4", "figure5", "figure6", "figure7", "figure8",
    "figure9", "ALL_FIGURES",
    "table1", "table2", "Table1Result", "Table2Result",
    "ascii_plot",
]
