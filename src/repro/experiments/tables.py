"""Table harnesses: Table 1 (gain summary) and Table 2 (trie-overlay
complexities, regenerated empirically).

Table 1 sweeps the load ratio over {5, 10, 16, 24, 40, 80}% for the stable
and dynamic networks and reports the *gain* of MLT and KC over no-LB on the
number of satisfied requests.

Table 2 compares P-Grid, PHT and DLPT.  The paper states the analytic
complexities (P-Grid: O(log |Π|) routing, O(log |Π|) state; PHT:
O(D log P) routing, |N|/|P|·|A| state; DLPT: O(D) routing, |N|/|P|·|A|
state).  We *measure* routing hops and per-peer state on live instances of
all three systems over a common binary-key workload, so the table's scaling
claims are checked rather than transcribed.
"""

from __future__ import annotations


import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..baselines.pgrid import PGrid
from ..baselines.pht import PrefixHashTree
from ..core.alphabet import BINARY
from ..dht.chord import ChordRing
from ..dlpt.system import DLPTSystem
from ..peers.capacity import FixedCapacity
from ..peers.churn import DYNAMIC, STABLE
from ..workloads.keys import random_binary_keys
from .config import ExperimentConfig
from .metrics import PhaseStats, gain_table_row
from .runner import SeriesRunner, compare_balancers

#: The paper's Table 1 load column.
TABLE1_LOADS = (0.05, 0.10, 0.16, 0.24, 0.40, 0.80)


# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


@dataclass
class Table1Result:
    """gains[network][load][heuristic] -> % gain over no-LB."""

    gains: Dict[str, Dict[float, Dict[str, float]]]
    n_runs: int
    loads: Sequence[float]

    def as_text(self) -> str:
        header = (
            f"{'Load':>6} | {'Stable MLT':>10} {'Stable KC':>10} | "
            f"{'Dynamic MLT':>11} {'Dynamic KC':>10}"
        )
        lines = [header, "-" * len(header)]
        for load in self.loads:
            s = self.gains["stable"][load]
            d = self.gains["dynamic"][load]
            lines.append(
                f"{load:>5.0%} | {s['MLT']:>9.2f}% {s['KC']:>9.2f}% | "
                f"{d['MLT']:>10.2f}% {d['KC']:>9.2f}%"
            )
        return "\n".join(lines)


#: Table 1's network axis: the paper's stable and dynamic regimes.
TABLE1_NETWORKS = (("stable", STABLE), ("dynamic", DYNAMIC))


def table1_config(churn, load: float, **overrides) -> ExperimentConfig:
    """One Table 1 sweep point: the default platform under ``churn`` at
    ``load`` — shared by :func:`table1` and the sweep planner so cached
    cells and live runs key identically."""
    return ExperimentConfig(churn=churn, load_fraction=load, **overrides)


def table1(
    n_runs: int = 30,
    loads: Sequence[float] = TABLE1_LOADS,
    run_series: SeriesRunner = None,
    **overrides,
) -> Table1Result:
    """Regenerate Table 1: gain of each heuristic vs no-LB per load level."""
    from .figures import three_curve_balancers

    balancers = three_curve_balancers()  # the sweep planner's exact panel
    gains: Dict[str, Dict[float, Dict[str, float]]] = {"stable": {}, "dynamic": {}}
    for net_name, churn in TABLE1_NETWORKS:
        for load in loads:
            config = table1_config(churn, load, **overrides)
            results = compare_balancers(config, balancers, n_runs, run_series)
            gains[net_name][load] = gain_table_row(
                results["MLT"], results["KC"], results["NoLB"]
            )
    return Table1Result(gains=gains, n_runs=n_runs, loads=list(loads))


# ---------------------------------------------------------------------------
# Table 2
# ---------------------------------------------------------------------------


@dataclass
class Table2Row:
    """Measured routing/state numbers for one (system, N, P, D) point."""

    system: str
    n_keys: int
    n_peers: int
    key_bits: int
    mean_routing_hops: float
    mean_local_state: float
    analytic_routing: str
    analytic_state: str


@dataclass
class Table2Result:
    rows: List[Table2Row] = field(default_factory=list)

    def as_text(self) -> str:
        header = (
            f"{'System':>7} {'N':>6} {'P':>5} {'D':>4} | "
            f"{'hops':>7} {'state':>8} | routing / state (paper)"
        )
        lines = [header, "-" * len(header)]
        for r in self.rows:
            lines.append(
                f"{r.system:>7} {r.n_keys:>6} {r.n_peers:>5} {r.key_bits:>4} | "
                f"{r.mean_routing_hops:>7.2f} {r.mean_local_state:>8.2f} | "
                f"{r.analytic_routing} / {r.analytic_state}"
            )
        return "\n".join(lines)

    def rows_for(self, system: str) -> List[Table2Row]:
        return [r for r in self.rows if r.system == system]


def _measure_dlpt(keys: List[str], n_peers: int, key_bits: int, rng) -> Table2Row:
    system = DLPTSystem(alphabet=BINARY, capacity_model=FixedCapacity(10**9))
    system.build(rng, n_peers)
    for k in keys:
        system.register(k)
    sample = rng.sample(keys, min(len(keys), 300))
    hops = []
    for key in sample:
        out = system.discover(key, rng=rng)
        assert out.satisfied
        hops.append(out.logical_hops)
    # Local state: a node's record holds |children| child links (bounded by
    # |A|) plus a father link; a peer's state is the sum over its nodes.
    states = [
        sum(len(system.tree.node(lbl).children) + 1 for lbl in peer.nodes)
        for peer in system.ring
    ]
    return Table2Row(
        system="DLPT",
        n_keys=len(keys),
        n_peers=n_peers,
        key_bits=key_bits,
        mean_routing_hops=sum(hops) / len(hops),
        mean_local_state=sum(states) / len(states),
        analytic_routing="O(D)",
        analytic_state="|A|·|N|/|P|",
    )


def _measure_pht(keys: List[str], n_peers: int, key_bits: int, rng) -> Table2Row:
    chord = ChordRing()
    chord.add_peers(f"peer-{i:05d}" for i in range(n_peers))
    pht = PrefixHashTree(chord, key_bits=key_bits, leaf_capacity=4)
    for k in keys:
        pht.insert(k)
    sample = rng.sample(keys, min(len(keys), 300))
    hops = [pht.lookup(k, mode="linear").dht_hops for k in sample]
    per_peer = pht.local_state()
    # Peers hosting no trie node hold zero PHT state.
    states = [per_peer.get(f"peer-{i:05d}", 0) * 2 for i in range(n_peers)]
    return Table2Row(
        system="PHT",
        n_keys=len(keys),
        n_peers=n_peers,
        key_bits=key_bits,
        mean_routing_hops=sum(hops) / len(hops),
        mean_local_state=sum(states) / len(states),
        analytic_routing="O(D·log P)",
        analytic_state="|A|·|N|/|P|",
    )


def _measure_pgrid(keys: List[str], n_peers: int, key_bits: int, rng) -> Table2Row:
    peer_ids = [f"peer-{i:05d}" for i in range(n_peers)]
    grid = PGrid(peer_ids, keys, key_bits=key_bits, rng=rng)
    sample = rng.sample(keys, min(len(keys), 300))
    hops = []
    for k in sample:
        start = peer_ids[rng.randrange(len(peer_ids))]
        found, h = grid.lookup(k, start_peer=start)
        hops.append(h)
    return Table2Row(
        system="P-Grid",
        n_keys=len(keys),
        n_peers=n_peers,
        key_bits=key_bits,
        mean_routing_hops=sum(hops) / len(hops),
        mean_local_state=grid.mean_state_size(),
        analytic_routing="O(log |Π|)",
        analytic_state="O(log |Π|)",
    )


def table2(
    scales: Sequence[tuple[int, int]] = ((250, 32), (500, 64), (1000, 128)),
    key_bits: int = 16,
    seed: int = 42,
) -> Table2Result:
    """Regenerate Table 2 empirically at several (N keys, P peers) scales.

    Expected shapes: DLPT hops track D and stay flat in P; PHT hops carry
    the extra log P factor; P-Grid hops and state grow with log |Π|.
    """
    result = Table2Result()
    for n_keys, n_peers in scales:
        rng = random.Random(seed)
        keys = random_binary_keys(rng, n_keys, length=key_bits)
        result.rows.append(_measure_pgrid(keys, n_peers, key_bits, random.Random(seed)))
        result.rows.append(_measure_pht(keys, n_peers, key_bits, random.Random(seed)))
        result.rows.append(_measure_dlpt(keys, n_peers, key_bits, random.Random(seed)))
    return result


# ---------------------------------------------------------------------------
# Per-phase workload breakdown (the `python -m repro run` report)
# ---------------------------------------------------------------------------


def phase_table(phases: Sequence[PhaseStats]) -> str:
    """Render a per-phase breakdown: satisfaction, tail hops, imbalance.

    One row per schedule phase window — the text twin of the workload
    subsystem's metrics (:func:`repro.experiments.metrics.phase_breakdown`).
    """
    name_w = max([len("phase")] + [len(p.name) for p in phases])
    header = (
        f"{'phase':>{name_w}} {'units':>9} {'issued':>8} {'sat%':>6} "
        f"{'hops':>6} {'p95':>5} {'p99':>5} {'imbal':>6} {'migr':>6}"
    )
    lines = [header, "-" * len(header)]
    for p in phases:
        lines.append(
            f"{p.name:>{name_w}} {f'{p.start}-{p.end}':>9} {p.issued:>8} "
            f"{p.satisfied_pct:>6.1f} {p.mean_hops:>6.2f} {p.p95_hops:>5.0f} "
            f"{p.p99_hops:>5.0f} {p.mean_imbalance:>6.2f} {p.migrations:>6}"
        )
    return "\n".join(lines)


def paper_table2_text() -> str:
    """The analytic Table 2 as printed in the paper, for side-by-side
    comparison in EXPERIMENTS.md."""
    return (
        "Functionality   P-Grid        PHT           DLPT\n"
        "Tree Routing    O(log |Pi|)   O(D log P)    O(D)\n"
        "Local State     O(log |Pi|)   |N|/|P|·|A|   |N|/|P|·|A|"
    )
