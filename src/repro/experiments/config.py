"""Experiment configuration (all Section 4 parameters in one place).

Paper defaults: ~100 peers, ~1000 tree nodes, capacity heterogeneity ratio 4,
KC with k = 4, 50 time units (Figures 4–7) of which the first 10 grow the
tree, 160 units for the hot-spot experiments (Figures 8–9), 30/50/100
repetitions.  The *load* of a run is the ratio between the number of
requests issued per unit and the aggregated capacity of all peers (Table 1's
left column).
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

from ..core.alphabet import PRINTABLE, Alphabet
from ..lb.base import LoadBalancer
from ..peers.capacity import UniformCapacity
from ..peers.churn import STABLE, ChurnModel
from ..util.specs import parse_spec, spec_signature
from ..workloads.keys import grid_service_corpus
from ..workloads.requests import PhasedSchedule, Phase, UniformRequests, generator_name


def default_schedule() -> PhasedSchedule:
    """Uniform requests for the whole run (Figures 4–7)."""
    return PhasedSchedule([Phase(0, 10_000, UniformRequests())])


@dataclass
class ExperimentConfig:
    """Everything one simulation run needs.

    ``load_fraction`` is Table 1's load: requests issued per unit divided by
    the platform's aggregate capacity at that unit.
    """

    # platform
    n_peers: int = 100
    capacity_model: UniformCapacity = field(default_factory=UniformCapacity)
    alphabet: Alphabet = PRINTABLE
    mapping_factory: Optional[Callable] = None  # None -> lexicographic

    # workload
    corpus: Sequence[str] = field(default_factory=grid_service_corpus)
    growth_units: int = 10
    total_units: int = 50
    load_fraction: float = 0.10
    #: A workload spec (string, dict, generator, or schedule — see
    #: :mod:`repro.workloads.spec`).  When given it *builds* ``schedule``;
    #: construct ``schedule`` directly only for pre-built objects.
    workload: Optional[object] = None
    schedule: PhasedSchedule = field(default_factory=default_schedule)
    #: A set-query spec (string, dict, or :class:`QueryWorkload` — see
    #: :mod:`repro.workloads.queries`), or ``None`` for no query axis.
    #: Parsed at config time into ``query_plan``; the runner issues the
    #: per-unit prefix/range/exact stream from it.
    queries: Optional[object] = None
    #: Capacity accounting: "destination" charges the destination peer only
    #: (the model consistent with the paper's min(L,C)+min(L,C) objective);
    #: "transit" charges every peer along the route (ablation).
    accounting: str = "destination"
    #: Peer identifiers: "corpus" draws them from the service-key namespace
    #: (peers and nodes share the id space; ring density follows key
    #: density), "uniform" draws uniform random digit strings (ablation —
    #: leaves service-name clusters on very few peers).
    peer_ids: str = "corpus"
    #: Request-resolution implementation: "indexed" (the live
    #: :class:`repro.dlpt.routing.DiscoveryRouter` fast path, default) or
    #: "seed" (the frozen per-request walk in
    #: :mod:`repro.perf.reference_routing`).  The two produce identical
    #: results (property-tested); "seed" exists so the ``replay`` benchmark
    #: can time the before/after honestly and is never what an experiment
    #: should select.
    discovery: str = "indexed"
    #: Tree-construction implementation: "bulk" (the batched
    #: :meth:`repro.dlpt.system.DLPTSystem.register_batch` fast path —
    #: sorted-cursor inserts plus one deferred mapping placement pass per
    #: batch, default) or "seed" (the frozen per-key loops of
    #: :mod:`repro.perf.reference_construction`).  The two build identical
    #: systems (property-tested); "seed" exists so the construction
    #: benchmarks can time the before/after honestly.
    construction: str = "bulk"

    # dynamics
    churn: ChurnModel = STABLE
    #: A fault spec (string, dict, schedule, or :class:`FaultPlan` — see
    #: :mod:`repro.faults.spec`), or ``None`` for a fault-free run.  Parsed
    #: at config time into ``fault_plan``; the runner injects crashes,
    #: partitions, replication and repair from it.
    faults: Optional[object] = None

    # load balancing
    lb: LoadBalancer = field(default_factory=LoadBalancer)

    # reproducibility
    seed: int = 20080617  # the report's HAL submission date

    def __post_init__(self) -> None:
        if self.n_peers < 2:
            raise ValueError("need at least 2 peers")
        if not self.corpus:
            raise ValueError("corpus must not be empty")
        if self.growth_units < 1 or self.growth_units > self.total_units:
            raise ValueError("growth_units must be within the run length")
        if self.load_fraction <= 0:
            raise ValueError("load_fraction must be positive")
        # Workload validation happens here, at config-parse time: specs are
        # built (raising WorkloadSpecError on bad input) and pre-built
        # objects are checked against the runtime protocols; a bare
        # RequestGenerator passed as `schedule` is wrapped into a steady
        # schedule.  The runner never sees an invalid workload.
        if self.workload is not None:
            self.schedule = parse_spec("workload", self.workload)
        else:
            self.schedule = parse_spec("workload", self.schedule)
        # Fault specs are validated here too (FaultSpecError on bad input);
        # the runner consumes the parsed plan, never the raw spec.
        self.fault_plan = parse_spec("faults", self.faults)
        # Query specs likewise (QuerySpecError on bad input).
        self.query_plan = parse_spec("queries", self.queries)
        if self.discovery not in ("indexed", "seed"):
            raise ValueError(
                f"unknown discovery implementation {self.discovery!r} "
                "(expected 'indexed' or 'seed')"
            )
        if self.construction not in ("bulk", "seed"):
            raise ValueError(
                f"unknown construction implementation {self.construction!r} "
                "(expected 'bulk' or 'seed')"
            )

    def with_lb(self, lb: LoadBalancer) -> "ExperimentConfig":
        """The same experiment under a different balancer — the controlled
        comparison every figure makes (common seed, common workload)."""
        return replace(self, lb=lb)

    def signature(self) -> dict:
        """Canonical, JSON-serialisable description of every semantic field.

        Two configs that would simulate identically produce equal
        signatures; changing any parameter that affects the simulation —
        platform size, workload, balancer options, seed — changes it.  The
        corpus is content-hashed (it can run to thousands of keys) and the
        balancer/capacity models contribute their public constructor state,
        so presentation details (labels, reprs) never enter.  This is the
        identity the sweep result store (:mod:`repro.sweeps`) keys cells on.

        Caveat: ``mapping_factory`` is identified by its qualified name —
        distinct *named* factories (classes, functions) are distinguished,
        but two anonymous callables defined at the same spot (lambdas,
        ``functools.partial`` over different arguments) are not; give custom
        factories distinct names before caching sweeps over them.
        """
        model = self.capacity_model
        if dataclasses.is_dataclass(model):
            capacity: dict = dataclasses.asdict(model)
        else:  # duck-typed models: public attributes only
            capacity = {k: v for k, v in vars(model).items() if not k.startswith("_")}
        capacity["kind"] = type(model).__name__
        corpus_blob = "\n".join(self.corpus).encode()
        signature: dict = {
            "n_peers": self.n_peers,
            "growth_units": self.growth_units,
            "total_units": self.total_units,
            "load_fraction": self.load_fraction,
            "accounting": self.accounting,
            "peer_ids": self.peer_ids,
            "seed": self.seed,
            "alphabet": {
                "name": self.alphabet.name,
                "digits": "".join(self.alphabet.digits),
            },
            "mapping": (
                "lexicographic"
                if self.mapping_factory is None
                else "{}.{}".format(
                    getattr(self.mapping_factory, "__module__", "?"),
                    getattr(
                        self.mapping_factory,
                        "__qualname__",
                        type(self.mapping_factory).__name__,
                    ),
                )
            ),
            "capacity_model": capacity,
            "churn": {
                "join_fraction": self.churn.join_fraction,
                "leave_fraction": self.churn.leave_fraction,
            },
            "lb": {
                "kind": type(self.lb).__name__,
                "params": {
                    k: v for k, v in vars(self.lb).items() if not k.startswith("_")
                },
            },
            "corpus": {
                "n_keys": len(self.corpus),
                "sha256": hashlib.sha256(corpus_blob).hexdigest(),
            },
            "workload": spec_signature("workload", self.schedule),
        }
        if self.fault_plan is not None:
            # Added only when a fault axis exists: fault-free configs keep
            # the pre-fault signature bytes, so sweep-store cells computed
            # before this axis existed stay addressable.
            signature["faults"] = spec_signature("faults", self.fault_plan)
        if self.query_plan is not None:
            # Added only when a query axis exists: query-free configs keep
            # the pre-query signature bytes (same rule as ``faults``).
            signature["queries"] = spec_signature("queries", self.query_plan)
        if self.discovery != "indexed":
            # Same back-compat rule: the default implementation keeps the
            # pre-existing signature bytes.  "seed" runs are distinguished
            # anyway — the implementations are result-equivalent, but a
            # cache must never silently alias a benchmark's reference runs.
            signature["discovery"] = self.discovery
        if self.construction != "bulk":
            # Same back-compat rule as ``discovery``: the default (bulk)
            # keeps the pre-existing signature bytes.
            signature["construction"] = self.construction
        return signature

    def describe(self) -> str:
        # The paper's "stable network" still trickles 2% churn per unit;
        # "dynamic" is the 10% regime — split the label halfway between.
        net = "stable" if self.churn.join_fraction <= 0.05 else "dynamic"
        text = (
            f"{self.lb.name} | {net} network | load={self.load_fraction:.0%} | "
            f"{self.n_peers} peers | {len(self.corpus)} keys | "
            f"{self.total_units} units | workload={generator_name(self.schedule)}"
        )
        if self.fault_plan is not None:
            schedule = self.fault_plan.schedule
            name = getattr(schedule, "name", type(schedule).__name__)
            text += (
                f" | faults={name} (r={self.fault_plan.replication}, "
                f"repair_every={self.fault_plan.repair_every})"
            )
        return text
