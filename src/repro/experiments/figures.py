"""Figure harnesses — one function per figure of the paper's Section 4.

Each harness builds the three-balancer comparison (MLT / KC / No LB) on a
common-random-numbers configuration and returns a :class:`FigureResult`
whose series are the per-unit mean curves the paper plots.

``n_runs`` defaults follow the paper (30 for Figures 4–7, 50 for Figure 8,
100 for Figure 9); the benchmarks pass smaller values to stay laptop-quick
and EXPERIMENTS.md records both settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..baselines.dlpt_dht import HashedMapping
from ..lb.kchoices import KChoices
from ..lb.mlt import MLT
from ..lb.nolb import NoLB
from ..peers.churn import DYNAMIC, STABLE
from ..workloads.requests import figure8_schedule
from .config import ExperimentConfig
from .metrics import series_table
from .runner import SeriesRunner, compare_balancers, run_labeled_series

#: Load fractions used for the figures.  "No overload" (10% of aggregate
#: capacity) leaves the platform under-subscribed, so drops come only from
#: placement imbalance; "overload" (50%) is the paper's stress regime —
#: "a very high number of requests, in order to stress the system" — where
#: clustered keys overwhelm their hosts and satisfaction is globally lower.
LOW_LOAD = 0.10
HIGH_LOAD = 0.50


@dataclass
class FigureResult:
    """A reproduced figure: named mean curves over an x axis (time units for
    the paper's figures; replication degree or crash rate for the fault
    figures, which set ``x_name``/``y_label`` accordingly)."""

    figure_id: str
    title: str
    x: List[int]
    series: Dict[str, np.ndarray]
    n_runs: int
    params: Dict[str, object] = field(default_factory=dict)
    x_name: str = "time"
    y_label: str = ""

    def as_table(self) -> str:
        return series_table(
            self.x, {k: list(v) for k, v in self.series.items()}, x_name=self.x_name
        )


def render_figure_text(
    fig: FigureResult, no_plot: bool = False, include_params: bool = False
) -> str:
    """A figure as deterministic text: header, optional resolved params,
    ASCII plot, per-unit series table.  The single renderer behind both the
    CLI's figure output and the ``repro paper`` artifacts, so the two can
    never drift."""
    import json

    from .ascii_plot import ascii_plot

    # Satisfaction/availability figures plot percentages on a fixed 0–100
    # axis; hop/gain/cost figures autoscale.
    title = fig.title.lower()
    is_pct = all(word not in title for word in ("hops", "gain", "cost"))
    lines = [f"# {fig.figure_id}: {fig.title}  (runs={fig.n_runs})"]
    if include_params:
        lines.append(
            "params: "
            + json.dumps(
                {k: repr(v) for k, v in sorted(fig.params.items())},
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    if not no_plot:
        lines.append(
            ascii_plot(
                {k: list(v) for k, v in fig.series.items()},
                width=78,
                height=20,
                y_min=0 if is_pct else None,
                y_max=100 if is_pct else None,
                x_label="time unit" if fig.x_name == "time" else fig.x_name,
                y_label=fig.y_label
                or ("% satisfied" if is_pct else "hops/request"),
                title="",
            )
        )
    lines.append("")
    lines.append(fig.as_table())
    return "\n".join(lines)


def three_curve_balancers() -> list:
    """The balancer panel of Figures 4–8: MLT, KC (k=4), and the no-LB
    baseline.  A factory (fresh instances) because MLT keeps no state but
    future heuristics might."""
    return [MLT(), KChoices(k=4), NoLB()]


def _three_curve_figure(
    figure_id: str,
    title: str,
    config: ExperimentConfig,
    n_runs: int,
    run_series: SeriesRunner = None,
) -> FigureResult:
    results = compare_balancers(
        config, three_curve_balancers(), n_runs, run_series
    )
    series = {
        f"{name} enabled" if name != "NoLB" else "No LB": res.mean_curve("satisfied_pct")
        for name, res in results.items()
    }
    return FigureResult(
        figure_id=figure_id,
        title=title,
        x=list(range(config.total_units)),
        series=series,
        n_runs=n_runs,
        params={
            "load_fraction": config.load_fraction,
            "churn": (config.churn.join_fraction, config.churn.leave_fraction),
            "n_peers": config.n_peers,
            "corpus_size": len(config.corpus),
        },
    )


def figure4_config(**overrides) -> ExperimentConfig:
    """Figure 4's configuration: stable network, low load."""
    return ExperimentConfig(churn=STABLE, load_fraction=LOW_LOAD, **overrides)


def figure5_config(**overrides) -> ExperimentConfig:
    """Figure 5's configuration: stable network, high (stress) load."""
    return ExperimentConfig(churn=STABLE, load_fraction=HIGH_LOAD, **overrides)


def figure6_config(**overrides) -> ExperimentConfig:
    """Figure 6's configuration: dynamic network (10% churn/unit), low load."""
    return ExperimentConfig(churn=DYNAMIC, load_fraction=LOW_LOAD, **overrides)


def figure7_config(**overrides) -> ExperimentConfig:
    """Figure 7's configuration: dynamic network, high load."""
    return ExperimentConfig(churn=DYNAMIC, load_fraction=HIGH_LOAD, **overrides)


def figure8_config(intensity: float = 0.8, **overrides) -> ExperimentConfig:
    """Figure 8's configuration: 160 units of dynamic network under the
    uniform → S3L burst → ScaLAPACK 'P' burst → uniform timeline."""
    return ExperimentConfig(
        churn=DYNAMIC,
        load_fraction=HIGH_LOAD,
        total_units=160,
        schedule=figure8_schedule(intensity=intensity),
        **overrides,
    )


def figure9_configs(intensity: float = 0.8, **overrides) -> Dict[str, ExperimentConfig]:
    """Figure 9's two configurations, keyed by series label: the
    lexicographic mapping with MLT, and the original DLPT's random (hashed)
    mapping with no balancing.  Both run the Figure 8 timeline at low load."""
    base = dict(
        churn=DYNAMIC,
        load_fraction=LOW_LOAD,
        total_units=160,
        schedule=figure8_schedule(intensity=intensity),
    )
    base.update(overrides)
    return {
        "lexicographic+MLT": ExperimentConfig(lb=MLT(), **base),
        "random-mapping": ExperimentConfig(
            lb=NoLB(), mapping_factory=HashedMapping, **base
        ),
    }


#: Config factory per three-curve figure — the sweep planner enumerates
#: cells from these so the orchestrator and the figure harnesses can never
#: disagree about what a figure runs.
FIGURE_CONFIGS = {
    "fig4": figure4_config,
    "fig5": figure5_config,
    "fig6": figure6_config,
    "fig7": figure7_config,
    "fig8": figure8_config,
}


def figure4(n_runs: int = 30, run_series: SeriesRunner = None, **overrides) -> FigureResult:
    """Stable network, low load: % satisfied requests over 50 units."""
    return _three_curve_figure(
        "fig4", "Load balancing - stable network - no overload",
        figure4_config(**overrides), n_runs, run_series,
    )


def figure5(n_runs: int = 30, run_series: SeriesRunner = None, **overrides) -> FigureResult:
    """Stable network, high load (stress): satisfaction globally lower."""
    return _three_curve_figure(
        "fig5", "Load balancing - stable network - overload",
        figure5_config(**overrides), n_runs, run_series,
    )


def figure6(n_runs: int = 30, run_series: SeriesRunner = None, **overrides) -> FigureResult:
    """Dynamic network (10% churn/unit), low load."""
    return _three_curve_figure(
        "fig6", "Comparing LB algorithms - dynamic network - no overload",
        figure6_config(**overrides), n_runs, run_series,
    )


def figure7(n_runs: int = 30, run_series: SeriesRunner = None, **overrides) -> FigureResult:
    """Dynamic network, high load."""
    return _three_curve_figure(
        "fig7", "Comparing LB algorithms - dynamic network - overload",
        figure7_config(**overrides), n_runs, run_series,
    )


def figure8(
    n_runs: int = 50,
    intensity: float = 0.8,
    run_series: SeriesRunner = None,
    **overrides,
) -> FigureResult:
    """Hot spots over 160 units: uniform → S3L burst → ScaLAPACK 'P' burst
    → uniform.  The network is dynamic, as in the paper."""
    config = figure8_config(intensity=intensity, **overrides)
    result = _three_curve_figure(
        "fig8", "Load balancing - dynamic network - hot spots",
        config, n_runs, run_series,
    )
    result.params["hot_spots"] = [(40, 80, "S3L"), (80, 120, "P")]
    return result


def figure9(
    n_runs: int = 100,
    intensity: float = 0.8,
    run_series: SeriesRunner = None,
    **overrides,
) -> FigureResult:
    """Communication gain of the lexicographic mapping.

    Three curves over the Figure 8 timeline:

    * logical hops per request (mapping-independent tree distance);
    * physical hops under the *random* (DHT/hashed) mapping of the original
      DLPT [5] — locality destroyed, nearly every logical hop crosses peers;
    * physical hops under the lexicographic mapping with MLT enabled.
    """
    configs = figure9_configs(intensity=intensity, **overrides)
    series = run_labeled_series(
        run_series, [(cfg, label) for label, cfg in configs.items()], n_runs
    )
    lex, rnd = series["lexicographic+MLT"], series["random-mapping"]
    total = configs["lexicographic+MLT"].total_units
    return FigureResult(
        figure_id="fig9",
        title="Communication gain",
        x=list(range(total)),
        series={
            "Logical hops": lex.mean_curve("mean_logical_hops"),
            "Physical hops - random mapping": rnd.mean_curve("mean_physical_hops"),
            "Physical hops - lexico. mapping with LB (MLT)": lex.mean_curve(
                "mean_physical_hops"
            ),
        },
        n_runs=n_runs,
        params={
            "load_fraction": configs["lexicographic+MLT"].load_fraction,
            "total_units": total,
        },
    )


# ---------------------------------------------------------------------------
# fault figures (beyond the paper: the conclusion defers fault handling)
# ---------------------------------------------------------------------------

#: Replication degrees swept by the availability figure (0 = no replicas).
FAULT_R_VALUES = (0, 1, 2, 3)
#: Per-peer, per-unit crash probabilities.  The availability figure sweeps
#: replication under each of ``FAULT_AVAILABILITY_RATES``; the repair
#: figure sweeps ``FAULT_REPAIR_RATES`` under each replication degree of
#: ``FAULT_REPAIR_R_VALUES``.
FAULT_AVAILABILITY_RATES = (0.02, 0.05, 0.10)
FAULT_REPAIR_RATES = (0.01, 0.02, 0.05, 0.10)
FAULT_REPAIR_R_VALUES = (1, 2)
#: Crash storms start once the tree is fully grown, so steady-state
#: availability is measured on a stable key population.
_FAULT_STORM_START = 10


def _fault_config(rate: float, r: int, **overrides) -> ExperimentConfig:
    spec = f"crash_storm:{rate:g}:start={_FAULT_STORM_START}:r={r}"
    return ExperimentConfig(
        churn=STABLE, load_fraction=LOW_LOAD, faults=spec, **overrides
    )


def fault_availability_configs(**overrides) -> Dict[str, ExperimentConfig]:
    """One config per (replication degree, crash rate) grid point, keyed by
    a ``r=R|rate=X`` label — the availability figure's cell grid."""
    return {
        f"r={r}|rate={rate:g}": _fault_config(rate, r, **overrides)
        for r in FAULT_R_VALUES
        for rate in FAULT_AVAILABILITY_RATES
    }


def fault_repair_configs(**overrides) -> Dict[str, ExperimentConfig]:
    """One config per (replication degree, crash rate) point of the repair
    figure — rates on the x axis, one curve per replication degree."""
    return {
        f"r={r}|rate={rate:g}": _fault_config(rate, r, **overrides)
        for r in FAULT_REPAIR_R_VALUES
        for rate in FAULT_REPAIR_RATES
    }


def _steady_availability(series) -> float:
    """Mean key availability (%) after the growth transient."""
    curve = series.mean_curve("key_availability_pct")
    return float(np.mean(curve[_FAULT_STORM_START:]))


def fault_availability(
    n_runs: int = 10, run_series: SeriesRunner = None, **overrides
) -> FigureResult:
    """Key availability vs replication degree ``r`` under crash storms.

    x is the successor-replication factor; one curve per storm rate.  The
    y value of a point is the steady-state fraction of registered keys
    still resolvable, averaged over the post-growth units — the figure
    behind the claim that successor replication buys back the durability
    fail-stop crashes destroy.
    """
    configs = fault_availability_configs(**overrides)
    results = run_labeled_series(
        run_series, [(cfg, label) for label, cfg in configs.items()], n_runs
    )
    series = {
        f"crash rate {rate:.0%}": np.array(
            [_steady_availability(results[f"r={r}|rate={rate:g}"]) for r in FAULT_R_VALUES]
        )
        for rate in FAULT_AVAILABILITY_RATES
    }
    sample = next(iter(configs.values()))
    return FigureResult(
        figure_id="fault_availability",
        title="Availability vs replication degree - crash storms",
        x=list(FAULT_R_VALUES),
        series=series,
        n_runs=n_runs,
        params={
            "rates": list(FAULT_AVAILABILITY_RATES),
            "storm_start": _FAULT_STORM_START,
            "n_peers": sample.n_peers,
            "total_units": sample.total_units,
        },
        x_name="r",
        y_label="% keys available",
    )


def _repair_cost_per_crash(series) -> float:
    """Mean repair re-registrations per crash across a series' runs."""
    costs = []
    for run in series.runs:
        crashes = sum(u.crashes for u in run.units)
        cost = sum(u.repair_cost for u in run.units)
        if crashes:
            costs.append(cost / crashes)
    return float(np.mean(costs)) if costs else 0.0


def fault_repair(
    n_runs: int = 10, run_series: SeriesRunner = None, **overrides
) -> FigureResult:
    """Repair cost vs crash rate: the trie's "costly maintenance" priced.

    x is the crash rate in percent; one curve per replication degree.  The
    y value is the mean number of re-registrations each crash forces the
    repair pass to perform — every point on the tree's O(|N|) rebuild that
    the paper's Section 2 worries about.
    """
    configs = fault_repair_configs(**overrides)
    results = run_labeled_series(
        run_series, [(cfg, label) for label, cfg in configs.items()], n_runs
    )
    series = {
        f"repair ops/crash (r={r})": np.array(
            [
                _repair_cost_per_crash(results[f"r={r}|rate={rate:g}"])
                for rate in FAULT_REPAIR_RATES
            ]
        )
        for r in FAULT_REPAIR_R_VALUES
    }
    sample = next(iter(configs.values()))
    return FigureResult(
        figure_id="fault_repair",
        title="Repair cost vs crash rate",
        x=[round(100 * rate) for rate in FAULT_REPAIR_RATES],
        series=series,
        n_runs=n_runs,
        params={
            "r_values": list(FAULT_REPAIR_R_VALUES),
            "storm_start": _FAULT_STORM_START,
            "n_peers": sample.n_peers,
            "total_units": sample.total_units,
        },
        x_name="crash %",
        y_label="repair ops/crash",
    )


ALL_FIGURES = {
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fault_availability": fault_availability,
    "fault_repair": fault_repair,
}
