"""Figure harnesses — one function per figure of the paper's Section 4.

Each harness builds the three-balancer comparison (MLT / KC / No LB) on a
common-random-numbers configuration and returns a :class:`FigureResult`
whose series are the per-unit mean curves the paper plots.

``n_runs`` defaults follow the paper (30 for Figures 4–7, 50 for Figure 8,
100 for Figure 9); the benchmarks pass smaller values to stay laptop-quick
and EXPERIMENTS.md records both settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..baselines.dlpt_dht import HashedMapping
from ..lb.kchoices import KChoices
from ..lb.mlt import MLT
from ..lb.nolb import NoLB
from ..peers.churn import DYNAMIC, STABLE
from ..workloads.requests import figure8_schedule
from .config import ExperimentConfig
from .metrics import series_table
from .runner import compare_balancers, run_many

#: Load fractions used for the figures.  "No overload" (10% of aggregate
#: capacity) leaves the platform under-subscribed, so drops come only from
#: placement imbalance; "overload" (50%) is the paper's stress regime —
#: "a very high number of requests, in order to stress the system" — where
#: clustered keys overwhelm their hosts and satisfaction is globally lower.
LOW_LOAD = 0.10
HIGH_LOAD = 0.50


@dataclass
class FigureResult:
    """A reproduced figure: named mean curves over time units."""

    figure_id: str
    title: str
    x: List[int]
    series: Dict[str, np.ndarray]
    n_runs: int
    params: Dict[str, object] = field(default_factory=dict)

    def as_table(self) -> str:
        return series_table(self.x, {k: list(v) for k, v in self.series.items()})


def _three_curve_figure(
    figure_id: str,
    title: str,
    config: ExperimentConfig,
    n_runs: int,
) -> FigureResult:
    balancers = [MLT(), KChoices(k=4), NoLB()]
    results = compare_balancers(config, balancers, n_runs)
    series = {
        f"{name} enabled" if name != "NoLB" else "No LB": res.mean_curve("satisfied_pct")
        for name, res in results.items()
    }
    return FigureResult(
        figure_id=figure_id,
        title=title,
        x=list(range(config.total_units)),
        series=series,
        n_runs=n_runs,
        params={
            "load_fraction": config.load_fraction,
            "churn": (config.churn.join_fraction, config.churn.leave_fraction),
            "n_peers": config.n_peers,
            "corpus_size": len(config.corpus),
        },
    )


def figure4(n_runs: int = 30, **overrides) -> FigureResult:
    """Stable network, low load: % satisfied requests over 50 units."""
    config = ExperimentConfig(churn=STABLE, load_fraction=LOW_LOAD, **overrides)
    return _three_curve_figure(
        "fig4", "Load balancing - stable network - no overload", config, n_runs
    )


def figure5(n_runs: int = 30, **overrides) -> FigureResult:
    """Stable network, high load (stress): satisfaction globally lower."""
    config = ExperimentConfig(churn=STABLE, load_fraction=HIGH_LOAD, **overrides)
    return _three_curve_figure(
        "fig5", "Load balancing - stable network - overload", config, n_runs
    )


def figure6(n_runs: int = 30, **overrides) -> FigureResult:
    """Dynamic network (10% churn/unit), low load."""
    config = ExperimentConfig(churn=DYNAMIC, load_fraction=LOW_LOAD, **overrides)
    return _three_curve_figure(
        "fig6", "Comparing LB algorithms - dynamic network - no overload", config, n_runs
    )


def figure7(n_runs: int = 30, **overrides) -> FigureResult:
    """Dynamic network, high load."""
    config = ExperimentConfig(churn=DYNAMIC, load_fraction=HIGH_LOAD, **overrides)
    return _three_curve_figure(
        "fig7", "Comparing LB algorithms - dynamic network - overload", config, n_runs
    )


def figure8(n_runs: int = 50, intensity: float = 0.8, **overrides) -> FigureResult:
    """Hot spots over 160 units: uniform → S3L burst → ScaLAPACK 'P' burst
    → uniform.  The network is dynamic, as in the paper."""
    config = ExperimentConfig(
        churn=DYNAMIC,
        load_fraction=HIGH_LOAD,
        total_units=160,
        schedule=figure8_schedule(intensity=intensity),
        **overrides,
    )
    result = _three_curve_figure(
        "fig8", "Load balancing - dynamic network - hot spots", config, n_runs
    )
    result.params["hot_spots"] = [(40, 80, "S3L"), (80, 120, "P")]
    return result


def figure9(n_runs: int = 100, intensity: float = 0.8, **overrides) -> FigureResult:
    """Communication gain of the lexicographic mapping.

    Three curves over the Figure 8 timeline:

    * logical hops per request (mapping-independent tree distance);
    * physical hops under the *random* (DHT/hashed) mapping of the original
      DLPT [5] — locality destroyed, nearly every logical hop crosses peers;
    * physical hops under the lexicographic mapping with MLT enabled.
    """
    base = dict(
        churn=DYNAMIC,
        load_fraction=LOW_LOAD,
        total_units=160,
        schedule=figure8_schedule(intensity=intensity),
    )
    base.update(overrides)

    lex = run_many(
        ExperimentConfig(lb=MLT(), **base), n_runs, label="lexicographic+MLT"
    )
    rnd = run_many(
        ExperimentConfig(
            lb=NoLB(), mapping_factory=HashedMapping, **base
        ),
        n_runs,
        label="random-mapping",
    )
    total = base["total_units"]
    return FigureResult(
        figure_id="fig9",
        title="Communication gain",
        x=list(range(total)),
        series={
            "Logical hops": lex.mean_curve("mean_logical_hops"),
            "Physical hops - random mapping": rnd.mean_curve("mean_physical_hops"),
            "Physical hops - lexico. mapping with LB (MLT)": lex.mean_curve(
                "mean_physical_hops"
            ),
        },
        n_runs=n_runs,
        params={"load_fraction": base["load_fraction"], "total_units": total},
    )


ALL_FIGURES = {
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
}
