"""Figure harnesses — one function per figure of the paper's Section 4.

Each harness builds the three-balancer comparison (MLT / KC / No LB) on a
common-random-numbers configuration and returns a :class:`FigureResult`
whose series are the per-unit mean curves the paper plots.

``n_runs`` defaults follow the paper (30 for Figures 4–7, 50 for Figure 8,
100 for Figure 9); the benchmarks pass smaller values to stay laptop-quick
and EXPERIMENTS.md records both settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..baselines.dlpt_dht import HashedMapping
from ..lb.kchoices import KChoices
from ..lb.mlt import MLT
from ..lb.nolb import NoLB
from ..peers.churn import DYNAMIC, STABLE
from ..workloads.requests import figure8_schedule
from .config import ExperimentConfig
from .metrics import series_table
from .runner import SeriesRunner, compare_balancers, run_labeled_series

#: Load fractions used for the figures.  "No overload" (10% of aggregate
#: capacity) leaves the platform under-subscribed, so drops come only from
#: placement imbalance; "overload" (50%) is the paper's stress regime —
#: "a very high number of requests, in order to stress the system" — where
#: clustered keys overwhelm their hosts and satisfaction is globally lower.
LOW_LOAD = 0.10
HIGH_LOAD = 0.50


@dataclass
class FigureResult:
    """A reproduced figure: named mean curves over time units."""

    figure_id: str
    title: str
    x: List[int]
    series: Dict[str, np.ndarray]
    n_runs: int
    params: Dict[str, object] = field(default_factory=dict)

    def as_table(self) -> str:
        return series_table(self.x, {k: list(v) for k, v in self.series.items()})


def render_figure_text(
    fig: FigureResult, no_plot: bool = False, include_params: bool = False
) -> str:
    """A figure as deterministic text: header, optional resolved params,
    ASCII plot, per-unit series table.  The single renderer behind both the
    CLI's figure output and the ``repro paper`` artifacts, so the two can
    never drift."""
    import json

    from .ascii_plot import ascii_plot

    # Satisfaction figures plot percentages on a fixed 0–100 axis; hop/gain
    # figures autoscale.
    is_pct = "hops" not in fig.title.lower() and "gain" not in fig.title.lower()
    lines = [f"# {fig.figure_id}: {fig.title}  (runs={fig.n_runs})"]
    if include_params:
        lines.append(
            "params: "
            + json.dumps(
                {k: repr(v) for k, v in sorted(fig.params.items())},
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    if not no_plot:
        lines.append(
            ascii_plot(
                {k: list(v) for k, v in fig.series.items()},
                width=78,
                height=20,
                y_min=0 if is_pct else None,
                y_max=100 if is_pct else None,
                x_label="time unit",
                y_label="% satisfied" if is_pct else "hops/request",
                title="",
            )
        )
    lines.append("")
    lines.append(fig.as_table())
    return "\n".join(lines)


def three_curve_balancers() -> list:
    """The balancer panel of Figures 4–8: MLT, KC (k=4), and the no-LB
    baseline.  A factory (fresh instances) because MLT keeps no state but
    future heuristics might."""
    return [MLT(), KChoices(k=4), NoLB()]


def _three_curve_figure(
    figure_id: str,
    title: str,
    config: ExperimentConfig,
    n_runs: int,
    run_series: SeriesRunner = None,
) -> FigureResult:
    results = compare_balancers(
        config, three_curve_balancers(), n_runs, run_series
    )
    series = {
        f"{name} enabled" if name != "NoLB" else "No LB": res.mean_curve("satisfied_pct")
        for name, res in results.items()
    }
    return FigureResult(
        figure_id=figure_id,
        title=title,
        x=list(range(config.total_units)),
        series=series,
        n_runs=n_runs,
        params={
            "load_fraction": config.load_fraction,
            "churn": (config.churn.join_fraction, config.churn.leave_fraction),
            "n_peers": config.n_peers,
            "corpus_size": len(config.corpus),
        },
    )


def figure4_config(**overrides) -> ExperimentConfig:
    """Figure 4's configuration: stable network, low load."""
    return ExperimentConfig(churn=STABLE, load_fraction=LOW_LOAD, **overrides)


def figure5_config(**overrides) -> ExperimentConfig:
    """Figure 5's configuration: stable network, high (stress) load."""
    return ExperimentConfig(churn=STABLE, load_fraction=HIGH_LOAD, **overrides)


def figure6_config(**overrides) -> ExperimentConfig:
    """Figure 6's configuration: dynamic network (10% churn/unit), low load."""
    return ExperimentConfig(churn=DYNAMIC, load_fraction=LOW_LOAD, **overrides)


def figure7_config(**overrides) -> ExperimentConfig:
    """Figure 7's configuration: dynamic network, high load."""
    return ExperimentConfig(churn=DYNAMIC, load_fraction=HIGH_LOAD, **overrides)


def figure8_config(intensity: float = 0.8, **overrides) -> ExperimentConfig:
    """Figure 8's configuration: 160 units of dynamic network under the
    uniform → S3L burst → ScaLAPACK 'P' burst → uniform timeline."""
    return ExperimentConfig(
        churn=DYNAMIC,
        load_fraction=HIGH_LOAD,
        total_units=160,
        schedule=figure8_schedule(intensity=intensity),
        **overrides,
    )


def figure9_configs(intensity: float = 0.8, **overrides) -> Dict[str, ExperimentConfig]:
    """Figure 9's two configurations, keyed by series label: the
    lexicographic mapping with MLT, and the original DLPT's random (hashed)
    mapping with no balancing.  Both run the Figure 8 timeline at low load."""
    base = dict(
        churn=DYNAMIC,
        load_fraction=LOW_LOAD,
        total_units=160,
        schedule=figure8_schedule(intensity=intensity),
    )
    base.update(overrides)
    return {
        "lexicographic+MLT": ExperimentConfig(lb=MLT(), **base),
        "random-mapping": ExperimentConfig(
            lb=NoLB(), mapping_factory=HashedMapping, **base
        ),
    }


#: Config factory per three-curve figure — the sweep planner enumerates
#: cells from these so the orchestrator and the figure harnesses can never
#: disagree about what a figure runs.
FIGURE_CONFIGS = {
    "fig4": figure4_config,
    "fig5": figure5_config,
    "fig6": figure6_config,
    "fig7": figure7_config,
    "fig8": figure8_config,
}


def figure4(n_runs: int = 30, run_series: SeriesRunner = None, **overrides) -> FigureResult:
    """Stable network, low load: % satisfied requests over 50 units."""
    return _three_curve_figure(
        "fig4", "Load balancing - stable network - no overload",
        figure4_config(**overrides), n_runs, run_series,
    )


def figure5(n_runs: int = 30, run_series: SeriesRunner = None, **overrides) -> FigureResult:
    """Stable network, high load (stress): satisfaction globally lower."""
    return _three_curve_figure(
        "fig5", "Load balancing - stable network - overload",
        figure5_config(**overrides), n_runs, run_series,
    )


def figure6(n_runs: int = 30, run_series: SeriesRunner = None, **overrides) -> FigureResult:
    """Dynamic network (10% churn/unit), low load."""
    return _three_curve_figure(
        "fig6", "Comparing LB algorithms - dynamic network - no overload",
        figure6_config(**overrides), n_runs, run_series,
    )


def figure7(n_runs: int = 30, run_series: SeriesRunner = None, **overrides) -> FigureResult:
    """Dynamic network, high load."""
    return _three_curve_figure(
        "fig7", "Comparing LB algorithms - dynamic network - overload",
        figure7_config(**overrides), n_runs, run_series,
    )


def figure8(
    n_runs: int = 50,
    intensity: float = 0.8,
    run_series: SeriesRunner = None,
    **overrides,
) -> FigureResult:
    """Hot spots over 160 units: uniform → S3L burst → ScaLAPACK 'P' burst
    → uniform.  The network is dynamic, as in the paper."""
    config = figure8_config(intensity=intensity, **overrides)
    result = _three_curve_figure(
        "fig8", "Load balancing - dynamic network - hot spots",
        config, n_runs, run_series,
    )
    result.params["hot_spots"] = [(40, 80, "S3L"), (80, 120, "P")]
    return result


def figure9(
    n_runs: int = 100,
    intensity: float = 0.8,
    run_series: SeriesRunner = None,
    **overrides,
) -> FigureResult:
    """Communication gain of the lexicographic mapping.

    Three curves over the Figure 8 timeline:

    * logical hops per request (mapping-independent tree distance);
    * physical hops under the *random* (DHT/hashed) mapping of the original
      DLPT [5] — locality destroyed, nearly every logical hop crosses peers;
    * physical hops under the lexicographic mapping with MLT enabled.
    """
    configs = figure9_configs(intensity=intensity, **overrides)
    series = run_labeled_series(
        run_series, [(cfg, label) for label, cfg in configs.items()], n_runs
    )
    lex, rnd = series["lexicographic+MLT"], series["random-mapping"]
    total = configs["lexicographic+MLT"].total_units
    return FigureResult(
        figure_id="fig9",
        title="Communication gain",
        x=list(range(total)),
        series={
            "Logical hops": lex.mean_curve("mean_logical_hops"),
            "Physical hops - random mapping": rnd.mean_curve("mean_physical_hops"),
            "Physical hops - lexico. mapping with LB (MLT)": lex.mean_curve(
                "mean_physical_hops"
            ),
        },
        n_runs=n_runs,
        params={
            "load_fraction": configs["lexicographic+MLT"].load_fraction,
            "total_units": total,
        },
    )


ALL_FIGURES = {
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
}
