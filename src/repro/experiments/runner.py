"""The discrete-time experiment loop (paper Section 4).

"Each time unit is composed of several steps. (1) If MLT is enabled, a fixed
fraction of the peers executes the MLT load balancing. (2) A fixed fraction
of peers join the system (applying the KC algorithm if enabled, or just the
protocol detailed in Section 3, otherwise). (3) A fixed fraction of peers
leaves the system. (4) A fixed fraction of new services are added in the
tree (possibly resulting in the creation of new nodes). (5) Discovery
requests are sent to the tree (and results on the number of satisfied
discovery requests are collected)."

Common random numbers: every stochastic decision draws from a named stream
derived from the config seed, so runs that differ only in the balancer see
identical churn, identical capacities and identical request sequences —
the paper's three curves are then directly comparable.

Fault injection (extension): when the config carries a fault plan
(:mod:`repro.faults`), a step (3b) between departures and registrations
applies the unit's fault events — fail-stop crashes, partitions — and runs
the replication/repair policy, with availability and durability metrics
accounted per unit.

Record/replay: :func:`run_single` optionally records the workload side of a
run (churn arrivals, departures, registrations, requests, fault events) into a
:class:`repro.workloads.traces.WorkloadTrace`, or replays one instead of
drawing from the workload streams.  A trace replayed against its own
configuration reproduces the run exactly (byte-identical metrics); replayed
against a different balancer or mapping it holds the traffic fixed while
the system under test varies.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..dlpt.system import DLPTSystem, corpus_peer_id_sampler
from ..faults.injector import REPLAY_POLICY_PLAN, FaultInjector
from ..util.rng import RngStreams
from ..workloads.queries import query_from_event
from ..workloads.traces import TraceRecorder, WorkloadTrace
from .config import ExperimentConfig
from .metrics import ExperimentSeries, RunResult, UnitStats


def build_system(config: ExperimentConfig, streams: RngStreams) -> DLPTSystem:
    """Bootstrap the platform: peers only, no services yet."""
    sampler = (
        corpus_peer_id_sampler(config.corpus, config.alphabet)
        if config.peer_ids == "corpus"
        else None
    )
    system = DLPTSystem(
        alphabet=config.alphabet,
        capacity_model=config.capacity_model,
        mapping_factory=config.mapping_factory,
        peer_id_sampler=sampler,
    )
    boot = streams.stream("bootstrap")
    cap = streams.stream("capacity")
    # Capacities are pre-drawn in peer order: the "capacity" and
    # "bootstrap" streams are independent, so both construction paths
    # consume each stream in exactly the same per-peer sequence.
    capacities = [config.capacity_model.sample(cap) for _ in range(config.n_peers)]
    if config.construction == "seed":
        for capacity in capacities:
            system.add_peer(boot, capacity=capacity)
    else:
        system.add_peers(boot, config.n_peers, capacities=capacities)
    return system


def growth_batches(config: ExperimentConfig, streams: RngStreams) -> List[List[str]]:
    """Split the (shuffled) corpus into one registration batch per growth
    unit — the tree grows during the first ``growth_units`` units and then
    "remains the same"."""
    keys = list(config.corpus)
    streams.stream("corpus").shuffle(keys)
    n = config.growth_units
    base, extra = divmod(len(keys), n)
    batches, start = [], 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        batches.append(keys[start : start + size])
        start += size
    return batches


def _load_imbalance(system: DLPTSystem) -> float:
    """Hottest peer's received load over the mean received load this unit
    (1.0 = perfectly even, 0.0 = no request arrived)."""
    peak = 0
    total = 0
    count = 0
    for peer in system.ring.peers_unordered():
        load = peer.load
        total += load
        count += 1
        if load > peak:
            peak = load
    if total == 0 or count == 0:
        return 0.0
    return peak * count / total


def run_single(
    config: ExperimentConfig,
    run_index: int = 0,
    recorder: Optional[TraceRecorder] = None,
    replay: Optional[WorkloadTrace] = None,
) -> RunResult:
    """Execute one full simulation run and return its per-unit series.

    ``recorder`` (optional) captures the workload side of the run; pass a
    fresh :class:`TraceRecorder` and collect ``recorder.trace()`` after the
    call.  ``replay`` (optional, exclusive with ``recorder``) drives the
    run from a recorded trace instead of the workload RNG streams: the
    trace's joins, leaves, registrations and requests are re-issued
    verbatim while the balancer and mapping under test react live.
    """
    if recorder is not None and replay is not None:
        raise ValueError("cannot record and replay in the same run")
    master_seed = config.seed
    if replay is not None:
        # The trace header pins the recording's seed and run index; the
        # system-side streams (bootstrap, lb) must re-derive from them or
        # the replay is a different run than the recording.
        run_index = replay.run_index
        master_seed = replay.seed
    streams = RngStreams(master_seed).spawn(run_index)
    system = build_system(config, streams)
    batches = [] if replay is not None else growth_batches(config, streams)

    # Fault injection: driven by the config's fault plan, or — when a
    # fault-bearing trace is replayed under a fault-free config — by the
    # default replay policy (recorded events applied, repair every unit, no
    # replication).  The injector draws from its own "faults" stream, so a
    # fault-free run is bit-identical with or without this subsystem.
    fault_plan = config.fault_plan
    if fault_plan is None and replay is not None and any(u.faults for u in replay.units):
        fault_plan = REPLAY_POLICY_PLAN
    injector = (
        FaultInjector(fault_plan, system, streams.stream("faults"), recorder=recorder)
        if fault_plan is not None
        else None
    )

    churn_rng = streams.stream("churn")
    cap_rng = streams.stream("capacity")
    lb_rng = streams.stream("lb")
    req_rng = streams.stream("requests")
    entry_rng = streams.stream("entry")
    # The "queries" stream exists only when the config carries a query
    # plan: query-free runs consume exactly the streams they always did,
    # so their results stay bit-identical with or without this axis.
    query_plan = config.query_plan
    query_rng = streams.stream("queries") if query_plan is not None else None

    available: List[str] = []
    result = RunResult()
    total_units = replay.n_units if replay is not None else config.total_units
    schedule = config.schedule
    accounting = config.accounting
    # The request-serving strategy: the indexed batch fast path by default,
    # or the frozen per-request reference walk when a benchmark pins
    # ``discovery="seed"`` (imported lazily; experiments never pay for it).
    if config.discovery == "seed":
        from ..perf.reference_routing import seed_discover

        def serve_requests(pairs, stats: UnitStats) -> None:
            node_of = system.tree.node
            hist = stats.hop_histogram
            for key, entry in pairs:
                stats.issued += 1
                if node_of(entry) is None:
                    # The recorded entry node does not exist in *this*
                    # system (a fault trace replayed under a weaker repair
                    # policy): the client knocked on a dead node.
                    stats.not_found += 1
                    continue
                outcome = seed_discover(
                    system, key, entry_label=entry, accounting=accounting
                )
                if outcome.satisfied:
                    stats.satisfied += 1
                    stats.logical_hops += outcome.logical_hops
                    stats.physical_hops += outcome.physical_hops
                    hist[outcome.logical_hops] = hist.get(outcome.logical_hops, 0) + 1
                elif outcome.dropped:
                    stats.dropped += 1
                else:
                    stats.not_found += 1
    else:

        def serve_requests(pairs, stats: UnitStats) -> None:
            batch = system.discover_batch(
                pairs, accounting=accounting, skip_missing_entries=True
            )
            stats.absorb_requests(batch)

    for unit in range(total_units):
        stats = UnitStats()
        trace_unit = replay.units[unit] if replay is not None else None
        if recorder is not None:
            recorder.begin_unit()

        # (1) periodic load balancing (MLT) — uses last unit's history.
        if unit > 0:
            stats.migrations += config.lb.run_balancing(system, lb_rng)

        # (2) peer joins — capacity from the model (or the trace), placement
        # by the balancer (KC) or random.
        if trace_unit is not None:
            join_capacities = trace_unit.joins
        else:
            join_capacities = [
                config.capacity_model.sample(cap_rng)
                for _ in range(config.churn.joins(len(system.ring), churn_rng))
            ]
        for capacity in join_capacities:
            if recorder is not None:
                recorder.join(capacity)
            peer_id = config.lb.choose_join_id(system, capacity, lb_rng)
            system.add_peer(lb_rng, peer_id=peer_id, capacity=capacity)

        # (3) peer leaves — uniformly random victims.  The workload-side
        # randomness is the ring-position draw; replay re-applies it modulo
        # the live ring size so the same trace drives any system.  ``id_at``
        # draws the same victim as indexing a full ``ids()`` copy (both are
        # the sorted id sequence) without the O(P) copy per leave.
        if trace_unit is not None:
            leave_indices = trace_unit.leaves
        else:
            leave_indices = [
                churn_rng.randrange(len(system.ring) - k)
                for k in range(config.churn.leaves(len(system.ring), churn_rng))
            ]
        for index in leave_indices:
            if recorder is not None:
                recorder.leave(index)
            victim = system.ring.id_at(index % len(system.ring))
            departed = system.remove_peer(victim)
            if injector is not None:
                injector.on_peer_departed(departed)

        # (3b) fault injection — fail-stop crashes, partitions, repair.
        if injector is not None:
            injector.begin_unit(
                unit,
                stats,
                trace_events=trace_unit.faults if trace_unit is not None else None,
            )

        # (4) service registrations — the tree grows for growth_units units.
        if trace_unit is not None:
            registrations = trace_unit.registrations
        else:
            registrations = batches[unit] if unit < len(batches) else []
        if injector is not None and registrations:
            # Never grow a crash-damaged forest: force the repair first.
            injector.before_registrations(unit, stats)
        if registrations:
            if recorder is not None:
                for key in registrations:
                    recorder.registration(key)
            # Batched registration (the bulk construction fast path) or the
            # frozen per-key loop under ``construction="seed"``.  Replica
            # refreshes run after the batch: hosts and data are identical
            # either way within one step, so the interleaving is equivalent.
            if config.construction == "seed":
                for key in registrations:
                    system.register(key)
            else:
                system.register_batch(registrations)
            available.extend(registrations)
            if injector is not None:
                for key in registrations:
                    injector.on_registered(key)

        # (5) discovery requests under the per-unit capacity budget, scaled
        # by the schedule's rate multiplier (diurnal cycles, crowd surges).
        # The unit's keys and entry nodes are sampled up front — key draws
        # and entry draws come from two independent streams, so hoisting
        # them out of the serving loop consumes both streams identically —
        # and the whole batch is served in one indexed pass.
        capacity_total = system.ring.aggregate_capacity()
        if trace_unit is not None:
            serve_requests(trace_unit.requests, stats)
        elif available and system.n_nodes:
            # (n_nodes guard: a crash wave can empty the whole tree before
            # repair; no entry node means no requests this unit.)
            rate = schedule.rate_multiplier(unit)
            n_requests = max(1, round(config.load_fraction * capacity_total * rate))
            sample = schedule.sample
            keys = [sample(unit, req_rng, available) for _ in range(n_requests)]
            entries = system.random_entry_labels(entry_rng, n_requests)
            pairs = list(zip(keys, entries))
            if recorder is not None:
                for key, entry in pairs:
                    recorder.request(key, entry)
            serve_requests(pairs, stats)

        # (5b) set queries — prefix completions, ranges and exact probes
        # through the routed scan path.  Replay serves the trace's query
        # events whenever present (even under a query-free config); live
        # runs draw from the dedicated "queries" stream.
        if trace_unit is not None:
            query_events = trace_unit.queries
        elif query_plan is not None and available and system.n_nodes:
            query_events = query_plan.sample_unit(query_rng, available)
            entries = system.random_entry_labels(query_rng, len(query_events))
            query_events = [
                event + [entry] for event, entry in zip(query_events, entries)
            ]
            if recorder is not None:
                for event in query_events:
                    recorder.query(event)
        else:
            query_events = []
        if query_events:
            items = []
            for event in query_events:
                query, entry = query_from_event(event)
                if system.tree.node(entry) is None:
                    # The recorded entry node does not exist in *this*
                    # system (cross-config replay): enter at the scan root.
                    entry = None
                items.append((query, entry))
            stats.absorb_queries(system.search_batch(items))

        stats.peers = system.n_peers
        stats.nodes = system.n_nodes
        stats.aggregate_capacity = capacity_total
        stats.load_imbalance = _load_imbalance(system)
        stats.keys_expected = len(available)
        # With fault injection keys can be missing; the O(1) filled-node
        # counter replaces the seed's O(nodes) tree walk per unit.  Without
        # injection no key can ever be missing.
        stats.keys_present = (
            system.registered_key_count if injector is not None else len(available)
        )
        system.end_time_unit()
        result.units.append(stats)

    return result


def record_single(
    config: ExperimentConfig,
    run_index: int = 0,
    meta: Optional[dict] = None,
) -> Tuple[RunResult, WorkloadTrace]:
    """Run once while recording; returns the run and its workload trace.

    The recorded run is bit-identical to an unrecorded ``run_single`` with
    the same arguments — recording only observes.
    """
    header = {"config": config.describe(), **(meta or {})}
    recorder = TraceRecorder(seed=config.seed, run_index=run_index, meta=header)
    result = run_single(config, run_index, recorder=recorder)
    return result, recorder.trace()


def replay_single(config: ExperimentConfig, trace: WorkloadTrace) -> RunResult:
    """Replay a recorded trace against ``config``'s balancer and mapping."""
    return run_single(config, replay=trace)


def run_many(
    config: ExperimentConfig,
    n_runs: int,
    label: Optional[str] = None,
) -> ExperimentSeries:
    """Repeat a configuration ``n_runs`` times (paper: 30/50/100)."""
    if n_runs < 1:
        raise ValueError("n_runs must be >= 1")
    runs = [run_single(config, i) for i in range(n_runs)]
    return ExperimentSeries(label=label or config.lb.name, runs=runs)


#: Anything that produces the repeated-run series of one configuration:
#: ``run_series(config, n_runs, label) -> ExperimentSeries``.  The default
#: is sequential :func:`run_many`; the CLI swaps in the process-parallel
#: runner and :mod:`repro.sweeps` a store-cached one.  A runner may
#: additionally expose ``run_batch(configs, n_runs) -> {label: series}``
#: (e.g. :class:`~repro.experiments.parallel.PooledSeriesRunner`) to
#: receive several series' runs at once — :func:`run_labeled_series`
#: probes for it.
SeriesRunner = Callable[[ExperimentConfig, int, str], ExperimentSeries]


def run_labeled_series(
    run_series: Optional[SeriesRunner],
    labeled_configs,
    n_runs: int,
) -> dict[str, ExperimentSeries]:
    """Produce one series per ``(config, label)`` pair via ``run_series``.

    The single dispatch point for every multi-series harness: defaults to
    sequential :func:`run_many`, and hands the whole batch to the runner's
    ``run_batch`` when it has one so a shared pool stays saturated even
    when ``n_runs`` is below the worker count.
    """
    if run_series is None:
        run_series = lambda cfg, n, label: run_many(cfg, n, label=label)  # noqa: E731
    run_batch = getattr(run_series, "run_batch", None)
    if run_batch is not None:
        return run_batch(list(labeled_configs), n_runs)
    return {
        label: run_series(config, n_runs, label)
        for config, label in labeled_configs
    }


def compare_balancers(
    config: ExperimentConfig,
    balancers,
    n_runs: int,
    run_series: Optional[SeriesRunner] = None,
) -> dict[str, ExperimentSeries]:
    """Run the same experiment under each balancer (common random numbers);
    the figures' three-curve layout.  ``run_series`` overrides how each
    per-balancer series is produced (parallel pool, result-store cache)."""
    return run_labeled_series(
        run_series, [(config.with_lb(lb), lb.name) for lb in balancers], n_runs
    )
