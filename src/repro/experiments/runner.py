"""The discrete-time experiment loop (paper Section 4).

"Each time unit is composed of several steps. (1) If MLT is enabled, a fixed
fraction of the peers executes the MLT load balancing. (2) A fixed fraction
of peers join the system (applying the KC algorithm if enabled, or just the
protocol detailed in Section 3, otherwise). (3) A fixed fraction of peers
leaves the system. (4) A fixed fraction of new services are added in the
tree (possibly resulting in the creation of new nodes). (5) Discovery
requests are sent to the tree (and results on the number of satisfied
discovery requests are collected)."

Common random numbers: every stochastic decision draws from a named stream
derived from the config seed, so runs that differ only in the balancer see
identical churn, identical capacities and identical request sequences —
the paper's three curves are then directly comparable.
"""

from __future__ import annotations

from typing import List, Optional

from ..dlpt.system import DLPTSystem, corpus_peer_id_sampler
from ..util.rng import RngStreams
from .config import ExperimentConfig
from .metrics import ExperimentSeries, RunResult, UnitStats


def build_system(config: ExperimentConfig, streams: RngStreams) -> DLPTSystem:
    """Bootstrap the platform: peers only, no services yet."""
    sampler = (
        corpus_peer_id_sampler(config.corpus, config.alphabet)
        if config.peer_ids == "corpus"
        else None
    )
    system = DLPTSystem(
        alphabet=config.alphabet,
        capacity_model=config.capacity_model,
        mapping_factory=config.mapping_factory,
        peer_id_sampler=sampler,
    )
    boot = streams.stream("bootstrap")
    cap = streams.stream("capacity")
    for _ in range(config.n_peers):
        system.add_peer(boot, capacity=config.capacity_model.sample(cap))
    return system


def growth_batches(config: ExperimentConfig, streams: RngStreams) -> List[List[str]]:
    """Split the (shuffled) corpus into one registration batch per growth
    unit — the tree grows during the first ``growth_units`` units and then
    "remains the same"."""
    keys = list(config.corpus)
    streams.stream("corpus").shuffle(keys)
    n = config.growth_units
    base, extra = divmod(len(keys), n)
    batches, start = [], 0
    for i in range(n):
        size = base + (1 if i < extra else 0)
        batches.append(keys[start : start + size])
        start += size
    return batches


def run_single(config: ExperimentConfig, run_index: int = 0) -> RunResult:
    """Execute one full simulation run and return its per-unit series."""
    streams = RngStreams(config.seed).spawn(run_index)
    system = build_system(config, streams)
    batches = growth_batches(config, streams)

    churn_rng = streams.stream("churn")
    cap_rng = streams.stream("capacity")
    lb_rng = streams.stream("lb")
    req_rng = streams.stream("requests")
    entry_rng = streams.stream("entry")

    available: List[str] = []
    result = RunResult()

    for unit in range(config.total_units):
        stats = UnitStats()

        # (1) periodic load balancing (MLT) — uses last unit's history.
        if unit > 0:
            stats.migrations += config.lb.run_balancing(system, lb_rng)

        # (2) peer joins — placement by the balancer (KC) or random.
        for _ in range(config.churn.joins(len(system.ring), churn_rng)):
            capacity = config.capacity_model.sample(cap_rng)
            peer_id = config.lb.choose_join_id(system, capacity, lb_rng)
            system.add_peer(lb_rng, peer_id=peer_id, capacity=capacity)

        # (3) peer leaves — uniformly random victims.  ``id_at`` draws the
        # same victim as indexing a full ``ids()`` copy (both are the sorted
        # id sequence) without the O(P) copy per leave.
        for _ in range(config.churn.leaves(len(system.ring), churn_rng)):
            victim = system.ring.id_at(churn_rng.randrange(len(system.ring)))
            system.remove_peer(victim)

        # (4) service registrations — the tree grows for growth_units units.
        if unit < len(batches):
            register = system.register
            append = available.append
            for key in batches[unit]:
                register(key)
                append(key)

        # (5) discovery requests under the per-unit capacity budget.
        capacity_total = system.ring.aggregate_capacity()
        n_requests = max(1, round(config.load_fraction * capacity_total))
        if available:
            sample = config.schedule.sample
            discover = system.discover
            accounting = config.accounting
            for _ in range(n_requests):
                key = sample(unit, req_rng, available)
                outcome = discover(key, rng=entry_rng, accounting=accounting)
                stats.issued += 1
                if outcome.satisfied:
                    stats.satisfied += 1
                    stats.logical_hops += outcome.logical_hops
                    stats.physical_hops += outcome.physical_hops
                elif outcome.dropped:
                    stats.dropped += 1
                else:
                    stats.not_found += 1

        stats.peers = system.n_peers
        stats.nodes = system.n_nodes
        stats.aggregate_capacity = capacity_total
        system.end_time_unit()
        result.units.append(stats)

    return result


def run_many(
    config: ExperimentConfig,
    n_runs: int,
    label: Optional[str] = None,
) -> ExperimentSeries:
    """Repeat a configuration ``n_runs`` times (paper: 30/50/100)."""
    if n_runs < 1:
        raise ValueError("n_runs must be >= 1")
    runs = [run_single(config, i) for i in range(n_runs)]
    return ExperimentSeries(label=label or config.lb.name, runs=runs)


def compare_balancers(
    config: ExperimentConfig,
    balancers,
    n_runs: int,
) -> dict[str, ExperimentSeries]:
    """Run the same experiment under each balancer (common random numbers);
    the figures' three-curve layout."""
    return {
        lb.name: run_many(config.with_lb(lb), n_runs, label=lb.name)
        for lb in balancers
    }
