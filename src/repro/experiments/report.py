"""Assemble archived benchmark results into a single Markdown report.

``pytest benchmarks/ --benchmark-only`` archives every regenerated figure
and table under ``benchmarks/results/``; this module stitches them into one
document (``REPORT.md`` by default) so a reviewer can read the whole
reproduction without re-running anything:

    python -m repro.experiments.report            # writes REPORT.md
    python -m repro.experiments.report out.md     # custom path
"""

from __future__ import annotations

import pathlib
import sys
from datetime import date
from typing import Optional

#: Display order and titles for known result blocks.
SECTIONS = [
    ("fig4_stable_no_overload", "Figure 4 — stable network, no overload"),
    ("fig5_stable_overload", "Figure 5 — stable network, overload"),
    ("fig6_dynamic_no_overload", "Figure 6 — dynamic network, no overload"),
    ("fig7_dynamic_overload", "Figure 7 — dynamic network, overload"),
    ("table1_gain_summary", "Table 1 — gains of KC and MLT over no-LB"),
    ("fig8_hot_spots", "Figure 8 — dynamic network with hot spots"),
    ("fig9_communication_gain", "Figure 9 — communication gain of the lexicographic mapping"),
    ("table2_complexities", "Table 2 — complexities of close trie-structured approaches"),
    ("ablation_mlt_fraction", "Ablation — MLT sweep fraction"),
    ("ablation_mlt_allow_empty", "Ablation — MLT split candidate set"),
    ("ablation_kc_k", "Ablation — KC's k"),
    ("ablation_capacity_ratio", "Ablation — capacity heterogeneity ratio"),
    ("ablation_accounting", "Ablation — capacity accounting model"),
    ("ablation_request_skew", "Ablation — request popularity skew"),
    ("fault_injection", "Extension — crash waves, replication, repair cost"),
]

DEFAULT_RESULTS = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def build_report(
    results_dir: pathlib.Path = DEFAULT_RESULTS,
    title: str = "DLPT reproduction — regenerated experiments",
) -> str:
    """Render every archived result block as a Markdown document.

    Unknown result files (new ablations) are appended after the known
    sections so nothing silently disappears from the report.
    """
    if not results_dir.is_dir():
        raise FileNotFoundError(
            f"no results at {results_dir}; run "
            f"`pytest benchmarks/ --benchmark-only` first"
        )
    blocks: list[str] = [
        f"# {title}",
        "",
        f"Generated {date.today().isoformat()} from `benchmarks/results/`. "
        "See EXPERIMENTS.md for the paper-vs-measured analysis.",
    ]
    seen = set()
    for stem, heading in SECTIONS:
        path = results_dir / f"{stem}.txt"
        if not path.exists():
            continue
        seen.add(path.name)
        blocks += ["", f"## {heading}", "", "```", path.read_text().rstrip(), "```"]
    for path in sorted(results_dir.glob("*.txt")):
        if path.name in seen:
            continue
        blocks += ["", f"## {path.stem}", "", "```", path.read_text().rstrip(), "```"]
    return "\n".join(blocks) + "\n"


def write_report(
    output: pathlib.Path,
    results_dir: Optional[pathlib.Path] = None,
) -> pathlib.Path:
    text = build_report(results_dir or DEFAULT_RESULTS)
    output.write_text(text)
    return output


def main(argv=None) -> int:  # pragma: no cover - thin shell
    argv = sys.argv[1:] if argv is None else argv
    out = pathlib.Path(argv[0]) if argv else pathlib.Path("REPORT.md")
    path = write_report(out)
    print(f"wrote {path} ({path.stat().st_size} bytes)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
