"""Terminal line plots.

The benchmarks regenerate the paper's figures as text: a fixed-size
character grid with one glyph per series, plus a legend.  Not pretty, but
diffable, dependency-free, and enough to eyeball the curve *shapes* the
reproduction is judged on.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

_GLYPHS = "*+xo#@%&"


def ascii_plot(
    series: Dict[str, Sequence[float]],
    *,
    width: int = 72,
    height: int = 20,
    x_label: str = "time",
    y_label: str = "value",
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
    title: str = "",
) -> str:
    """Render ``series`` (equal-length y vectors over implicit x=0..n-1)."""
    if not series:
        raise ValueError("nothing to plot")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have the same length")
    (n,) = lengths
    if n < 2:
        raise ValueError("need at least two points")

    all_vals = [v for ys in series.values() for v in ys]
    lo = min(all_vals) if y_min is None else y_min
    hi = max(all_vals) if y_max is None else y_max
    if hi <= lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, ys), glyph in zip(series.items(), _GLYPHS):
        for i, y in enumerate(ys):
            x = round(i * (width - 1) / (n - 1))
            yy = (y - lo) / (hi - lo)
            row = height - 1 - round(yy * (height - 1))
            row = min(max(row, 0), height - 1)
            grid[row][x] = glyph

    left = max(len(f"{hi:.0f}"), len(f"{lo:.0f}")) + 1
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{hi:.0f}".rjust(left)
        elif r == height - 1:
            label = f"{lo:.0f}".rjust(left)
        else:
            label = " " * left
        lines.append(f"{label}|{''.join(row)}")
    lines.append(" " * left + "+" + "-" * width)
    lines.append(" " * left + f" 0 .. {n - 1} ({x_label})   y: {y_label}")
    legend = "   ".join(
        f"{glyph} {name}" for (name, _), glyph in zip(series.items(), _GLYPHS)
    )
    lines.append(" " * left + " " + legend)
    return "\n".join(lines)
