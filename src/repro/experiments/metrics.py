"""Per-run and aggregated experiment metrics.

The paper's reported quantities:

* **percentage of satisfied requests** per time unit (Figures 4–8);
* **gain** of a heuristic over no-LB: relative increase in total satisfied
  requests (Table 1);
* **average hops per request** per time unit — logical, and physical under
  each mapping (Figure 9).

Beyond the paper, each unit also carries a **load-imbalance factor**
(hottest peer's received load over the mean) and the **per-request hop
samples** behind tail-latency percentiles; :func:`phase_breakdown` slices
both along a schedule's phase windows, and :func:`run_metrics_dict` renders
a run as a stable JSON document (the byte-compared artefact of trace
replays).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from ..util.stats import SeriesSummary, summarize_series

#: Schema tag of :func:`run_metrics_dict` documents.
METRICS_SCHEMA = "repro-metrics/1"


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of raw samples (q in [0, 100]).

    Nearest-rank (rather than interpolation) keeps the result an observed
    sample, so tail hops are always attainable path lengths.  Thin wrapper
    over :func:`percentile_from_counts` — one implementation, two input
    shapes.
    """
    return percentile_from_counts(Counter(samples), q)


def percentile_from_counts(counts: Dict[int, int], q: float) -> float:
    """Nearest-rank percentile over a value→count histogram; 0.0 on empty
    input.

    Histograms are how the runner stores hop tails: hop counts are bounded
    by tree depth, so per-unit tails cost O(depth) memory instead of
    O(requests).
    """
    total = sum(counts.values())
    if total == 0:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * total))
    cumulative = 0
    for value in sorted(counts):
        cumulative += counts[value]
        if cumulative >= rank:
            return float(value)
    return float(max(counts))  # pragma: no cover - rank <= total always hits


@dataclass
class UnitStats:
    """Counters for one time unit of one run."""

    issued: int = 0
    satisfied: int = 0
    dropped: int = 0
    not_found: int = 0
    logical_hops: int = 0  # over satisfied requests
    physical_hops: int = 0  # over satisfied requests
    migrations: int = 0
    peers: int = 0
    nodes: int = 0
    aggregate_capacity: int = 0
    #: Hottest peer's received load over the mean received load (1.0 =
    #: perfectly even; 0.0 when no request arrived this unit).
    load_imbalance: float = 0.0
    #: hops → number of satisfied requests that took that many logical hops
    #: this unit: the (depth-bounded) distribution behind the tail
    #: percentiles.
    hop_histogram: Dict[int, int] = field(default_factory=dict)
    # Fault-injection accounting (all zero on fault-free runs).
    #: Fail-stop crashes applied this unit.
    crashes: int = 0
    #: Live peers unreachable behind a partition this unit.
    partitioned: int = 0
    #: Registered keys destroyed by this unit's crashes.
    keys_lost: int = 0
    #: Lost keys recovered from successor replicas by this unit's repair.
    keys_recovered: int = 0
    #: Lost keys no surviving copy could restore (true data loss).
    keys_unrecoverable: int = 0
    #: Re-registrations performed by this unit's repair pass.
    repair_cost: int = 0
    #: Distinct keys currently registered in the tree at unit end.
    keys_present: int = 0
    #: Keys that *should* be registered (everything ever registered).
    keys_expected: int = 0
    #: crash-to-repair delay (units) → number of crashes repaired at that
    #: delay this unit: the distribution behind time-to-repair tails.
    ttr_histogram: Dict[int, int] = field(default_factory=dict)
    # Set-query accounting (all zero without a query axis).
    #: Set queries (prefix/range/exact scans) issued this unit.
    queries_issued: int = 0
    #: Set queries fully served within every scanned host's budget.
    queries_satisfied: int = 0
    #: Set queries that exhausted some scanned host's budget.
    queries_dropped: int = 0
    #: Total result-set size over this unit's queries.
    query_results: int = 0
    #: Logical / physical hops over *satisfied* queries.
    query_logical_hops: int = 0
    query_physical_hops: int = 0
    #: hops → number of satisfied queries that took that many logical hops.
    query_hop_histogram: Dict[int, int] = field(default_factory=dict)

    def absorb_requests(self, batch) -> None:
        """Fold a batch of served requests into this unit's counters.

        ``batch`` is any object with the request-side counter fields
        (:class:`repro.dlpt.routing.BatchOutcome`): issued/satisfied/
        dropped/not_found totals, hop sums and the hops→count histogram.
        Count-dict accumulation end to end — no per-request sample lists
        are ever materialised.
        """
        self.issued += batch.issued
        self.satisfied += batch.satisfied
        self.dropped += batch.dropped
        self.not_found += batch.not_found
        self.logical_hops += batch.logical_hops
        self.physical_hops += batch.physical_hops
        hist = self.hop_histogram
        for hops, count in batch.hop_histogram.items():
            hist[hops] = hist.get(hops, 0) + count

    def absorb_queries(self, batch) -> None:
        """Fold a batch of served set queries into this unit's counters
        (``batch`` is a :class:`repro.dlpt.routing.QueryBatchOutcome`)."""
        self.queries_issued += batch.issued
        self.queries_satisfied += batch.satisfied
        self.queries_dropped += batch.dropped
        self.query_results += batch.results_total
        self.query_logical_hops += batch.logical_hops
        self.query_physical_hops += batch.physical_hops
        hist = self.query_hop_histogram
        for hops, count in batch.hop_histogram.items():
            hist[hops] = hist.get(hops, 0) + count

    @property
    def satisfied_pct(self) -> float:
        return 100.0 * self.satisfied / self.issued if self.issued else 0.0

    @property
    def mean_logical_hops(self) -> float:
        return self.logical_hops / self.satisfied if self.satisfied else 0.0

    @property
    def mean_physical_hops(self) -> float:
        return self.physical_hops / self.satisfied if self.satisfied else 0.0

    @property
    def queries_satisfied_pct(self) -> float:
        if not self.queries_issued:
            return 0.0
        return 100.0 * self.queries_satisfied / self.queries_issued

    @property
    def mean_query_hops(self) -> float:
        if not self.queries_satisfied:
            return 0.0
        return self.query_logical_hops / self.queries_satisfied

    @property
    def p95_hops(self) -> float:
        return percentile_from_counts(self.hop_histogram, 95.0)

    @property
    def p99_hops(self) -> float:
        return percentile_from_counts(self.hop_histogram, 99.0)

    @property
    def p95_ttr(self) -> float:
        """p95 time-to-repair (units) of the crashes repaired this unit."""
        return percentile_from_counts(self.ttr_histogram, 95.0)

    @property
    def key_availability_pct(self) -> float:
        """Registered keys present / expected (100.0 before any key)."""
        if self.keys_expected == 0:
            return 100.0
        return 100.0 * self.keys_present / self.keys_expected

    @property
    def lookup_failure_pct(self) -> float:
        """Requests whose key was not found in the tree (missing nodes —
        the availability signal of crash damage; capacity drops are
        counted separately in ``dropped``)."""
        return 100.0 * self.not_found / self.issued if self.issued else 0.0


@dataclass
class RunResult:
    """The full per-unit series of one simulation run."""

    units: List[UnitStats] = field(default_factory=list)

    def series(self, attr: str) -> list[float]:
        return [float(getattr(u, attr)) for u in self.units]

    @property
    def satisfied_pct(self) -> list[float]:
        return self.series("satisfied_pct")

    @property
    def total_satisfied(self) -> int:
        return sum(u.satisfied for u in self.units)

    @property
    def total_issued(self) -> int:
        return sum(u.issued for u in self.units)

    def __len__(self) -> int:
        return len(self.units)


@dataclass
class ExperimentSeries:
    """Aggregate of repeated runs of one configuration."""

    label: str
    runs: List[RunResult]

    def summary(self, attr: str = "satisfied_pct") -> SeriesSummary:
        return summarize_series([r.series(attr) for r in self.runs])

    def mean_curve(self, attr: str = "satisfied_pct") -> np.ndarray:
        return self.summary(attr).mean

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    def total_satisfied_mean(self) -> float:
        return float(np.mean([r.total_satisfied for r in self.runs]))

    def steady_state_satisfaction(self, warmup: int = 10) -> float:
        """Mean satisfied % after the tree-growth transient."""
        curve = self.mean_curve("satisfied_pct")
        return float(np.mean(curve[warmup:]))


def gain_table_row(
    mlt: ExperimentSeries, kc: ExperimentSeries, nolb: ExperimentSeries
) -> Dict[str, float]:
    """Table 1 cell pair: gain (%) of MLT and KC over no-LB on total
    satisfied requests, computed from run means."""
    base = nolb.total_satisfied_mean()
    if base <= 0:
        raise ValueError("baseline satisfied none; gain undefined")
    return {
        "MLT": 100.0 * (mlt.total_satisfied_mean() - base) / base,
        "KC": 100.0 * (kc.total_satisfied_mean() - base) / base,
    }


@dataclass(frozen=True)
class PhaseStats:
    """Aggregated metrics of one schedule phase (a ``[start, end)`` window).

    ``satisfied_pct`` is computed over the phase's pooled requests;
    ``p95_hops``/``p99_hops`` pool every satisfied request's hop count in
    the window (a true tail, not a mean of per-unit tails);
    ``mean_imbalance`` averages the per-unit load-imbalance factors.
    """

    name: str
    start: int
    end: int
    issued: int
    satisfied: int
    dropped: int
    not_found: int
    satisfied_pct: float
    mean_hops: float
    p95_hops: float
    p99_hops: float
    mean_imbalance: float
    migrations: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "issued": self.issued,
            "satisfied": self.satisfied,
            "dropped": self.dropped,
            "not_found": self.not_found,
            "satisfied_pct": self.satisfied_pct,
            "mean_hops": self.mean_hops,
            "p95_hops": self.p95_hops,
            "p99_hops": self.p99_hops,
            "mean_imbalance": self.mean_imbalance,
            "migrations": self.migrations,
        }


def phase_breakdown(
    result: RunResult, windows: Sequence[Tuple[str, int, int]]
) -> List[PhaseStats]:
    """Slice a run's per-unit series along schedule phase windows.

    ``windows`` is what ``schedule.phase_windows(total_units)`` returns:
    ``(name, start, end)`` triples.  Windows (or window parts) beyond the
    run's length are clipped; empty clips are skipped.
    """
    phases: List[PhaseStats] = []
    n = len(result.units)
    for name, start, end in windows:
        lo, hi = max(0, start), min(end, n)
        if lo >= hi:
            continue
        units = result.units[lo:hi]
        issued = sum(u.issued for u in units)
        satisfied = sum(u.satisfied for u in units)
        hop_total = sum(u.logical_hops for u in units)
        pooled: Dict[int, int] = {}
        for u in units:
            for hops, count in u.hop_histogram.items():
                pooled[hops] = pooled.get(hops, 0) + count
        imbalances = [u.load_imbalance for u in units if u.issued]
        phases.append(
            PhaseStats(
                name=name,
                start=lo,
                end=hi,
                issued=issued,
                satisfied=satisfied,
                dropped=sum(u.dropped for u in units),
                not_found=sum(u.not_found for u in units),
                satisfied_pct=100.0 * satisfied / issued if issued else 0.0,
                mean_hops=hop_total / satisfied if satisfied else 0.0,
                p95_hops=percentile_from_counts(pooled, 95.0),
                p99_hops=percentile_from_counts(pooled, 99.0),
                mean_imbalance=(
                    sum(imbalances) / len(imbalances) if imbalances else 0.0
                ),
                migrations=sum(u.migrations for u in units),
            )
        )
    return phases


def run_metrics_dict(result: RunResult, label: str = "") -> Dict[str, Any]:
    """A run as a stable, JSON-serialisable document.

    This is the artefact trace replays are byte-compared on: serialising
    with ``json.dumps(..., sort_keys=True)`` yields identical bytes exactly
    when two runs did identical work.
    """
    return {
        "schema": METRICS_SCHEMA,
        "label": label,
        "total_issued": result.total_issued,
        "total_satisfied": result.total_satisfied,
        "units": [
            {
                "issued": u.issued,
                "satisfied": u.satisfied,
                "dropped": u.dropped,
                "not_found": u.not_found,
                "logical_hops": u.logical_hops,
                "physical_hops": u.physical_hops,
                "migrations": u.migrations,
                "peers": u.peers,
                "nodes": u.nodes,
                "aggregate_capacity": u.aggregate_capacity,
                "load_imbalance": u.load_imbalance,
                "p95_hops": u.p95_hops,
                "p99_hops": u.p99_hops,
                "crashes": u.crashes,
                "partitioned": u.partitioned,
                "keys_lost": u.keys_lost,
                "keys_recovered": u.keys_recovered,
                "keys_unrecoverable": u.keys_unrecoverable,
                "repair_cost": u.repair_cost,
                "keys_present": u.keys_present,
                "keys_expected": u.keys_expected,
                "p95_ttr": u.p95_ttr,
                "queries_issued": u.queries_issued,
                "queries_satisfied": u.queries_satisfied,
                "queries_dropped": u.queries_dropped,
                "query_results": u.query_results,
                "query_logical_hops": u.query_logical_hops,
                "query_physical_hops": u.query_physical_hops,
            }
            for u in result.units
        ],
    }


def run_result_to_dict(result: RunResult) -> Dict[str, Any]:
    """Full-fidelity JSON form of a run: every :class:`UnitStats` field,
    including the hop histogram (JSON object keys are strings; the loader
    converts them back).  Unlike :func:`run_metrics_dict` — a *reporting*
    document that serialises derived percentiles — this round-trips exactly,
    which is what the sweep result store needs for byte-identical cache
    hits."""
    return {
        "units": [
            {
                "issued": u.issued,
                "satisfied": u.satisfied,
                "dropped": u.dropped,
                "not_found": u.not_found,
                "logical_hops": u.logical_hops,
                "physical_hops": u.physical_hops,
                "migrations": u.migrations,
                "peers": u.peers,
                "nodes": u.nodes,
                "aggregate_capacity": u.aggregate_capacity,
                "load_imbalance": u.load_imbalance,
                "hop_histogram": {str(k): v for k, v in sorted(u.hop_histogram.items())},
                "crashes": u.crashes,
                "partitioned": u.partitioned,
                "keys_lost": u.keys_lost,
                "keys_recovered": u.keys_recovered,
                "keys_unrecoverable": u.keys_unrecoverable,
                "repair_cost": u.repair_cost,
                "keys_present": u.keys_present,
                "keys_expected": u.keys_expected,
                "ttr_histogram": {str(k): v for k, v in sorted(u.ttr_histogram.items())},
                "queries_issued": u.queries_issued,
                "queries_satisfied": u.queries_satisfied,
                "queries_dropped": u.queries_dropped,
                "query_results": u.query_results,
                "query_logical_hops": u.query_logical_hops,
                "query_physical_hops": u.query_physical_hops,
                "query_hop_histogram": {
                    str(k): v for k, v in sorted(u.query_hop_histogram.items())
                },
            }
            for u in result.units
        ],
    }


def run_result_from_dict(doc: Dict[str, Any]) -> RunResult:
    """Inverse of :func:`run_result_to_dict`.  Documents written before the
    fault-injection fields existed load with those fields defaulted."""
    units = []
    for u in doc["units"]:
        fields = dict(u)
        for histogram in ("hop_histogram", "ttr_histogram", "query_hop_histogram"):
            fields[histogram] = {
                int(k): v for k, v in fields.get(histogram, {}).items()
            }
        units.append(UnitStats(**fields))
    return RunResult(units=units)


def series_to_dict(series: ExperimentSeries) -> Dict[str, Any]:
    """An :class:`ExperimentSeries` as a JSON-serialisable document."""
    return {
        "label": series.label,
        "runs": [run_result_to_dict(r) for r in series.runs],
    }


def series_from_dict(doc: Dict[str, Any]) -> ExperimentSeries:
    """Inverse of :func:`series_to_dict`."""
    return ExperimentSeries(
        label=doc["label"],
        runs=[run_result_from_dict(r) for r in doc["runs"]],
    )


def series_table(
    x: Sequence[int], columns: Dict[str, Sequence[float]], x_name: str = "time"
) -> str:
    """Render aligned numeric columns (the text twin of the paper's plots)."""
    names = list(columns)
    widths = [max(len(x_name), 6)] + [max(len(n), 8) for n in names]
    header = "  ".join(n.rjust(w) for n, w in zip([x_name] + names, widths))
    lines = [header, "-" * len(header)]
    for i, xv in enumerate(x):
        cells = [str(xv).rjust(widths[0])]
        for n, w in zip(names, widths[1:]):
            cells.append(f"{columns[n][i]:.2f}".rjust(w))
        lines.append("  ".join(cells))
    return "\n".join(lines)
