"""Per-run and aggregated experiment metrics.

The paper's reported quantities:

* **percentage of satisfied requests** per time unit (Figures 4–8);
* **gain** of a heuristic over no-LB: relative increase in total satisfied
  requests (Table 1);
* **average hops per request** per time unit — logical, and physical under
  each mapping (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..util.stats import SeriesSummary, summarize_series


@dataclass
class UnitStats:
    """Counters for one time unit of one run."""

    issued: int = 0
    satisfied: int = 0
    dropped: int = 0
    not_found: int = 0
    logical_hops: int = 0  # over satisfied requests
    physical_hops: int = 0  # over satisfied requests
    migrations: int = 0
    peers: int = 0
    nodes: int = 0
    aggregate_capacity: int = 0

    @property
    def satisfied_pct(self) -> float:
        return 100.0 * self.satisfied / self.issued if self.issued else 0.0

    @property
    def mean_logical_hops(self) -> float:
        return self.logical_hops / self.satisfied if self.satisfied else 0.0

    @property
    def mean_physical_hops(self) -> float:
        return self.physical_hops / self.satisfied if self.satisfied else 0.0


@dataclass
class RunResult:
    """The full per-unit series of one simulation run."""

    units: List[UnitStats] = field(default_factory=list)

    def series(self, attr: str) -> list[float]:
        return [float(getattr(u, attr)) for u in self.units]

    @property
    def satisfied_pct(self) -> list[float]:
        return self.series("satisfied_pct")

    @property
    def total_satisfied(self) -> int:
        return sum(u.satisfied for u in self.units)

    @property
    def total_issued(self) -> int:
        return sum(u.issued for u in self.units)

    def __len__(self) -> int:
        return len(self.units)


@dataclass
class ExperimentSeries:
    """Aggregate of repeated runs of one configuration."""

    label: str
    runs: List[RunResult]

    def summary(self, attr: str = "satisfied_pct") -> SeriesSummary:
        return summarize_series([r.series(attr) for r in self.runs])

    def mean_curve(self, attr: str = "satisfied_pct") -> np.ndarray:
        return self.summary(attr).mean

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    def total_satisfied_mean(self) -> float:
        return float(np.mean([r.total_satisfied for r in self.runs]))

    def steady_state_satisfaction(self, warmup: int = 10) -> float:
        """Mean satisfied % after the tree-growth transient."""
        curve = self.mean_curve("satisfied_pct")
        return float(np.mean(curve[warmup:]))


def gain_table_row(
    mlt: ExperimentSeries, kc: ExperimentSeries, nolb: ExperimentSeries
) -> Dict[str, float]:
    """Table 1 cell pair: gain (%) of MLT and KC over no-LB on total
    satisfied requests, computed from run means."""
    base = nolb.total_satisfied_mean()
    if base <= 0:
        raise ValueError("baseline satisfied none; gain undefined")
    return {
        "MLT": 100.0 * (mlt.total_satisfied_mean() - base) / base,
        "KC": 100.0 * (kc.total_satisfied_mean() - base) / base,
    }


def series_table(
    x: Sequence[int], columns: Dict[str, Sequence[float]], x_name: str = "time"
) -> str:
    """Render aligned numeric columns (the text twin of the paper's plots)."""
    names = list(columns)
    widths = [max(len(x_name), 6)] + [max(len(n), 8) for n in names]
    header = "  ".join(n.rjust(w) for n, w in zip([x_name] + names, widths))
    lines = [header, "-" * len(header)]
    for i, xv in enumerate(x):
        cells = [str(xv).rjust(widths[0])]
        for n, w in zip(names, widths[1:]):
            cells.append(f"{columns[n][i]:.2f}".rjust(w))
        lines.append("  ".join(cells))
    return "\n".join(lines)
