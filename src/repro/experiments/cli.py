"""Command-line interface: regenerate any paper experiment from a shell.

Usage (after ``pip install -e .`` / ``python setup.py develop``)::

    python -m repro fig4 --runs 5
    python -m repro fig8 --runs 2 --peers 80
    python -m repro table1 --runs 3 --workers 8
    python -m repro table2
    python -m repro bench --suite micro
    python -m repro paper --out out/paper
    python -m repro sweep --shard 0/4 --store /mnt/shared/repro-results
    python -m repro run --workload flash_crowd:S3L --units 120 --trace t.jsonl
    python -m repro run --replay t.jsonl --lb kc:k=8
    python -m repro serve --peers 8 --demo
    python -m repro list

Figures print an ASCII plot plus the per-unit series table; tables print
the paper-layout text table.  ``--workers`` > 1 uses the process-parallel
runner for the figure sweeps (default: the ``REPRO_WORKERS`` environment
variable if set, else 1).  ``run`` executes one configuration under
any workload spec (see :mod:`repro.workloads.spec`), optionally recording
the workload to a ``repro-trace/1`` JSONL file (``--trace``) or replaying
one (``--replay``), and reports a per-phase breakdown.  ``paper`` and
``sweep`` are the one-command reproduction pipeline (result store,
sharding, manifest — see :mod:`repro.sweeps` and ``docs/reproduction.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .figures import ALL_FIGURES
from .tables import paper_table2_text, phase_table, table1, table2

_EXPERIMENTS = sorted(ALL_FIGURES) + ["table1", "table2"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate the figures and tables of Caron, Desprez, Tedeschi: "
            "'Efficiency of Tree-Structured P2P Service Discovery Systems' "
            "(INRIA RR-6557, 2008)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=_EXPERIMENTS + ["list"],
        help="which experiment to regenerate (or 'list' to enumerate)",
    )
    parser.add_argument("--runs", type=int, default=None,
                        help="repetitions per configuration (default: paper values)")
    parser.add_argument("--peers", type=int, default=100,
                        help="platform size (default 100, the paper's)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size for figure sweeps (default: "
                        "the REPRO_WORKERS env var if set, else 1)")
    parser.add_argument("--no-plot", action="store_true",
                        help="skip the ASCII plot, print series table only")
    return parser


def _print_figure(fig, no_plot: bool) -> None:
    from .figures import render_figure_text

    print(render_figure_text(fig, no_plot=no_plot))


def _run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro run",
        description=(
            "Run one simulation under any workload spec; optionally record "
            "the workload to a repro-trace/1 JSONL file or replay one."
        ),
    )
    parser.add_argument("--workload", default=None,
                        help="workload spec, e.g. uniform, zipf:1.2, hotspot:S3L, "
                        "figure8, flash_crowd:S3L:onset=40, "
                        "diurnal:period=24:amplitude=0.5, adversarial:S3L")
    parser.add_argument("--peers", type=int, default=100, help="platform size")
    parser.add_argument("--units", type=int, default=None,
                        help="time units (default 50; a replay runs the trace's length)")
    parser.add_argument("--growth", type=int, default=None,
                        help="units during which the tree grows (default 10; "
                        "a replay registers what the trace recorded)")
    parser.add_argument("--load", type=float, default=None,
                        help="requests per unit / aggregate capacity (default 0.10)")
    parser.add_argument("--lb", default="nolb",
                        help="balancer spec: nolb, mlt[:fraction=..], kc[:k=..]")
    parser.add_argument("--faults", default=None,
                        help="fault spec, e.g. crash_storm:0.02, "
                        "crash_storm:0.05:r=2:repair_every=4, "
                        "correlated:0.3@40, partition:8@40:fraction=0.25; "
                        "with --replay the trace supplies the events and "
                        "only the spec's r=/repair_every= policy applies "
                        "(omit it to replay with no replication)")
    parser.add_argument("--queries", default=None,
                        help="set-query spec (see docs/queries.md), e.g. "
                        "mixed, mixed:n=6, prefix:n=4:len=2, "
                        "range:n=4:span=16, exact:n=2")
    parser.add_argument("--churn", choices=("stable", "dynamic", "frozen"),
                        default=None, help="churn model (default stable)")
    parser.add_argument("--accounting", choices=("destination", "transit"),
                        default="destination")
    parser.add_argument("--seed", type=int, default=None,
                        help="master seed (default: the config's)")
    parser.add_argument("--run-index", type=int, default=None,
                        help="which common-random-numbers run to execute "
                        "(default 0; a replay uses the trace's)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record the workload to a repro-trace/1 JSONL file")
    parser.add_argument("--replay", default=None, metavar="PATH",
                        help="replay a recorded trace instead of generating traffic")
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write the run's metrics JSON (stable layout)")
    return parser


def _run_main(argv) -> int:
    from ..peers import churn as churn_mod
    from ..util.specs import parse_spec
    from ..workloads.traces import TraceError, WorkloadTrace
    from .config import ExperimentConfig
    from .metrics import phase_breakdown, run_metrics_dict
    from .runner import record_single, run_single

    parser = _run_parser()
    args = parser.parse_args(argv)
    if args.trace and args.replay:
        parser.error("--trace records and --replay replays; pick one")
    if args.replay:
        # The trace records the workload side (requests, churn events,
        # growth) and pins seed/run-index in its header; rejecting these
        # flags beats silently running something other than what the user
        # asked for.
        # --faults stays legal with --replay: the trace fixes the fault
        # *events*, while the spec's policy half (r=, repair_every=) selects
        # the system's response — pass the recording's spec to reproduce it
        # byte-identically, a different policy for a controlled comparison.
        for flag, value in (("--units", args.units), ("--growth", args.growth),
                            ("--run-index", args.run_index),
                            ("--workload", args.workload), ("--load", args.load),
                            ("--queries", args.queries),
                            ("--churn", args.churn), ("--seed", args.seed)):
            if value is not None:
                parser.error(f"{flag} conflicts with --replay: the trace "
                             "already fixes it")

    churn = {"stable": churn_mod.STABLE, "dynamic": churn_mod.DYNAMIC,
             "frozen": churn_mod.FROZEN}[args.churn or "stable"]
    kwargs = dict(
        n_peers=args.peers,
        total_units=args.units if args.units is not None else 50,
        growth_units=args.growth if args.growth is not None else 10,
        load_fraction=args.load if args.load is not None else 0.10,
        workload=args.workload,
        faults=args.faults,
        queries=args.queries,
        churn=churn,
        accounting=args.accounting,
    )
    if args.seed is not None:
        kwargs["seed"] = args.seed
    try:
        config = ExperimentConfig(lb=parse_spec("balancer", args.lb), **kwargs)
    except ValueError as exc:
        parser.error(str(exc))

    start = time.perf_counter()
    if args.replay:
        try:
            trace = WorkloadTrace.load(args.replay)
        except (OSError, TraceError) as exc:
            parser.error(str(exc))
        result = run_single(config, replay=trace)
        windows = [(f"replay:{args.replay}", 0, trace.n_units)]
        # Describe only the system side under test; workload, churn, length
        # and seed all come from the trace, not the config.
        print(f"# replay of {args.replay} ({trace.n_units} units, "
              f"{trace.total_requests} requests, seed={trace.seed}) | "
              f"lb={config.lb.name} | {config.n_peers} peers | "
              f"accounting={config.accounting}")
    else:
        run_index = args.run_index if args.run_index is not None else 0
        if args.trace:
            result, trace = record_single(config, run_index)
            path = trace.dump(args.trace)
            print(f"[run] recorded trace -> {path}")
        else:
            result = run_single(config, run_index)
        windows = config.schedule.phase_windows(config.total_units)
        print(f"# {config.describe()}")
    elapsed = time.perf_counter() - start

    print()
    print(phase_table(phase_breakdown(result, windows)))
    pct = 100.0 * result.total_satisfied / result.total_issued if result.total_issued else 0.0
    print(f"\ntotal: {result.total_satisfied}/{result.total_issued} "
          f"satisfied ({pct:.1f}%) in {elapsed:.1f}s")
    _print_fault_summary(result)
    _print_query_summary(result)
    if args.metrics_out:
        # Label with the system side only (balancer), never the workload
        # source: a recorded run and its replay must serialise identically.
        doc = run_metrics_dict(result, label=config.lb.name)
        with open(args.metrics_out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[run] wrote metrics -> {args.metrics_out}")
    return 0


def _print_query_summary(result) -> None:
    """Set-query report of a run with a ``--queries`` axis (silent when no
    set query was issued)."""
    from .metrics import percentile_from_counts

    units = result.units
    issued = sum(u.queries_issued for u in units)
    if issued == 0:
        return
    satisfied = sum(u.queries_satisfied for u in units)
    results = sum(u.query_results for u in units)
    logical = sum(u.query_logical_hops for u in units)
    physical = sum(u.query_physical_hops for u in units)
    hist: dict[int, int] = {}
    for u in units:
        for hops, count in u.query_hop_histogram.items():
            hist[hops] = hist.get(hops, 0) + count
    print("\nqueries:")
    print(f"  issued: {issued} | satisfied: {satisfied} "
          f"({100.0 * satisfied / issued:.1f}%) | results: {results}")
    if satisfied:
        print(f"  hops/query: {logical / satisfied:.2f} logical, "
              f"{physical / satisfied:.2f} physical"
              + (f" | logical p95: {percentile_from_counts(hist, 95.0):.0f}"
                 if hist else ""))


def _print_fault_summary(result) -> None:
    """Availability/durability report of a fault-bearing run (silent when
    no fault event occurred)."""
    from .metrics import percentile_from_counts

    units = result.units
    crashes = sum(u.crashes for u in units)
    partitioned = sum(u.partitioned for u in units)
    if crashes == 0 and partitioned == 0:
        return
    lost = sum(u.keys_lost for u in units)
    recovered = sum(u.keys_recovered for u in units)
    unrecoverable = sum(u.keys_unrecoverable for u in units)
    repair_cost = sum(u.repair_cost for u in units)
    ttr: dict[int, int] = {}
    for u in units:
        for delay, count in u.ttr_histogram.items():
            ttr[delay] = ttr.get(delay, 0) + count
    availability = [u.key_availability_pct for u in units if u.keys_expected]
    failures = 100.0 * sum(u.not_found for u in units) / result.total_issued \
        if result.total_issued else 0.0
    print("\nfaults:")
    print(f"  crashes: {crashes} | partitioned peer-units: {partitioned}")
    print(f"  keys lost: {lost} | recovered from replicas: {recovered} | "
          f"unrecoverable: {unrecoverable}")
    print(f"  repair cost: {repair_cost} re-registrations"
          + (f" ({repair_cost / crashes:.1f}/crash)" if crashes else ""))
    if ttr:
        print(f"  time-to-repair p95: {percentile_from_counts(ttr, 95.0):.0f} units")
    if availability:
        print(f"  key availability: mean {sum(availability) / len(availability):.1f}% | "
              f"final {availability[-1]:.1f}%")
    print(f"  lookup-failure rate: {failures:.1f}% of requests")


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "bench":
        # The bench subcommand owns its options; delegate before the
        # experiment parser rejects them.
        from ..perf.bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "run":
        return _run_main(argv[1:])
    if argv and argv[0] == "paper":
        from ..sweeps.cli import paper_main

        return paper_main(argv[1:])
    if argv and argv[0] == "sweep":
        from ..sweeps.cli import sweep_main

        return sweep_main(argv[1:])
    if argv and argv[0] == "serve":
        from ..net.serve import main as serve_main

        return serve_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in _EXPERIMENTS + ["bench", "paper", "run", "serve", "sweep"]:
            print(name)
        return 0

    if args.workers is None:
        from .parallel import env_workers

        try:
            args.workers = env_workers(default=1)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    run_series = None
    if args.workers > 1:
        # Every harness accepts a SeriesRunner; hand it a pool-backed one
        # whose process pool persists across the whole sweep.
        from .parallel import PooledSeriesRunner

        run_series = PooledSeriesRunner(args.workers)

    start = time.perf_counter()
    try:
        if args.experiment in ALL_FIGURES:
            kwargs = dict(n_peers=args.peers)
            if args.runs is not None:
                kwargs["n_runs"] = args.runs
            fig = ALL_FIGURES[args.experiment](run_series=run_series, **kwargs)
            _print_figure(fig, args.no_plot)
        elif args.experiment == "table1":
            res = table1(n_runs=args.runs or 5, n_peers=args.peers,
                         run_series=run_series)
            print(f"# Table 1: gains of KC and MLT over no-LB  (runs={res.n_runs})")
            print(res.as_text())
        else:  # table2
            res = table2()
            print("# Table 2: complexities of close trie-structured approaches")
            print(res.as_text())
            print("\npaper (analytic):")
            print(paper_table2_text())
    finally:
        if run_series is not None:
            run_series.close()
    elapsed = time.perf_counter() - start
    print(f"\n[{args.experiment} regenerated in {elapsed:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
