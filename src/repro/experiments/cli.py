"""Command-line interface: regenerate any paper experiment from a shell.

Usage (after ``pip install -e .`` / ``python setup.py develop``)::

    python -m repro fig4 --runs 5
    python -m repro fig8 --runs 2 --peers 80
    python -m repro table1 --runs 3 --workers 8
    python -m repro table2
    python -m repro bench --suite micro
    python -m repro list

Figures print an ASCII plot plus the per-unit series table; tables print
the paper-layout text table.  ``--workers`` > 1 uses the process-parallel
runner for the figure sweeps.
"""

from __future__ import annotations

import argparse
import sys
import time

from .ascii_plot import ascii_plot
from .figures import ALL_FIGURES
from .tables import paper_table2_text, table1, table2

_EXPERIMENTS = sorted(ALL_FIGURES) + ["table1", "table2"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate the figures and tables of Caron, Desprez, Tedeschi: "
            "'Efficiency of Tree-Structured P2P Service Discovery Systems' "
            "(INRIA RR-6557, 2008)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=_EXPERIMENTS + ["list"],
        help="which experiment to regenerate (or 'list' to enumerate)",
    )
    parser.add_argument("--runs", type=int, default=None,
                        help="repetitions per configuration (default: paper values)")
    parser.add_argument("--peers", type=int, default=100,
                        help="platform size (default 100, the paper's)")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool size for figure sweeps (default 1)")
    parser.add_argument("--no-plot", action="store_true",
                        help="skip the ASCII plot, print series table only")
    return parser


def _print_figure(fig, no_plot: bool) -> None:
    print(f"# {fig.figure_id}: {fig.title}  (runs={fig.n_runs})")
    if not no_plot:
        is_pct = "hops" not in fig.title.lower() and "gain" not in fig.title.lower()
        print(
            ascii_plot(
                {k: list(v) for k, v in fig.series.items()},
                width=78,
                height=20,
                y_min=0 if is_pct else None,
                y_max=100 if is_pct else None,
                x_label="time unit",
                y_label="% satisfied" if is_pct else "hops/request",
                title="",
            )
        )
    print()
    print(fig.as_table())


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "bench":
        # The bench subcommand owns its options; delegate before the
        # experiment parser rejects them.
        from ..perf.bench import main as bench_main

        return bench_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in _EXPERIMENTS + ["bench"]:
            print(name)
        return 0

    if args.workers > 1:
        # The figure harnesses call the sequential compare_balancers; route
        # them through the pool-backed variant instead.
        import repro.experiments.figures as figures_mod
        from .parallel import compare_balancers_parallel, run_many_parallel

        figures_mod.compare_balancers = (
            lambda cfg, lbs, n: compare_balancers_parallel(
                cfg, lbs, n, workers=args.workers
            )
        )
        figures_mod.run_many = (
            lambda cfg, n, label=None: run_many_parallel(
                cfg, n, label=label, workers=args.workers
            )
        )

    start = time.perf_counter()
    if args.experiment in ALL_FIGURES:
        kwargs = dict(n_peers=args.peers)
        if args.runs is not None:
            kwargs["n_runs"] = args.runs
        fig = ALL_FIGURES[args.experiment](**kwargs)
        _print_figure(fig, args.no_plot)
    elif args.experiment == "table1":
        res = table1(n_runs=args.runs or 5, n_peers=args.peers)
        print(f"# Table 1: gains of KC and MLT over no-LB  (runs={res.n_runs})")
        print(res.as_text())
    else:  # table2
        res = table2()
        print("# Table 2: complexities of close trie-structured approaches")
        print(res.as_text())
        print("\npaper (analytic):")
        print(paper_table2_text())
    elapsed = time.perf_counter() - start
    print(f"\n[{args.experiment} regenerated in {elapsed:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
