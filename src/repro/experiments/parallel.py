"""Process-parallel experiment execution.

The paper's sweeps repeat every configuration 30–100 times; runs are
embarrassingly parallel (independent seeds), so this module fans them out
over a process pool.  Following the HPC guidance this codebase was written
under — make it correct first, then parallelise the outer loop where the
profile says the time goes — the unit of work is one whole simulation run
(seconds of work per task, so IPC overhead is negligible).

``run_many_parallel`` is a drop-in replacement for
:func:`repro.experiments.runner.run_many`; results are identical run for
run because each run derives its RNG streams from ``(seed, run_index)``
regardless of which process executes it.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Sequence

from ..lb.base import LoadBalancer
from .config import ExperimentConfig
from .metrics import ExperimentSeries
from .runner import run_single


def env_workers(default: Optional[int] = None) -> Optional[int]:
    """The ``REPRO_WORKERS`` override, or ``default`` when unset/empty.

    ``REPRO_WORKERS`` must be a positive integer; anything else raises a
    ``ValueError`` naming the variable (a typo'd override should fail
    loudly, not silently fall back to one worker or crash deep inside a
    pool start-up).
    """
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if not env:
        return default
    try:
        workers = int(env)
    except ValueError:
        raise ValueError(
            f"REPRO_WORKERS={env!r} is not an integer; set a positive "
            "worker count or unset the variable"
        ) from None
    if workers < 1:
        raise ValueError(
            f"REPRO_WORKERS={env!r} must be >= 1 (use 1 to force "
            "sequential execution)"
        )
    return workers


def default_workers() -> int:
    """Worker count when none is requested explicitly: the
    ``REPRO_WORKERS`` environment variable if set (validated, >= 1, *not*
    capped — an explicit override wins), else the CPU count capped at 16
    (per-task IPC overhead swamps the gain beyond that on one machine)."""
    workers = env_workers()
    if workers is not None:
        return workers
    return min(os.cpu_count() or 1, 16)


def _run_one(args: tuple[ExperimentConfig, int]):
    config, index = args
    return run_single(config, index)


def _chunksize(n_tasks: int, workers: int) -> int:
    """Submission chunk for ``ProcessPoolExecutor.map``: ~4 chunks per
    worker balances IPC overhead (one pickle round-trip per chunk) against
    tail latency when run times vary."""
    return max(1, n_tasks // (workers * 4))


def run_many_configs(
    tasks: Sequence[tuple[ExperimentConfig, int]],
    workers: Optional[int] = None,
) -> list:
    """Execute heterogeneous ``(config, run_index)`` tasks over one shared
    pool, preserving order.

    This is the saturation primitive every multi-configuration sweep builds
    on: submitting *all* tasks to a single pool keeps every worker busy even
    when individual configurations repeat fewer times than there are
    workers.  Falls back to in-process execution for a single task/worker.
    """
    workers = workers if workers is not None else default_workers()
    if workers <= 1 or len(tasks) <= 1:
        return [_run_one(t) for t in tasks]
    pool_workers = min(workers, len(tasks))
    with ProcessPoolExecutor(max_workers=pool_workers) as pool:
        return list(
            pool.map(_run_one, list(tasks), chunksize=_chunksize(len(tasks), pool_workers))
        )


def run_many_parallel(
    config: ExperimentConfig,
    n_runs: int,
    label: Optional[str] = None,
    workers: Optional[int] = None,
) -> ExperimentSeries:
    """Repeat ``config`` ``n_runs`` times across a process pool.

    Falls back to sequential execution for a single run or worker (no pool
    start-up cost when it cannot pay off).
    """
    if n_runs < 1:
        raise ValueError("n_runs must be >= 1")
    runs = run_many_configs([(config, i) for i in range(n_runs)], workers=workers)
    return ExperimentSeries(label=label or config.lb.name, runs=runs)


class PooledSeriesRunner:
    """A :data:`~repro.experiments.runner.SeriesRunner` that keeps one
    process pool alive across calls.

    Pool start-up is paid once per runner instead of once per series, and
    consumers that hold several configurations at once (the three-balancer
    comparison behind every figure) call :meth:`run_batch` to fan *all*
    their runs over the pool together — full saturation even when a single
    series repeats fewer times than there are workers.  Use as a context
    manager (the CLI's ``--workers`` path does).
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._pool = ProcessPoolExecutor(max_workers=workers)

    def __call__(
        self, config: ExperimentConfig, n_runs: int, label: str
    ) -> ExperimentSeries:
        return self.run_batch([(config, label)], n_runs)[label]

    def run_batch(
        self,
        configs: Sequence[tuple[ExperimentConfig, str]],
        n_runs: int,
    ) -> dict[str, ExperimentSeries]:
        """Run several ``(config, label)`` series at once on the shared
        pool; returns label → series.  The optional fast path
        :func:`~repro.experiments.runner.compare_balancers` probes for."""
        tasks = [(config, i) for config, _ in configs for i in range(n_runs)]
        runs = list(
            self._pool.map(
                _run_one, tasks, chunksize=_chunksize(len(tasks), self.workers)
            )
        )
        out: dict[str, ExperimentSeries] = {}
        cursor = 0
        for _, label in configs:
            out[label] = ExperimentSeries(
                label=label, runs=runs[cursor : cursor + n_runs]
            )
            cursor += n_runs
        return out

    def close(self) -> None:
        self._pool.shutdown()

    def __enter__(self) -> "PooledSeriesRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def compare_balancers_parallel(
    config: ExperimentConfig,
    balancers: Sequence[LoadBalancer],
    n_runs: int,
    workers: Optional[int] = None,
) -> dict[str, ExperimentSeries]:
    """Parallel counterpart of
    :func:`repro.experiments.runner.compare_balancers`: all
    (balancer, run) tasks share one pool so the sweep saturates it."""
    tasks = [
        (config.with_lb(lb), i) for lb in balancers for i in range(n_runs)
    ]
    results = run_many_configs(tasks, workers=workers)
    out: dict[str, ExperimentSeries] = {}
    for (cfg, _), run in zip(tasks, results):
        out.setdefault(cfg.lb.name, ExperimentSeries(label=cfg.lb.name, runs=[]))
        out[cfg.lb.name].runs.append(run)
    return out
