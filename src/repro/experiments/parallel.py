"""Process-parallel experiment execution.

The paper's sweeps repeat every configuration 30–100 times; runs are
embarrassingly parallel (independent seeds), so this module fans them out
over a process pool.  Following the HPC guidance this codebase was written
under — make it correct first, then parallelise the outer loop where the
profile says the time goes — the unit of work is one whole simulation run
(seconds of work per task, so IPC overhead is negligible).

``run_many_parallel`` is a drop-in replacement for
:func:`repro.experiments.runner.run_many`; results are identical run for
run because each run derives its RNG streams from ``(seed, run_index)``
regardless of which process executes it.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Sequence

from ..lb.base import LoadBalancer
from .config import ExperimentConfig
from .metrics import ExperimentSeries
from .runner import run_single


def default_workers() -> int:
    """Worker count: ``REPRO_WORKERS`` env var, else CPU count (capped)."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        return max(1, int(env))
    return min(os.cpu_count() or 1, 16)


def _run_one(args: tuple[ExperimentConfig, int]):
    config, index = args
    return run_single(config, index)


def _chunksize(n_tasks: int, workers: int) -> int:
    """Submission chunk for ``ProcessPoolExecutor.map``: ~4 chunks per
    worker balances IPC overhead (one pickle round-trip per chunk) against
    tail latency when run times vary."""
    return max(1, n_tasks // (workers * 4))


def run_many_parallel(
    config: ExperimentConfig,
    n_runs: int,
    label: Optional[str] = None,
    workers: Optional[int] = None,
) -> ExperimentSeries:
    """Repeat ``config`` ``n_runs`` times across a process pool.

    Falls back to sequential execution for a single run or worker (no pool
    start-up cost when it cannot pay off).
    """
    if n_runs < 1:
        raise ValueError("n_runs must be >= 1")
    workers = workers if workers is not None else default_workers()
    workers = min(workers, n_runs)
    if workers <= 1:
        runs = [run_single(config, i) for i in range(n_runs)]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            runs = list(
                pool.map(
                    _run_one,
                    [(config, i) for i in range(n_runs)],
                    chunksize=_chunksize(n_runs, workers),
                )
            )
    return ExperimentSeries(label=label or config.lb.name, runs=runs)


def compare_balancers_parallel(
    config: ExperimentConfig,
    balancers: Sequence[LoadBalancer],
    n_runs: int,
    workers: Optional[int] = None,
) -> dict[str, ExperimentSeries]:
    """Parallel counterpart of
    :func:`repro.experiments.runner.compare_balancers`: all
    (balancer, run) tasks share one pool so the sweep saturates it."""
    workers = workers if workers is not None else default_workers()
    tasks = [
        (config.with_lb(lb), i) for lb in balancers for i in range(n_runs)
    ]
    if workers <= 1 or len(tasks) <= 1:
        results = [_run_one(t) for t in tasks]
    else:
        pool_workers = min(workers, len(tasks))
        with ProcessPoolExecutor(max_workers=pool_workers) as pool:
            results = list(
                pool.map(_run_one, tasks, chunksize=_chunksize(len(tasks), pool_workers))
            )
    out: dict[str, ExperimentSeries] = {}
    for (cfg, _), run in zip(tasks, results):
        out.setdefault(cfg.lb.name, ExperimentSeries(label=cfg.lb.name, runs=[]))
        out[cfg.lb.name].runs.append(run)
    return out
