"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.alphabet import BINARY, PRINTABLE
from repro.dlpt.system import DLPTSystem
from repro.peers.capacity import FixedCapacity, UniformCapacity


@pytest.fixture
def rng():
    """A deterministic RNG; tests must not depend on global random state."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_corpus():
    """A hand-picked corpus exercising every prefix relationship: shared
    prefixes at several depths, one key prefixing another, and disjoint
    top-level families."""
    return [
        "dgemm", "dgemv", "dgetrf", "daxpy", "ddot",
        "sgemm", "sgemv", "saxpy",
        "S3L_fft", "S3L_sort", "S3L_mat_mult",
        "Pdgesv", "Psgesv",
        "zherk", "zher2k",  # zherk prefixes zher2k? no: 'zher2k' vs 'zherk' diverge at 4
        "cg", "cgemm",      # 'cg' is a proper prefix of 'cgemm'
    ]


@pytest.fixture
def binary_system(rng):
    """A small DLPT over the binary alphabet with generous capacities."""
    system = DLPTSystem(alphabet=BINARY, capacity_model=FixedCapacity(10_000))
    system.build(rng, n_peers=8)
    return system


@pytest.fixture
def grid_system(rng):
    """A DLPT over printable ids with paper-style heterogeneous capacities."""
    system = DLPTSystem(alphabet=PRINTABLE, capacity_model=UniformCapacity(base=5, ratio=4))
    system.build(rng, n_peers=20)
    return system
