"""Broker RPC semantics (tier-1, loopback) and the socket client (net)."""

from __future__ import annotations

import asyncio

import pytest

from repro.dlpt.protocol import ProtocolEngine
from repro.net.asyncio_transport import LoopbackAsyncioTransport
from repro.net.bootstrap import BROKER_ENDPOINT, BootstrapRegistry, Broker
from repro.net.client import DLPTClient, DLPTClientError
from repro.net.serve import start_cluster

pytestmark = pytest.mark.asyncio


class TestBootstrapRegistry:
    def test_successor_is_lowest_id_at_or_after(self):
        async def body():
            transport = LoopbackAsyncioTransport()
            await transport.start()
            engine = ProtocolEngine(transport=transport)
            registry = BootstrapRegistry(engine)
            engine.bootstrap_peer("m", 10)
            await transport.drain()
            for pid in ("d", "t"):
                engine.join_peer(pid, 10, seed=registry.successor_of(pid))
                await transport.drain()
            assert registry.live_ids() == ["d", "m", "t"]
            assert registry.successor_of("a") == "d"
            assert registry.successor_of("d") == "d"
            assert registry.successor_of("e") == "m"
            assert registry.successor_of("z") == "d"  # wraps to the minimum
            admission = registry.admission("e")
            assert admission["successor"] == "m"
            assert admission["seeds"][0] == "m"
            await transport.close()

        asyncio.run(body())

    def test_seeded_join_is_one_message(self):
        """The registry's whole point: a seeded join costs O(1) messages
        instead of an O(ring) NewPredecessor walk."""

        async def body():
            transport = LoopbackAsyncioTransport()
            await transport.start()
            engine = ProtocolEngine(transport=transport)
            registry = BootstrapRegistry(engine)
            for pid in ("ba", "bc", "be", "bg", "bi", "bk", "bm", "bo"):
                if not engine.peers:
                    engine.bootstrap_peer(pid, 10)
                else:
                    engine.join_peer(pid, 10, seed=registry.successor_of(pid))
                await transport.drain()
            engine.check_ring()
            before = transport.messages_sent
            engine.join_peer("bb", 10, seed=registry.successor_of("bb"))
            await transport.drain()
            engine.check_ring()
            # NewPredecessor to the successor + YourInformation back +
            # UpdateSuccessor to the predecessor: constant, ring-size-free.
            assert transport.messages_sent - before <= 4
            assert engine.peers["bb"].succ == "bc"
            await transport.close()

        asyncio.run(body())


class _LoopbackClient:
    """A minimal in-process stand-in for DLPTClient: same RPC payloads,
    delivered through the loopback transport instead of a socket."""

    def __init__(self, transport, endpoint="@test-client"):
        self.transport = transport
        self.endpoint = endpoint
        self.replies = []
        self._next_id = 1
        transport.register(endpoint, lambda env: self.replies.append(env.payload))

    async def call(self, **body):
        rid, self._next_id = self._next_id, self._next_id + 1
        body.update(id=rid, reply_to=self.endpoint)
        self.transport.send(self.endpoint, BROKER_ENDPOINT, body)
        for _ in range(10_000):
            for reply in self.replies:
                if reply.get("id") == rid:
                    return reply
            await asyncio.sleep(0)
        raise AssertionError(f"no reply for request {rid}")


class TestBrokerLoopback:
    async def _cluster(self):
        transport = LoopbackAsyncioTransport()
        await transport.start()
        engine = ProtocolEngine(transport=transport)
        broker = Broker(engine, transport)
        await broker.start()
        for pid in ("pa", "pd", "pg", "pj"):
            reply = await _LoopbackClient(transport, f"@adm-{pid}").call(
                op="peer_join", peer=pid, capacity=10
            )
            assert reply["ok"], reply
        engine.check_ring()
        return transport, engine, broker

    def test_register_then_discover(self):
        async def body():
            transport, engine, broker = await self._cluster()
            client = _LoopbackClient(transport)
            reply = await client.call(op="register", key="dgemm", datum=42)
            assert reply["ok"] and reply["key"] == "dgemm"
            assert reply["host"] == engine.locator["dgemm"]
            hit = await client.call(op="discover", key="dgemm")
            assert hit["ok"] and hit["found"] and hit["data"] == [42]
            assert hit["host"] == reply["host"]
            miss = await client.call(op="discover", key="nope")
            assert miss["ok"] and not miss["found"]
            await broker.close()
            await transport.close()

        asyncio.run(body())

    def test_discover_batch_keeps_request_order(self):
        async def body():
            transport, engine, broker = await self._cluster()
            client = _LoopbackClient(transport)
            keys = ["ga", "da", "pa", "da"]  # duplicates allowed
            for key in set(keys):
                assert (await client.call(op="register", key=key))["ok"]
            reply = await client.call(op="discover_batch", keys=keys)
            assert reply["ok"]
            assert [row["key"] for row in reply["results"]] == keys
            assert all(row["found"] for row in reply["results"])
            await broker.close()
            await transport.close()

        asyncio.run(body())

    def test_info_and_peer_leave(self):
        async def body():
            transport, engine, broker = await self._cluster()
            client = _LoopbackClient(transport)
            assert (await client.call(op="register", key="abc"))["ok"]
            info = await client.call(op="info")
            assert info["peers"] == 4 and info["keys"] == ["abc"]
            left = await client.call(op="peer_leave", peer="pd")
            assert left["ok"] and left["peers"] == 3
            engine.check_ring()
            still = await client.call(op="discover", key="abc")
            assert still["found"]
            await broker.close()
            await transport.close()

        asyncio.run(body())

    def test_search_prefix_and_range(self):
        async def body():
            transport, engine, broker = await self._cluster()
            client = _LoopbackClient(transport)
            for key in ("dgemm", "dgemv", "dgetrf", "ggen", "pal"):
                assert (await client.call(op="register", key=key))["ok"]
            hit = await client.call(op="search", kind="prefix", lo="dge")
            assert hit["ok"] and hit["keys"] == ["dgemm", "dgemv", "dgetrf"]
            assert hit["hops"] >= 0
            band = await client.call(
                op="search", kind="range", lo="dgemv", hi="ggen"
            )
            assert band["ok"] and band["keys"] == ["dgemv", "dgetrf", "ggen"]
            empty = await client.call(op="search", kind="prefix", lo="zz")
            assert empty["ok"] and empty["keys"] == []
            await broker.close()
            await transport.close()

        asyncio.run(body())

    def test_bad_search_is_an_error_reply(self):
        async def body():
            transport, engine, broker = await self._cluster()
            client = _LoopbackClient(transport)
            assert (await client.call(op="register", key="dgemm"))["ok"]
            bad_kind = await client.call(op="search", kind="glob", lo="d*")
            assert not bad_kind["ok"] and "kind" in bad_kind["error"]
            bad_range = await client.call(op="search", kind="range", lo="z", hi="a")
            assert not bad_range["ok"] and "empty range" in bad_range["error"]
            # The broker survives rejected queries and keeps serving.
            again = await client.call(op="search", kind="prefix", lo="dg")
            assert again["ok"] and again["keys"] == ["dgemm"]
            await broker.close()
            await transport.close()

        asyncio.run(body())

    def test_unknown_op_is_an_error_reply(self):
        async def body():
            transport, engine, broker = await self._cluster()
            client = _LoopbackClient(transport)
            reply = await client.call(op="frobnicate")
            assert not reply["ok"] and "unknown broker op" in reply["error"]
            # The broker survives bad requests and keeps serving.
            assert (await client.call(op="info"))["ok"]
            await broker.close()
            await transport.close()

        asyncio.run(body())


@pytest.mark.net
class TestSocketClient:
    """The real DLPTClient against a served cluster, over a socket."""

    def _with_cluster(self, scenario, **kwargs):
        async def body():
            transport, engine, broker = await start_cluster(6, **kwargs)
            try:
                return await scenario(transport, engine)
            finally:
                await broker.close()
                await transport.close()

        return asyncio.run(body())

    def test_futures_pipeline_over_unix_socket(self):
        async def scenario(transport, engine):
            client = await DLPTClient.connect(transport.address)
            try:
                keys = ["dgemm", "dgemv", "sgemm", "spotrf"]
                records = await asyncio.gather(*[client.register(k) for k in keys])
                assert [r["key"] for r in records] == keys
                assert all(r["host"] in engine.peers for r in records)
                rows = await client.discover_batch(keys)
                assert [(r["key"], r["found"]) for r in rows] == [
                    (k, True) for k in keys
                ]
                assert (await client.discover("absent"))["found"] is False
                info = await client.info()
                assert info["peers"] == 6 and info["keys"] == sorted(keys)
            finally:
                await client.close()

        self._with_cluster(scenario)

    def test_tcp_and_broker_errors(self):
        async def scenario(transport, engine):
            assert transport.address[0] == "tcp"
            client = await DLPTClient.connect(transport.address)
            try:
                # A non-scalar datum crosses the client/broker hop fine
                # (it is plain JSON) but cannot enter the protocol: the
                # broker's own wire codec rejects it, and the failure
                # comes back as a correlated error reply.
                with pytest.raises(DLPTClientError, match="TransportError"):
                    await client.register("key", datum={"rich": [1, 2]})
                # The same connection still gets service afterwards.
                assert (await client.info())["peers"] == 6
            finally:
                await client.close()

        self._with_cluster(scenario, tcp=True)

    def test_prefix_completion_and_range_over_socket(self):
        async def scenario(transport, engine):
            client = await DLPTClient.connect(transport.address)
            try:
                keys = ["dgemm", "dgemv", "dgetrf", "sgemm"]
                await asyncio.gather(*[client.register(k) for k in keys])
                done = await client.complete("dge")
                assert done["keys"] == ["dgemm", "dgemv", "dgetrf"]
                band = await client.range_search("dgemv", "sgemm")
                assert band["keys"] == ["dgemv", "dgetrf", "sgemm"]
                with pytest.raises(DLPTClientError, match="empty range"):
                    await client.range_search("z", "a")
            finally:
                await client.close()

        self._with_cluster(scenario)

    def test_client_driven_membership(self):
        async def scenario(transport, engine):
            client = await DLPTClient.connect(transport.address)
            try:
                joined = await client.peer_join("zz", capacity=5)
                assert joined["ok"] and "zz" in engine.peers
                engine.check_ring()
                left = await client.peer_leave("zz")
                assert left["ok"] and "zz" not in engine.peers
                engine.check_ring()
            finally:
                await client.close()

        self._with_cluster(scenario)
