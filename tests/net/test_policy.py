"""The shared retry/timeout/backoff policy (``repro.net.policy``).

Tier-1 throughout: :class:`RetryPolicy` is pure arithmetic — the
exponential schedule, the cap, the bounded deterministic jitter, and the
validation surface. The consumers (client RPC retries, p2p dial backoff,
the broker's ``retry_after`` hint) are exercised in their own suites;
here we pin the contract they all rely on: jitter only ever *shortens* a
delay, and the schedule is a pure function of ``(seed, attempt)``.
"""

from __future__ import annotations

import pytest

from repro.net.policy import RetryPolicy


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(retries=-1),
            dict(backoff=0.0),
            dict(backoff=-0.5),
            dict(multiplier=0.5),
            dict(max_backoff=0.01, backoff=0.05),
            dict(jitter=-0.1),
            dict(jitter=1.0),
        ],
    )
    def test_bad_parameters_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_attempt_is_one_based(self):
        policy = RetryPolicy(retries=2)
        with pytest.raises(ValueError, match="1-based"):
            policy.base_delay(0)


class TestSchedule:
    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            retries=6, backoff=0.1, multiplier=2.0, max_backoff=1.0, jitter=0.0
        )
        bases = [policy.base_delay(k) for k in range(1, 7)]
        assert bases == [
            pytest.approx(v) for v in (0.1, 0.2, 0.4, 0.8, 1.0, 1.0)
        ]
        # jitter=0 means delay == base_delay exactly.
        assert policy.delays() == [pytest.approx(v) for v in bases]

    def test_jitter_only_shortens_within_bound(self):
        policy = RetryPolicy(
            retries=8, backoff=0.05, multiplier=2.0, max_backoff=5.0,
            jitter=0.25, seed=42,
        )
        for attempt in range(1, 9):
            base = policy.base_delay(attempt)
            jittered = policy.delay(attempt)
            # The contract every timeout bound relies on: the jittered
            # delay lies in [(1 - jitter) * base, base].
            assert (1.0 - policy.jitter) * base <= jittered <= base

    def test_schedule_is_deterministic(self):
        a = RetryPolicy(retries=5, seed=7)
        b = RetryPolicy(retries=5, seed=7)
        assert a.delays() == b.delays()

    def test_different_seeds_desynchronize(self):
        a = RetryPolicy(retries=5, seed=1).delays()
        b = RetryPolicy(retries=5, seed=2).delays()
        assert a != b  # two processes never retry in lockstep

    def test_draw_parameter_varies_the_pause_not_the_base(self):
        """The broker keys jitter on its rejection counter: concurrent
        rejected clients share the base delay but draw different pauses."""
        policy = RetryPolicy(retries=1, backoff=0.1, jitter=0.5, seed=3)
        pauses = {policy.delay(1, draw=d) for d in range(16)}
        assert len(pauses) > 1
        for pause in pauses:
            assert 0.05 <= pause <= 0.1

    def test_delays_length_matches_retries(self):
        assert RetryPolicy(retries=0).delays() == []
        assert len(RetryPolicy(retries=4).delays()) == 4
