"""The ``repro-wire/1`` codec: round-trips, framing, and loud failure."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import wire_message_builders, wire_messages_st

from repro.dlpt import messages as m
from repro.net.wire import (
    HEADER_SIZE,
    MAX_FRAME_BYTES,
    WIRE_SCHEMA,
    FrameReader,
    WireError,
    decode_frame,
    encode_frame,
)


class TestRoundTrip:
    def test_every_message_type_has_a_round_trip_builder(self):
        """The strategy registry and the codec's type registry must list
        the same dataclasses — a message type added to the wire without a
        generator would silently escape the round-trip property."""
        from repro.net.wire import MESSAGE_TYPES

        assert set(wire_message_builders) == set(MESSAGE_TYPES)

    @settings(max_examples=200, deadline=None)
    @given(message=wire_messages_st)
    def test_protocol_messages_round_trip(self, message):
        """Every protocol dataclass decodes back to an equal instance —
        the property the conformance harness relies on."""
        env = decode_frame(encode_frame("src", "dst", message))
        assert env.src == "src" and env.dst == "dst"
        assert type(env.payload) is type(message)
        assert env.payload == message

    @settings(max_examples=100, deadline=None)
    @given(
        payload=st.recursive(
            st.none() | st.booleans() | st.integers() | st.text(max_size=8),
            lambda inner: st.lists(inner, max_size=3)
            | st.dictionaries(st.text(max_size=5), inner, max_size=3),
            max_leaves=10,
        )
    )
    def test_json_control_payloads_round_trip(self, payload):
        env = decode_frame(encode_frame("@client", "@broker", payload))
        assert env.payload == payload

    def test_frames_are_byte_stable(self):
        message = m.DiscoveryRequest(node="ab", key="abc", reply_to="@c", hops=3)
        assert encode_frame("a", "b", message) == encode_frame("a", "b", message)

    def test_body_carries_schema_tag(self):
        frame = encode_frame("a", "b", {"op": "info"})
        body = json.loads(frame[HEADER_SIZE:].decode("utf-8"))
        assert body["w"] == WIRE_SCHEMA


class TestFrameReader:
    @settings(max_examples=60, deadline=None)
    @given(
        messages=st.lists(wire_messages_st, min_size=1, max_size=6),
        chunk_size=st.integers(1, 64),
    )
    def test_arbitrary_chunking_preserves_frames(self, messages, chunk_size):
        """Socket reads arrive at arbitrary byte boundaries; frames must
        come out whole, in order, exactly once."""
        stream = b"".join(
            encode_frame(f"p{i}", f"q{i}", msg) for i, msg in enumerate(messages)
        )
        reader = FrameReader()
        received = []
        for i in range(0, len(stream), chunk_size):
            received.extend(reader.feed(stream[i : i + chunk_size]))
        assert [env.payload for env in received] == messages
        assert [env.src for env in received] == [f"p{i}" for i in range(len(messages))]
        assert reader.pending_bytes == 0

    def test_partial_frame_stays_pending(self):
        frame = encode_frame("a", "b", {"op": "info"})
        reader = FrameReader()
        assert list(reader.feed(frame[:-1])) == []
        assert reader.pending_bytes == len(frame) - 1
        assert len(list(reader.feed(frame[-1:]))) == 1

    def test_connection_death_mid_frame_emits_nothing(self):
        """A connection dying inside a frame leaves the torn bytes
        pending and no envelope — a half-frame is never half-delivered.
        The reconnect discipline is a *fresh* reader per connection, so
        stale bytes can never prefix the retransmitted stream."""
        first = encode_frame("a", "b", {"op": "register", "key": "k1"})
        second = encode_frame("a", "b", {"op": "register", "key": "k2"})
        reader = FrameReader()
        assert len(list(reader.feed(first))) == 1
        assert list(reader.feed(second[: len(second) // 2])) == []
        # ... the socket EOFs here: the torn frame stays buffered, unparsed.
        assert 0 < reader.pending_bytes < len(second)
        # The reconnected stream goes through a fresh reader: the
        # retransmission parses cleanly, exactly once.
        fresh = FrameReader()
        assert [env.payload["key"] for env in fresh.feed(second)] == ["k2"]

    def test_connection_death_inside_the_header_emits_nothing(self):
        frame = encode_frame("a", "b", {"op": "info"})
        reader = FrameReader()
        assert list(reader.feed(frame[:2])) == []  # not even a length yet
        assert reader.pending_bytes == 2


class TestMalformedInput:
    def test_truncated_header(self):
        with pytest.raises(WireError, match="truncated"):
            decode_frame(b"\x00\x00")

    def test_length_mismatch(self):
        frame = encode_frame("a", "b", {"op": "info"})
        with pytest.raises(WireError, match="length mismatch"):
            decode_frame(frame + b"junk")

    def test_oversized_declared_length(self):
        header = (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(WireError, match="MAX_FRAME_BYTES"):
            decode_frame(header)
        with pytest.raises(WireError, match="MAX_FRAME_BYTES"):
            list(FrameReader().feed(header))

    def _frame(self, body: dict) -> bytes:
        data = json.dumps(body).encode("utf-8")
        return len(data).to_bytes(4, "big") + data

    def test_wrong_schema_rejected(self):
        body = {"w": "repro-wire/999", "s": "a", "d": "b", "t": "json", "f": None}
        with pytest.raises(WireError, match="schema"):
            decode_frame(self._frame(body))

    def test_unknown_message_type_rejected(self):
        body = {"w": WIRE_SCHEMA, "s": "a", "d": "b", "t": "Nope", "f": {}}
        with pytest.raises(WireError, match="unknown wire message type"):
            decode_frame(self._frame(body))

    def test_malformed_fields_rejected(self):
        body = {"w": WIRE_SCHEMA, "s": "a", "d": "b", "t": "DataInsertion", "f": {"x": 1}}
        with pytest.raises(WireError, match="malformed"):
            decode_frame(self._frame(body))

    def test_non_json_body_rejected(self):
        data = b"\xff\xfe not json"
        with pytest.raises(WireError):
            decode_frame(len(data).to_bytes(4, "big") + data)

    def test_non_scalar_datum_rejected(self):
        message = m.DataInsertion(node="a", key="ab", datum=object())
        with pytest.raises(WireError, match="not wire-encodable"):
            encode_frame("a", "b", message)

    def test_unencodable_payload_rejected(self):
        with pytest.raises(WireError, match="not wire-encodable"):
            encode_frame("a", "b", {1, 2, 3})
